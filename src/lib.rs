//! Umbrella crate for the reproduction of *DCAS-Based Concurrent Deques*
//! (Agesen, Detlefs, Flood, Garthwaite, Martin, Moir, Shavit, Steele —
//! SPAA 2000).
//!
//! This crate re-exports the workspace's public surface:
//!
//! * [`dcas`] — software DCAS emulations (blocking and lock-free).
//! * [`deque`] — the paper's array-based and linked-list deques, plus the
//!   dummy-node variant.
//! * [`baselines`] — comparators: lock-based deques, the
//!   Arora–Blumofe–Plaxton CAS deque, a Greenwald-style one-word-indices
//!   deque.
//! * [`linearize`] — sequential specification, history recording, and a
//!   Wing & Gong linearizability checker.
//! * [`modelcheck`] — exhaustive interleaving exploration with the
//!   paper's proof obligations checked on every transition.
//! * [`workstealing`] — the motivating load-balancing application.
//! * [`broker`] — the sharded job broker: N-shard fan-out with
//!   Fibonacci-hashed routing, batch-8 ingestion, consumer-side
//!   rebalance, typed backpressure, and fault-tolerant shard death.
//! * [`obs`] (feature `obs`, on by default) — record-and-verify
//!   observability: lock-free op tracing via the `Recorded` wrapper,
//!   metrics export, and online linearizability auditing of live runs.
//! * [`harness`] — progress watchdog and replayable torture seeds shared
//!   by the stress and fault-injection test suites.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction results.

pub mod harness;

pub use dcas;
pub use dcas_baselines as baselines;
pub use dcas_broker as broker;
pub use dcas_deque as deque;
pub use dcas_linearize as linearize;
pub use dcas_modelcheck as modelcheck;
#[cfg(feature = "obs")]
pub use dcas_obs as obs;
pub use dcas_workstealing as workstealing;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use dcas::{DcasStrategy, DcasWord, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};
    pub use dcas_broker::{Backpressure, BrokerShard, ShardedBroker};
    pub use dcas_deque::{
        ArrayDeque, ConcurrentDeque, DummyListDeque, EndConfig, Full, ListDeque, SundellDeque,
        MAX_BATCH,
    };
}
