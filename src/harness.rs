//! Shared stress-test harness: a progress **watchdog** with diagnostic
//! dumps, and deterministic, replayable **torture seeds**.
//!
//! Non-blocking progress claims are only as good as the harness that
//! checks them: a stress test that simply hangs on a livelock tells you
//! nothing (and stalls CI for the full test-runner timeout with no
//! diagnostics). Every long-running test in `tests/` arms a [`Watchdog`]
//! with a deadline; if the test fails to disarm it in time, the watchdog
//! prints every registered diagnostic (last fault-injection point hit,
//! strategy counters, values moved so far, …) plus a one-line
//! `TORTURE_SEED=… cargo test …` replay command, then aborts the whole
//! process so the hang is loud and attributable.
//!
//! Seeds come from [`torture_seed`] (or [`trace_seed`] for the
//! record-and-verify suite): honoring a `TORTURE_SEED` / `TRACE_SEED`
//! environment variable when set (exact replay), otherwise derived from
//! the clock — and always echoed to stderr so *any* failure, watchdog or
//! assertion, can be replayed deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A deferred diagnostic: evaluated only if the watchdog fires.
pub type Diagnostic = Box<dyn Fn() -> String + Send>;

/// Aborts the process with a diagnostic dump if the owning test does not
/// finish (drop the watchdog) before the deadline.
///
/// The monitor runs on its own detached thread, so it fires even when
/// every test thread is wedged — including threads deliberately frozen
/// by the fault-injection substrate.
///
/// ```no_run
/// use dcas_deques::harness::Watchdog;
/// use std::time::Duration;
///
/// let seed = dcas_deques::harness::torture_seed("my_test");
/// let dog = Watchdog::arm("my_test", seed, Duration::from_secs(60));
/// dog.diagnostic("phase", || "draining".to_string());
/// // ... run the stress workload ...
/// drop(dog); // disarms
/// ```
pub struct Watchdog {
    inner: Arc<Inner>,
}

struct Inner {
    name: String,
    seed_var: &'static str,
    seed: u64,
    deadline: Duration,
    finished: AtomicBool,
    diagnostics: Mutex<Vec<(String, Diagnostic)>>,
}

impl Watchdog {
    /// Arms a watchdog named after the owning test. `seed` is echoed in
    /// the abort banner so the failure replays with `TORTURE_SEED=seed`.
    pub fn arm(name: &str, seed: u64, deadline: Duration) -> Watchdog {
        Self::arm_with_seed_var(name, "TORTURE_SEED", seed, deadline)
    }

    /// Like [`Watchdog::arm`], but the abort banner's replay line names
    /// `seed_var` instead of `TORTURE_SEED` — so tests seeded via
    /// [`trace_seed`] print a `TRACE_SEED=… cargo test …` recipe that
    /// matches the variable they actually read.
    pub fn arm_with_seed_var(
        name: &str,
        seed_var: &'static str,
        seed: u64,
        deadline: Duration,
    ) -> Watchdog {
        let inner = Arc::new(Inner {
            name: name.to_string(),
            seed_var,
            seed,
            deadline,
            finished: AtomicBool::new(false),
            diagnostics: Mutex::new(Vec::new()),
        });
        let monitor = Arc::clone(&inner);
        std::thread::spawn(move || {
            let end = Instant::now() + monitor.deadline;
            while Instant::now() < end {
                if monitor.finished.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            if monitor.finished.load(Ordering::Acquire) {
                return;
            }
            monitor.dump_and_abort();
        });
        Watchdog { inner }
    }

    /// Registers a diagnostic closure, printed (label first) if the
    /// watchdog fires. Closures must not block: they run while the rest
    /// of the process is presumed wedged.
    pub fn diagnostic<F>(&self, label: &str, f: F)
    where
        F: Fn() -> String + Send + 'static,
    {
        self.inner
            .diagnostics
            .lock()
            .unwrap()
            .push((label.to_string(), Box::new(f)));
    }

    /// Registers a diagnostic that dumps the last `k` recorded events of
    /// every thread in `rec` — so a stalled recorded run shows *which
    /// operations* each thread last completed (and any still in flight)
    /// alongside the usual counters.
    ///
    /// Holds only a [`std::sync::Weak`]: the watchdog does not keep the
    /// recorder (and its rings) alive past the test.
    #[cfg(feature = "obs")]
    pub fn attach_recorder(&self, rec: &Arc<dcas_obs::OpRecorder>, k: usize) {
        let weak = Arc::downgrade(rec);
        self.diagnostic("recorder tail", move || match weak.upgrade() {
            Some(rec) => {
                let dump = rec.dump_tails(k);
                // Indent under the diagnostic label so the banner stays
                // scannable.
                let mut out = String::new();
                for line in dump.lines() {
                    out.push_str("\n    ");
                    out.push_str(line);
                }
                out
            }
            None => "(recorder dropped)".to_string(),
        });
    }

    /// Explicitly disarms the watchdog (equivalent to dropping it).
    pub fn disarm(self) {}
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.finished.store(true, Ordering::Release);
    }
}

impl Inner {
    fn dump_and_abort(&self) -> ! {
        eprintln!();
        eprintln!(
            "==== WATCHDOG `{}`: no completion within {:?} — progress appears stalled ====",
            self.name, self.deadline
        );
        match self.diagnostics.lock() {
            Ok(diags) => {
                for (label, f) in diags.iter() {
                    eprintln!("  {label}: {}", f());
                }
            }
            Err(_) => eprintln!("  (diagnostics poisoned)"),
        }
        eprintln!(
            "  replay: {}={} cargo test {}",
            self.seed_var, self.seed, self.name
        );
        eprintln!("==== aborting process ====");
        std::process::abort();
    }
}

/// Resolves this run's torture seed: `TORTURE_SEED` from the environment
/// when set (deterministic replay), otherwise clock-derived. Always
/// prints the replay command to stderr, so any later failure — watchdog
/// abort or plain assertion — carries its reproduction recipe.
pub fn torture_seed(test: &str) -> u64 {
    seed_from_env("TORTURE_SEED", test)
}

/// Seed for the record-and-verify suite (`tests/recorded_*.rs`): same
/// contract as [`torture_seed`] but reads/echoes `TRACE_SEED`, so replay
/// recipes for trace-audit failures are distinguishable from torture
/// ones.
pub fn trace_seed(test: &str) -> u64 {
    seed_from_env("TRACE_SEED", test)
}

/// Resolves a replayable seed from the named environment variable, or
/// derives one from the clock, and echoes the replay command to stderr.
pub fn seed_from_env(var: &str, test: &str) -> u64 {
    let seed = match std::env::var(var) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("{var}={s:?} is not a u64: {e}")),
        Err(_) => {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default();
            // SplitMix64 finalizer over the nanosecond clock: adjacent
            // runs get well-scattered seeds.
            let mut z = (now.as_nanos() as u64).wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    };
    eprintln!("{test}: {var}={seed} cargo test {test}   # replay");
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_disarms_on_drop() {
        let dog = Watchdog::arm("watchdog_disarms_on_drop", 1, Duration::from_millis(100));
        dog.diagnostic("state", || "fine".into());
        drop(dog);
        // Give the monitor time to observe `finished` and exit; if the
        // disarm were broken the process would abort here.
        std::thread::sleep(Duration::from_millis(250));
    }

    #[test]
    fn seed_env_roundtrip() {
        // Avoid mutating the process environment (other tests run
        // concurrently); just check the parse path via the public
        // contract: no env var set -> nonzero clock-derived seed.
        let a = torture_seed("seed_env_roundtrip");
        assert!(std::env::var("TORTURE_SEED").is_ok() || a != 0);
    }

    #[test]
    fn trace_seed_reads_its_own_var() {
        let a = trace_seed("trace_seed_reads_its_own_var");
        assert!(std::env::var("TRACE_SEED").is_ok() || a != 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attach_recorder_dumps_tail_without_keeping_recorder_alive() {
        use dcas_obs::{OpKind, Outcome};
        let rec = Arc::new(dcas_obs::OpRecorder::new(1, 8));
        rec.begin(OpKind::PushRight, 1, &[7]);
        rec.finish(Outcome::Okay, &[]);
        let dog = Watchdog::arm_with_seed_var(
            "attach_recorder_dumps_tail",
            "TRACE_SEED",
            1,
            Duration::from_secs(60),
        );
        dog.attach_recorder(&rec, 4);
        // The diagnostic must not extend the recorder's lifetime.
        assert_eq!(Arc::strong_count(&rec), 1);
        // Evaluate the registered closure directly (the watchdog only
        // runs it on abort): it renders the tail while alive, and
        // degrades gracefully once the recorder is gone.
        let diags = dog.inner.diagnostics.lock().unwrap();
        let (label, f) = &diags[0];
        assert_eq!(label, "recorder tail");
        assert!(f().contains("thread 0"));
        drop(rec);
        assert_eq!(f(), "(recorder dropped)");
    }
}
