//! Property test: all four strategies implement the same DCAS semantics.
//!
//! Any sequential program of loads, stores, CASes and DCASes must produce
//! identical observable results (return values and final memory) under
//! every strategy, and must agree with a direct reference model of
//! Figure 1's semantics.

use dcas::{DcasStrategy, DcasWord, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Load(usize),
    Store(usize, u64),
    Cas(usize, u64, u64),
    Dcas(usize, usize, u64, u64, u64, u64),
    DcasStrong(usize, usize, u64, u64, u64, u64),
}

const WORDS: usize = 4;

fn word_val() -> impl Strategy<Value = u64> {
    // Small value space (multiples of 4) so comparisons hit often.
    (0u64..8).prop_map(|v| v * 4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0..WORDS;
    prop_oneof![
        idx.clone().prop_map(Op::Load),
        (idx.clone(), word_val()).prop_map(|(i, v)| Op::Store(i, v)),
        (idx.clone(), word_val(), word_val()).prop_map(|(i, o, n)| Op::Cas(i, o, n)),
        (idx.clone(), idx.clone(), word_val(), word_val(), word_val(), word_val()).prop_map(
            |(i, j, o1, o2, n1, n2)| Op::Dcas(i, j, o1, o2, n1, n2)
        ),
        (idx.clone(), idx, word_val(), word_val(), word_val(), word_val()).prop_map(
            |(i, j, o1, o2, n1, n2)| Op::DcasStrong(i, j, o1, o2, n1, n2)
        ),
    ]
}

/// Observable trace of a run: every return value, then the final memory.
fn run<S: DcasStrategy>(ops: &[Op]) -> Vec<u64> {
    let s = S::default();
    let words: Vec<DcasWord> = (0..WORDS).map(|_| DcasWord::new(0)).collect();
    let mut trace = Vec::new();
    for op in ops {
        match *op {
            Op::Load(i) => trace.push(s.load(&words[i])),
            Op::Store(i, v) => s.store(&words[i], v),
            Op::Cas(i, o, n) => trace.push(s.cas(&words[i], o, n) as u64),
            Op::Dcas(i, j, o1, o2, n1, n2) => {
                if i != j {
                    trace.push(s.dcas(&words[i], &words[j], o1, o2, n1, n2) as u64);
                }
            }
            Op::DcasStrong(i, j, mut o1, mut o2, n1, n2) => {
                if i != j {
                    trace.push(
                        s.dcas_strong(&words[i], &words[j], &mut o1, &mut o2, n1, n2) as u64,
                    );
                    trace.push(o1);
                    trace.push(o2);
                }
            }
        }
    }
    trace.extend(words.iter().map(|w| s.load(w)));
    trace
}

/// Direct model of Figure 1 over a plain array.
fn run_model(ops: &[Op]) -> Vec<u64> {
    let mut mem = [0u64; WORDS];
    let mut trace = Vec::new();
    for op in ops {
        match *op {
            Op::Load(i) => trace.push(mem[i]),
            Op::Store(i, v) => mem[i] = v,
            Op::Cas(i, o, n) => {
                let ok = mem[i] == o;
                if ok {
                    mem[i] = n;
                }
                trace.push(ok as u64);
            }
            Op::Dcas(i, j, o1, o2, n1, n2) => {
                if i != j {
                    let ok = mem[i] == o1 && mem[j] == o2;
                    if ok {
                        mem[i] = n1;
                        mem[j] = n2;
                    }
                    trace.push(ok as u64);
                }
            }
            Op::DcasStrong(i, j, o1, o2, n1, n2) => {
                if i != j {
                    let ok = mem[i] == o1 && mem[j] == o2;
                    if ok {
                        mem[i] = n1;
                        mem[j] = n2;
                        trace.push(1);
                        trace.push(o1);
                        trace.push(o2);
                    } else {
                        trace.push(0);
                        trace.push(mem[i]);
                        trace.push(mem[j]);
                    }
                }
            }
        }
    }
    trace.extend_from_slice(&mem);
    trace
}

proptest! {
    #[test]
    fn all_strategies_match_the_figure1_model(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let expect = run_model(&ops);
        prop_assert_eq!(run::<GlobalLock>(&ops), expect.clone(), "GlobalLock diverged");
        prop_assert_eq!(run::<GlobalSeqLock>(&ops), expect.clone(), "GlobalSeqLock diverged");
        prop_assert_eq!(run::<StripedLock>(&ops), expect.clone(), "StripedLock diverged");
        prop_assert_eq!(run::<HarrisMcas>(&ops), expect, "HarrisMcas diverged");
    }
}
