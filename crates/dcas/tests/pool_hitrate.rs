//! Allocation-regression test for the pooled DCAS hot path (requires
//! `--features stats`): after a warmup that primes the descriptor
//! freelist, a single-threaded `dcas`/`dcas_strong` loop must be served
//! entirely from the pool — a 100% hit rate, i.e. **zero steady-state
//! heap allocations** for descriptors. A regression in the pool, in the
//! epoch collector's release cadence, or an accidental extra descriptor
//! acquisition shows up here as a nonzero `descriptor_allocs` delta.
#![cfg(feature = "stats")]

use dcas::{DcasStrategy, DcasWord, EpochReclaimer, HarrisMcas, McasConfig, Reclaimer};

/// Primes the pool: runs `ops` successful DCASes (building inventory via
/// fallback allocations), then flushes the epoch collector so every
/// retired descriptor has been released to the freelist.
fn warmup(s: &HarrisMcas, a: &DcasWord, b: &DcasWord, x: &mut u64, ops: u64) {
    for _ in 0..ops {
        assert!(s.dcas(a, b, *x, *x + 4, *x + 8, *x + 12));
        *x += 8;
    }
    // Each flush attempts one epoch advance; repeated passes age every
    // queued release past the two-epoch grace period and run it.
    for _ in 0..4 {
        EpochReclaimer::flush();
    }
}

#[test]
fn steady_state_dcas_is_allocation_free() {
    // `hw_pair` off: this test measures the *descriptor* hot path, and
    // two stack locals can happen to share a 16-byte slot, in which case
    // the hardware pair path would bypass the pool entirely.
    let s = HarrisMcas::with_config(McasConfig { hw_pair: false, ..Default::default() });
    assert!(s.config().pool_descriptors);
    let a = DcasWord::new(0);
    let b = DcasWord::new(4);
    let mut x = 0u64;

    warmup(&s, &a, &b, &mut x, 1_000);

    let before = s.stats();
    const STEADY_OPS: u64 = 10_000;
    for _ in 0..STEADY_OPS {
        assert!(s.dcas(&a, &b, x, x + 4, x + 8, x + 12));
        x += 8;
    }
    let delta = s.stats().since(&before);

    assert_eq!(delta.dcas_ops, STEADY_OPS);
    assert_eq!(
        delta.descriptor_allocs, 0,
        "steady-state dcas must not allocate (reuse={}, allocs={})",
        delta.descriptor_reuses, delta.descriptor_allocs
    );
    assert_eq!(delta.descriptor_reuses, STEADY_OPS);
    assert_eq!(delta.reuse_rate(), Some(1.0));
}

#[test]
fn steady_state_dcas_strong_failure_path_is_allocation_free() {
    // The strong form's failure path certifies an atomic view with an
    // identity DCAS; that descriptor must come from the pool too.
    // (`hw_pair` off for the same reason as above.)
    let s = HarrisMcas::with_config(McasConfig { hw_pair: false, ..Default::default() });
    let a = DcasWord::new(0);
    let b = DcasWord::new(4);
    let mut x = 0u64;

    warmup(&s, &a, &b, &mut x, 1_000);

    let before = s.stats();
    const STEADY_OPS: u64 = 5_000;
    for _ in 0..STEADY_OPS {
        // Expected values are stale on purpose: every call fails and
        // reports the snapshot (one pooled identity descriptor each).
        let (mut o1, mut o2) = (1 << 40, 1 << 40);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 8, 12));
        assert_eq!((o1, o2), (x, x + 4));
    }
    let delta = s.stats().since(&before);

    assert_eq!(
        delta.descriptor_allocs, 0,
        "dcas_strong failure path must not allocate (reuse={}, allocs={})",
        delta.descriptor_reuses, delta.descriptor_allocs
    );
    // Every op certified exactly one snapshot descriptor from the pool.
    assert_eq!(delta.descriptor_reuses, STEADY_OPS);
}

#[test]
fn reclaim_hazard_steady_state_dcas_is_allocation_free() {
    // The hazard backend routes every descriptor through the pool
    // (retire frees nothing to the allocator), so its steady state must
    // be allocation-free too — the scan just delays a release until no
    // hazard covers it.
    use dcas::{HarrisMcasHazard, HazardReclaimer};
    let s = HarrisMcasHazard::with_config_in(McasConfig { hw_pair: false, ..Default::default() });
    let a = DcasWord::new(0);
    let b = DcasWord::new(4);
    let mut x = 0u64;
    for _ in 0..1_000 {
        assert!(s.dcas(&a, &b, x, x + 4, x + 8, x + 12));
        x += 8;
    }
    HazardReclaimer::flush();

    let before = s.stats();
    const STEADY_OPS: u64 = 10_000;
    for _ in 0..STEADY_OPS {
        assert!(s.dcas(&a, &b, x, x + 4, x + 8, x + 12));
        x += 8;
    }
    let delta = s.stats().since(&before);

    assert_eq!(delta.dcas_ops, STEADY_OPS);
    assert_eq!(
        delta.descriptor_allocs, 0,
        "hazard-backed steady-state dcas must not allocate (reuse={}, allocs={})",
        delta.descriptor_reuses, delta.descriptor_allocs
    );
    assert_eq!(delta.descriptor_reuses, STEADY_OPS);
}

#[test]
fn seed_compat_config_allocates_every_descriptor() {
    // The ablation baseline must keep the seed behaviour: no reuse.
    let s = HarrisMcas::with_config(McasConfig::seed_compat());
    let a = DcasWord::new(0);
    let b = DcasWord::new(4);
    let mut x = 0u64;
    warmup(&s, &a, &b, &mut x, 200);
    let before = s.stats();
    for _ in 0..200 {
        assert!(s.dcas(&a, &b, x, x + 4, x + 8, x + 12));
        x += 8;
    }
    let delta = s.stats().since(&before);
    assert_eq!(delta.descriptor_reuses, 0);
    assert_eq!(delta.descriptor_allocs, 200);
}
