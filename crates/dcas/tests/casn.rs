//! Cross-strategy CASN (multi-word CAS) semantics and stress tests.
//!
//! [`DcasStrategy::casn`] is the primitive underneath the batched deque
//! operations: one linearization point over up to
//! [`MAX_CASN_WORDS`](dcas::MAX_CASN_WORDS) independent words. These
//! tests pin its contract on every strategy: all-or-nothing effect, a
//! failure that leaves every word untouched, and conservation under
//! contention with overlapping word sets.

use std::sync::Arc;

use dcas::{
    CasnEntry, DcasStrategy, DcasWord, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock,
    MAX_CASN_WORDS,
};

/// A successful CASN writes every word; a failed one writes none.
fn all_or_nothing<S: DcasStrategy>() {
    for n in 1..=MAX_CASN_WORDS {
        let s = S::default();
        let words: Vec<DcasWord> = (0..n).map(|i| DcasWord::new(i as u64 * 4)).collect();

        // Success: every word advances.
        let mut entries: Vec<CasnEntry<'_>> = words
            .iter()
            .enumerate()
            .map(|(i, w)| CasnEntry::new(w, i as u64 * 4, i as u64 * 4 + 400))
            .collect();
        assert!(s.casn(&mut entries), "{}: casn/{n} should succeed", S::NAME);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(s.load(w), i as u64 * 4 + 400, "{}: word {i} of {n}", S::NAME);
        }

        // Failure (last word stale): no word moves.
        let mut entries: Vec<CasnEntry<'_>> = words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let old = if i == n - 1 { 0 } else { i as u64 * 4 + 400 };
                CasnEntry::new(w, old, 8000)
            })
            .collect();
        assert!(!s.casn(&mut entries), "{}: stale casn/{n} should fail", S::NAME);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(
                s.load(w),
                i as u64 * 4 + 400,
                "{}: failed casn/{n} touched word {i}",
                S::NAME
            );
        }
    }
}

/// A 1-entry CASN degenerates to a single-word CAS.
fn single_entry_is_cas<S: DcasStrategy>() {
    let s = S::default();
    let w = DcasWord::new(4);
    assert!(s.casn(&mut [CasnEntry::new(&w, 4, 8)]));
    assert_eq!(s.load(&w), 8);
    assert!(!s.casn(&mut [CasnEntry::new(&w, 4, 12)]));
    assert_eq!(s.load(&w), 8);
}

/// Multi-account transfers through CASN conserve the total even when the
/// word sets of concurrent CASNs partially overlap.
fn conservation_under_contention<S: DcasStrategy>() {
    const ACCOUNTS: usize = 12;
    const INIT: u64 = 1 << 16;
    let s = Arc::new(S::default());
    let accounts: Arc<Vec<DcasWord>> =
        Arc::new((0..ACCOUNTS).map(|_| DcasWord::new(INIT)).collect());

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let (s, accounts) = (s.clone(), accounts.clone());
            scope.spawn(move || {
                let mut x = t + 7;
                for _ in 0..10_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    // Move `amount` from each of k source accounts into one
                    // sink: a (k+1)-word CASN with k in 1..=5.
                    let k = 1 + (x >> 16) as usize % 5;
                    let sink = (x >> 24) as usize % ACCOUNTS;
                    let mut idx: Vec<usize> = vec![sink];
                    let mut seed = x;
                    while idx.len() < k + 1 {
                        seed = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                        let i = (seed >> 33) as usize % ACCOUNTS;
                        if !idx.contains(&i) {
                            idx.push(i);
                        }
                    }
                    let amount = 4 * ((x >> 8) % 8);
                    loop {
                        let vals: Vec<u64> = idx.iter().map(|&i| s.load(&accounts[i])).collect();
                        if vals[1..].iter().any(|&v| v < amount) {
                            break;
                        }
                        let mut entries: Vec<CasnEntry<'_>> = idx
                            .iter()
                            .zip(&vals)
                            .enumerate()
                            .map(|(pos, (&i, &v))| {
                                let new = if pos == 0 {
                                    v + amount * k as u64
                                } else {
                                    v - amount
                                };
                                CasnEntry::new(&accounts[i], v, new)
                            })
                            .collect();
                        if s.casn(&mut entries) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let sum: u64 = accounts.iter().map(|a| s.load(a)).sum();
    assert_eq!(sum, INIT * ACCOUNTS as u64, "strategy {} lost money", S::NAME);
}

/// CASN must linearize correctly against plain DCAS traffic on the same
/// words (the deques mix both).
fn casn_vs_dcas_interop<S: DcasStrategy>() {
    const INIT: u64 = 1 << 16;
    let s = Arc::new(S::default());
    let words: Arc<Vec<DcasWord>> = Arc::new((0..4).map(|_| DcasWord::new(INIT)).collect());

    std::thread::scope(|scope| {
        // Two threads do 4-word CASN rotations (conserving the sum).
        for t in 0..2u64 {
            let (s, words) = (s.clone(), words.clone());
            scope.spawn(move || {
                let mut x = t + 13;
                for _ in 0..8_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let amount = 4 * ((x >> 8) % 8);
                    loop {
                        let vals: Vec<u64> = words.iter().map(|w| s.load(w)).collect();
                        if vals[0] < amount {
                            break;
                        }
                        let mut entries: Vec<CasnEntry<'_>> = words
                            .iter()
                            .zip(&vals)
                            .enumerate()
                            .map(|(i, (w, &v))| {
                                let new = match i {
                                    0 => v - amount,
                                    3 => v + amount,
                                    _ => v,
                                };
                                CasnEntry::new(w, v, new)
                            })
                            .collect();
                        if s.casn(&mut entries) {
                            break;
                        }
                    }
                }
            });
        }
        // Two threads do plain DCAS transfers between words 1 and 2.
        for t in 0..2u64 {
            let (s, words) = (s.clone(), words.clone());
            scope.spawn(move || {
                let mut x = t + 31;
                for _ in 0..8_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let amount = 4 * ((x >> 8) % 8);
                    loop {
                        let v1 = s.load(&words[1]);
                        let v2 = s.load(&words[2]);
                        if v1 < amount {
                            break;
                        }
                        if s.dcas(&words[1], &words[2], v1, v2, v1 - amount, v2 + amount) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let sum: u64 = words.iter().map(|w| s.load(w)).sum();
    assert_eq!(sum, INIT * 4, "strategy {}: casn/dcas interop lost money", S::NAME);
}

macro_rules! strategy_tests {
    ($mod_name:ident, $ty:ty) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn casn_is_all_or_nothing() {
                all_or_nothing::<$ty>();
            }

            #[test]
            fn casn_single_entry_is_cas() {
                single_entry_is_cas::<$ty>();
            }

            #[test]
            fn casn_conserves_under_contention() {
                conservation_under_contention::<$ty>();
            }

            #[test]
            fn casn_interoperates_with_dcas() {
                casn_vs_dcas_interop::<$ty>();
            }
        }
    };
}

strategy_tests!(global_lock, GlobalLock);
strategy_tests!(global_seqlock, GlobalSeqLock);
strategy_tests!(striped_lock, StripedLock);
strategy_tests!(harris_mcas, HarrisMcas);
