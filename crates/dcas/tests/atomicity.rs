//! Cross-strategy atomicity stress tests (experiment F1).
//!
//! Every strategy must make DCAS appear indivisible. These tests encode
//! invariants that any torn, lost, or duplicated DCAS would violate, and
//! hammer them from many threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dcas::{DcasStrategy, DcasWord, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};

/// Bank-transfer conservation: the sum across a vector of accounts is
/// invariant under transfer DCASes.
fn conservation<S: DcasStrategy>() {
    const ACCOUNTS: usize = 8;
    const INIT: u64 = 1 << 16;
    let s = Arc::new(S::default());
    let accounts: Arc<Vec<DcasWord>> = Arc::new((0..ACCOUNTS).map(|_| DcasWord::new(INIT)).collect());

    let mut handles = vec![];
    for t in 0..4u64 {
        let (s, accounts) = (s.clone(), accounts.clone());
        handles.push(std::thread::spawn(move || {
            let mut x = t + 99;
            for _ in 0..25_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let i = (x >> 20) as usize % ACCOUNTS;
                let j = (x >> 40) as usize % ACCOUNTS;
                if i == j {
                    continue;
                }
                let amount = 4 * ((x >> 8) % 16);
                loop {
                    let vi = s.load(&accounts[i]);
                    let vj = s.load(&accounts[j]);
                    if vi < amount {
                        break;
                    }
                    if s.dcas(&accounts[i], &accounts[j], vi, vj, vi - amount, vj + amount) {
                        break;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let sum: u64 = accounts.iter().map(|a| s.load(a)).sum();
    assert_eq!(sum, INIT * ACCOUNTS as u64, "strategy {} lost money", S::NAME);
}

/// Exactly-once semantics: N threads race one DCAS with identical expected
/// values; exactly one must win.
fn exactly_one_winner<S: DcasStrategy>() {
    for round in 0..200u64 {
        let s = Arc::new(S::default());
        let pair = Arc::new((DcasWord::new(0), DcasWord::new(0)));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 1..=4u64 {
            let (s, pair, barrier) = (s.clone(), pair.clone(), barrier.clone());
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                s.dcas(&pair.0, &pair.1, 0, 0, t * 4, (round + 1) * 4)
            }));
        }
        let winners = handles.into_iter().filter(|_| true).map(|h| h.join().unwrap());
        let count = winners.filter(|&w| w).count();
        assert_eq!(count, 1, "strategy {}: {count} winners in round {round}", S::NAME);
        assert_eq!(s.load(&pair.1), (round + 1) * 4);
        assert!(s.load(&pair.0) % 4 == 0 && s.load(&pair.0) > 0);
    }
}

/// Monotone even/odd protocol: word A holds a counter, word B holds 4*A.
/// Every successful DCAS advances both consistently, so readers must never
/// observe B != 4*A *through a successful identity DCAS* (the paper's
/// atomic-view trick).
fn pair_view_consistency<S: DcasStrategy>() {
    let s = Arc::new(S::default());
    let pair = Arc::new((DcasWord::new(0), DcasWord::new(0)));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (s, pair, stop) = (s.clone(), pair.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (a, b) = (k * 4, k * 16);
                let (na, nb) = ((k + 1) * 4, (k + 1) * 16);
                assert!(s.dcas(&pair.0, &pair.1, a, b, na, nb));
                k += 1;
            }
        })
    };

    let mut snapshots = 0;
    while snapshots < 2_000 {
        // Take an atomic snapshot via identity DCAS.
        let v1 = s.load(&pair.0);
        let v2 = s.load(&pair.1);
        if s.dcas(&pair.0, &pair.1, v1, v2, v1, v2) {
            assert_eq!(v2, v1 * 4, "strategy {}: torn snapshot ({v1}, {v2})", S::NAME);
            snapshots += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// Strong-form DCAS must return a coherent pair on failure.
fn strong_view_coherent<S: DcasStrategy>() {
    let s = Arc::new(S::default());
    let pair = Arc::new((DcasWord::new(0), DcasWord::new(0)));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (s, pair, stop) = (s.clone(), pair.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                assert!(s.dcas(&pair.0, &pair.1, k * 4, k * 16, (k + 1) * 4, (k + 1) * 16));
                k += 1;
            }
        })
    };

    for _ in 0..2_000 {
        // Expected values that can never occur (not multiples of the
        // protocol) force the strong form down its failure path.
        let (mut o1, mut o2) = (!3u64, !3u64);
        let ok = s.dcas_strong(&pair.0, &pair.1, &mut o1, &mut o2, 4, 4);
        assert!(!ok);
        assert_eq!(o2, o1 * 4, "strategy {}: incoherent strong view ({o1}, {o2})", S::NAME);
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

macro_rules! strategy_tests {
    ($mod_name:ident, $ty:ty) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn conservation_under_contention() {
                conservation::<$ty>();
            }

            #[test]
            fn exactly_one_dcas_winner() {
                exactly_one_winner::<$ty>();
            }

            #[test]
            fn snapshot_pairs_are_consistent() {
                pair_view_consistency::<$ty>();
            }

            #[test]
            fn strong_failure_view_is_coherent() {
                strong_view_coherent::<$ty>();
            }
        }
    };
}

strategy_tests!(global_lock, GlobalLock);
strategy_tests!(global_seqlock, GlobalSeqLock);
strategy_tests!(striped_lock, StripedLock);
strategy_tests!(harris_mcas, HarrisMcas);
