//! Pluggable memory reclamation for the lock-free strategies.
//!
//! Every retirement in this workspace — DCAS descriptors in
//! [`mcas`](crate::HarrisMcas), nodes in the `deque-core` linked deques —
//! used to go straight to `crossbeam-epoch`. Epochs are fast, but a
//! thread frozen inside a pinned section pins the global epoch forever
//! and lets garbage grow **without bound** (exactly the adversary the
//! `fault-inject` `Freeze` kill delivers). This module abstracts the
//! scheme behind the [`Reclaimer`] trait so the same strategy and deque
//! code runs against either backend:
//!
//! * [`EpochReclaimer`] — the existing epoch shim. Unbounded garbage
//!   under a frozen thread, but no per-access announcement cost.
//! * [`hazard::HazardReclaimer`] — Michael-style hazard pointers.
//!   Garbage is bounded by `O(threads × slots)` even when a thread
//!   stalls indefinitely, at the cost of a protect/validate store+load
//!   per pointer traversal.
//!
//! Both backends meter themselves through a striped [`Gauge`]
//! (retired/freed pairs on cache-line-padded stripes plus a high-water
//! mark), so "how much garbage is live right now" is a measured
//! quantity — per Aksenov et al., *Memory Bounds for Concurrent Bounded
//! Queues* — rather than an assumption. `tests/reclaim_torture.rs` and
//! the E15 bench freeze a victim thread and compare the two curves.
//!
//! # Guard protocol
//!
//! [`Reclaimer::pin`] returns a [`ReclaimGuard`]. For epochs the guard
//! is the pin itself and [`ReclaimGuard::protect`] is a no-op
//! (`NEEDS_PROTECT == false`, so callers' validation re-reads
//! const-fold away). For hazard pointers the guard is a window of the
//! calling thread's hazard-slot array: `protect(i, addr)` announces
//! `addr` in the i-th slot of the window, and the caller must
//! **validate** (re-read the word the pointer came from) before
//! dereferencing — the announce/validate/deref dance documented at each
//! call site. Guards nest strictly LIFO per thread.
//!
//! Descriptor hazards carry one of two low flag bits
//! ([`EXPAND_DESC`]/[`EXPAND_ENTRY`]) telling the hazard scanner to
//! *expand* the announcement to the descriptor's entry target words,
//! which closes the helper-side phase-2 window (see
//! `mcas::expand_descriptor_hazard`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_epoch as epoch;

pub mod hazard;

/// Flag bit on a hazard-slot value: the protected address is a
/// `DcasDescriptor`; the scanner also protects every entry target word
/// the descriptor names. Descriptors are 8-aligned so the low bits are
/// free.
pub const EXPAND_DESC: u64 = 0b01;

/// Flag bit on a hazard-slot value: the protected address is a single
/// descriptor `Entry`; the scanner also protects that entry's target
/// word (and the range check on the entry address itself covers the
/// parent descriptor's allocation, since entries are embedded in it).
pub const EXPAND_ENTRY: u64 = 0b10;

/// Mask clearing both expansion flags off a hazard-slot value.
pub const EXPAND_MASK: u64 = 0b11;

/// A pluggable reclamation backend. All methods are static: backends
/// are process-wide (per-thread state lives in TLS inside the backend),
/// so strategies carry the backend as a type parameter, not a field.
pub trait Reclaimer: Send + Sync + Default + 'static {
    /// The pin/hazard guard type.
    type Guard: ReclaimGuard;

    /// Short backend name for benches and reports.
    const BACKEND: &'static str;

    /// The [`DcasStrategy::NAME`](crate::DcasStrategy::NAME) a
    /// `HarrisMcas` parameterized by this backend reports, so test
    /// matrices and bench tables distinguish the arms.
    const MCAS_NAME: &'static str;

    /// Pins the calling thread (epoch) or opens a hazard-slot window.
    fn pin() -> Self::Guard;

    /// Eagerly attempts to reclaim pending garbage (epoch: an
    /// advance-and-collect cycle; hazard: an immediate scan). Test and
    /// teardown convenience; never required for progress.
    fn flush();

    /// Blocks retired through this backend and not yet freed,
    /// process-wide.
    fn live_garbage() -> u64;

    /// High-water mark of [`live_garbage`](Self::live_garbage) since
    /// process start.
    fn garbage_high_water() -> u64;

    /// Collection attempts that could not advance (epoch: the global
    /// epoch was stuck — the frozen-thread signature — while the local
    /// queue was over threshold). Always `0` for backends without the
    /// failure mode.
    fn stalled_collections() -> u64 {
        0
    }
}

/// The per-operation guard of a [`Reclaimer`]. Dropping the guard ends
/// the protected section (epoch: unpin; hazard: clear the slot window).
pub trait ReclaimGuard {
    /// `true` if traversals must announce-and-validate pointers before
    /// dereferencing. `false` lets callers const-fold the protection
    /// code away (epochs protect by pinning alone).
    const NEEDS_PROTECT: bool;

    /// Announces `addr` (with optional [`EXPAND_DESC`]/[`EXPAND_ENTRY`]
    /// flag bits) in slot `slot` of this guard's window. The caller
    /// must re-validate the source word before relying on the
    /// protection. No-op when `NEEDS_PROTECT` is `false`.
    fn protect(&self, slot: usize, addr: u64);

    /// Clears slot `slot` of this guard's window.
    fn clear(&self, slot: usize);

    /// Retires a block: `dtor(ptr)` runs once no thread can still hold
    /// a protected reference to any address in `[ptr, ptr + len)`.
    ///
    /// # Safety
    ///
    /// `ptr` must be unreachable to threads that pin afterwards (the
    /// block was unlinked from every shared word), `dtor` must be safe
    /// to run exactly once on `ptr` after the grace period / hazard
    /// drain, including on a different thread, and `len` must be the
    /// exact size of the allocation.
    unsafe fn retire(&self, ptr: *mut u8, len: usize, dtor: unsafe fn(*mut u8));
}

// ---------------------------------------------------------------------
// Striped retire/free gauges.
// ---------------------------------------------------------------------

const GAUGE_STRIPES: usize = 8;

/// One gauge stripe on its own cache line, so concurrent retire-heavy
/// threads don't serialize on a single counter line (same layout
/// argument as the PR 5 striped stats).
#[repr(align(128))]
struct GaugeLine {
    retired: AtomicU64,
    freed: AtomicU64,
}

impl GaugeLine {
    const fn new() -> Self {
        GaugeLine { retired: AtomicU64::new(0), freed: AtomicU64::new(0) }
    }
}

/// Live-garbage gauge: striped retired/freed counters plus a high-water
/// mark, one static instance per backend. `live()` is a racy sum — fine
/// for telemetry and for the bounded-garbage assertions, which compare
/// against bounds far above any torn-read error.
pub(crate) struct Gauge {
    stripes: [GaugeLine; GAUGE_STRIPES],
    high_water: AtomicU64,
}

#[inline]
fn gauge_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.try_with(|i| *i).unwrap_or(0) & (GAUGE_STRIPES - 1)
}

impl Gauge {
    pub(crate) const fn new() -> Self {
        Gauge {
            stripes: [
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
                GaugeLine::new(),
            ],
            high_water: AtomicU64::new(0),
        }
    }

    /// Counts one retired block and folds the new live count into the
    /// high-water mark.
    pub(crate) fn on_retire(&self) {
        self.stripes[gauge_stripe()].retired.fetch_add(1, Ordering::Relaxed);
        let live = self.live();
        self.high_water.fetch_max(live, Ordering::Relaxed);
    }

    /// Counts one freed block.
    pub(crate) fn on_free(&self) {
        self.stripes[gauge_stripe()].freed.fetch_add(1, Ordering::Relaxed);
    }

    /// Retired-but-not-freed blocks right now (racy snapshot).
    pub(crate) fn live(&self) -> u64 {
        let (mut retired, mut freed) = (0u64, 0u64);
        for s in &self.stripes {
            retired += s.retired.load(Ordering::Relaxed);
            freed += s.freed.load(Ordering::Relaxed);
        }
        retired.saturating_sub(freed)
    }

    /// Highest live count ever folded in by [`Self::on_retire`].
    pub(crate) fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Gauge for all epoch-backend retirements (descriptors and nodes).
pub(crate) static EPOCH_GAUGE: Gauge = Gauge::new();

// ---------------------------------------------------------------------
// Epoch backend: the shim, adapted to the trait.
// ---------------------------------------------------------------------

/// The default backend: the vendored `crossbeam-epoch` shim. Fast (one
/// pin per operation, no per-pointer announcements), but a frozen
/// pinned thread stops the epoch and garbage grows with op count — the
/// trade the hazard backend exists to close.
#[derive(Default)]
pub struct EpochReclaimer;

/// An epoch pin. Protection is implicit (the pin blocks the grace
/// period), so `protect`/`clear` are no-ops and `NEEDS_PROTECT` is
/// `false`.
pub struct EpochGuard {
    guard: epoch::Guard,
}

impl Reclaimer for EpochReclaimer {
    type Guard = EpochGuard;
    const BACKEND: &'static str = "epoch";
    const MCAS_NAME: &'static str = "harris-mcas";

    #[inline]
    fn pin() -> EpochGuard {
        EpochGuard { guard: epoch::pin() }
    }

    fn flush() {
        epoch::pin().flush();
    }

    fn live_garbage() -> u64 {
        EPOCH_GAUGE.live()
    }

    fn garbage_high_water() -> u64 {
        EPOCH_GAUGE.high_water()
    }

    fn stalled_collections() -> u64 {
        epoch::stalled_collections()
    }
}

impl ReclaimGuard for EpochGuard {
    const NEEDS_PROTECT: bool = false;

    #[inline]
    fn protect(&self, _slot: usize, _addr: u64) {}

    #[inline]
    fn clear(&self, _slot: usize) {}

    unsafe fn retire(&self, ptr: *mut u8, _len: usize, dtor: unsafe fn(*mut u8)) {
        EPOCH_GAUGE.on_retire();
        // The closure captures two words (ptr + fn pointer), staying on
        // the shim's inline allocation-free path.
        // SAFETY: forwarded caller contract — after the grace period the
        // block is unreachable and `dtor` runs exactly once.
        unsafe {
            self.guard.defer_unchecked(move || {
                dtor(ptr);
                EPOCH_GAUGE.on_free();
            })
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_epoch_until(cond: impl Fn() -> bool) {
        for _ in 0..100_000 {
            if cond() {
                return;
            }
            EpochReclaimer::flush();
            std::thread::yield_now();
        }
        panic!("epoch reclamation did not converge");
    }

    #[test]
    fn reclaim_epoch_gauge_counts_retire_and_free() {
        let before_hw = EpochReclaimer::garbage_high_water();
        let g = EpochReclaimer::pin();
        let b = Box::into_raw(Box::new(7u64));
        unsafe fn free_u64(p: *mut u8) {
            // SAFETY: `p` came from `Box::into_raw::<u64>` below.
            drop(unsafe { Box::from_raw(p.cast::<u64>()) });
        }
        // SAFETY: `b` is unreachable to any other thread.
        unsafe { g.retire(b.cast(), std::mem::size_of::<u64>(), free_u64) };
        drop(g);
        assert!(EpochReclaimer::garbage_high_water() >= before_hw.max(1));
        // Other tests retire concurrently; all we can assert is
        // convergence of our own block (tracked via the shared gauge
        // reaching a freed state at some point).
        drive_epoch_until(|| EpochReclaimer::live_garbage() == 0);
    }

    #[test]
    fn reclaim_gauge_striped_sums() {
        let g = Gauge::new();
        g.on_retire();
        g.on_retire();
        assert_eq!(g.live(), 2);
        g.on_free();
        assert_eq!(g.live(), 1);
        assert!(g.high_water() >= 2);
    }

    #[test]
    fn reclaim_epoch_guard_needs_no_protect() {
        const { assert!(!EpochGuard::NEEDS_PROTECT) };
        let g = EpochReclaimer::pin();
        g.protect(0, 0xdead_bee8);
        g.clear(0);
    }
}
