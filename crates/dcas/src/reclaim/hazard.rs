//! Michael-style hazard pointers: the bounded-garbage backend.
//!
//! Each thread owns a [`HazardRecord`] — a fixed array of
//! [`SLOTS`] hazard slots plus a private retired list — registered in a
//! process-wide lock-free list. Readers *announce* a pointer in a slot
//! before dereferencing it and **validate** by re-reading the word the
//! pointer came from; writers retire blocks into their own list and,
//! every [`SCAN_THRESHOLD`] retirements, *scan*: snapshot every
//! announced hazard, then free exactly the retired blocks no hazard
//! points into. The amortized cost is O(1) per retirement, and the
//! garbage a frozen thread can strand is bounded by what its slots (and
//! everyone's unscanned tails) can name:
//!
//! ```text
//! live ≤ records × (SCAN_THRESHOLD + SLOTS × (1 + MAX_CASN_WORDS))
//! ```
//!
//! — the bound `tests/reclaim_torture.rs` asserts while a victim thread
//! is frozen mid-operation. The `MAX_CASN_WORDS` factor comes from
//! *descriptor expansion*: a slot flagged
//! [`EXPAND_DESC`](super::EXPAND_DESC) or
//! [`EXPAND_ENTRY`](super::EXPAND_ENTRY) additionally protects the
//! entry target words the descriptor names (see
//! `mcas::expand_descriptor_hazard`), which is what keeps helper-side
//! phase-2 CASes on already-unlinked nodes safe.
//!
//! # Why descriptor expansion is safe to read
//!
//! The scanner dereferences a flagged slot value to read the
//! descriptor's `len`/entry addresses. That read races with slot
//! clears, so it must stay safe even against a *stale* snapshot — which
//! it is, because descriptor memory is **immortal**: under this backend
//! every descriptor free goes back to the [`pool`](crate::pool)
//! freelists or their global reserve, never to the allocator, so a
//! once-valid descriptor address always points at a live
//! `DcasDescriptor` allocation whose `len` and entry-address fields are
//! atomics. A recycled descriptor yields garbage addresses — the scan
//! merely keeps a few blocks conservatively for one round.
//!
//! # Scan ordering
//!
//! A scan (1) takes its own retired list (plus any orphans it can
//! opportunistically claim), **then** (2) snapshots hazards, then (3)
//! frees the unprotected blocks. The order is load-bearing: a block
//! retired after (2) cannot be in the list taken at (1), so every block
//! a scan frees was retired — hence unlinked — before the snapshot, and
//! any reader that announced it *before* the unlink is in the snapshot
//! while any reader announcing *after* fails its validation re-read.
//!
//! Thread exit clears the slots, runs a final scan, parks whatever is
//! still hazard-protected on the global orphan list (drained by other
//! threads' scans), and releases the record for reuse by future
//! threads.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use super::{Gauge, ReclaimGuard, Reclaimer, EXPAND_DESC, EXPAND_ENTRY, EXPAND_MASK};
use crate::mcas::{expand_descriptor_hazard, expand_entry_hazard};

/// Hazard slots per thread record. A guard window uses one slot per
/// simultaneously protected pointer: the deque chunk walks need
/// `MAX_BATCH + 2`, nested strategy helping a handful more, so 64
/// leaves generous headroom; exceeding it is a bug and panics.
pub const SLOTS: usize = 64;

/// Retire this many blocks between scans. Amortizes the O(records ×
/// SLOTS) snapshot over many retirements while keeping each thread's
/// unscanned tail — one term of the static garbage bound — small.
pub const SCAN_THRESHOLD: usize = 128;

/// One retired block awaiting a hazard-free scan.
struct Retired {
    ptr: *mut u8,
    len: usize,
    dtor: unsafe fn(*mut u8),
}

// SAFETY: a `Retired` is an exclusively owned unlinked block (retire
// contract); moving it between threads (orphan list) moves that
// ownership.
unsafe impl Send for Retired {}

/// Per-thread hazard record, registered in the global list for the
/// process lifetime (records are leaked and reused, never freed, so
/// scanners can traverse the list without synchronization).
pub(crate) struct HazardRecord {
    /// Announced hazards; `0` = empty. Written by the owner, read by
    /// every scanner.
    slots: [AtomicU64; SLOTS],
    /// Claimed by a live thread. Cleared on thread exit, re-claimed by
    /// a CAS from later threads.
    in_use: AtomicBool,
    /// Next record in the append-only registry list.
    next: AtomicPtr<HazardRecord>,
    /// First free slot (owner-only); guards open LIFO windows above it.
    top: Cell<usize>,
    /// This thread's retired blocks (owner-only).
    retired: RefCell<Vec<Retired>>,
}

// SAFETY: `slots`/`in_use`/`next` are atomics; `top` and `retired` are
// accessed only by the owning thread (the TLS destructor included).
unsafe impl Send for HazardRecord {}
unsafe impl Sync for HazardRecord {}

static HEAD: AtomicPtr<HazardRecord> = AtomicPtr::new(std::ptr::null_mut());

/// Retired blocks of exited threads, still hazard-protected at exit
/// time; drained opportunistically by scans.
fn orphans() -> &'static Mutex<Vec<Retired>> {
    static ORPHANS: OnceLock<Mutex<Vec<Retired>>> = OnceLock::new();
    ORPHANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Gauge for all hazard-backend retirements.
pub(crate) static HAZARD_GAUGE: Gauge = Gauge::new();

/// Claims a free record from the registry or registers a fresh one.
fn acquire_record() -> &'static HazardRecord {
    let mut cur = HEAD.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: records are leaked; any pointer in the list is live.
        let rec = unsafe { &*cur };
        if rec
            .in_use
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return rec;
        }
        cur = rec.next.load(Ordering::Acquire);
    }
    let rec: &'static HazardRecord = Box::leak(Box::new(HazardRecord {
        slots: [const { AtomicU64::new(0) }; SLOTS],
        in_use: AtomicBool::new(true),
        next: AtomicPtr::new(std::ptr::null_mut()),
        top: Cell::new(0),
        retired: RefCell::new(Vec::new()),
    }));
    let mut head = HEAD.load(Ordering::Acquire);
    loop {
        rec.next.store(head, Ordering::Release);
        match HEAD.compare_exchange(
            head,
            rec as *const _ as *mut _,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return rec,
            Err(h) => head = h,
        }
    }
}

/// Number of records ever registered (in use or parked). The static
/// garbage bound scales with this, not with live threads: a frozen
/// thread's record stays claimed.
pub fn registered_records() -> usize {
    let mut n = 0;
    let mut cur = HEAD.load(Ordering::Acquire);
    while !cur.is_null() {
        n += 1;
        // SAFETY: records are leaked; list pointers are always live.
        cur = unsafe { (*cur).next.load(Ordering::Acquire) };
    }
    n
}

/// The static bound on hazard-backend live garbage given the current
/// registry size (module docs): every record can strand its unscanned
/// tail plus whatever its slots (with descriptor expansion) can name.
pub fn static_garbage_bound() -> u64 {
    let per_record = SCAN_THRESHOLD + SLOTS * (1 + crate::MAX_CASN_WORDS);
    (registered_records() as u64).saturating_mul(per_record as u64).max(1)
}

/// Snapshot every announced hazard, expanded, sorted, deduplicated.
fn snapshot_hazards() -> Vec<usize> {
    let mut hazards = Vec::with_capacity(64);
    let mut cur = HEAD.load(Ordering::Acquire);
    while !cur.is_null() {
        // SAFETY: records are leaked; list pointers are always live.
        let rec = unsafe { &*cur };
        for slot in &rec.slots {
            let v = slot.load(Ordering::SeqCst);
            if v == 0 {
                continue;
            }
            let addr = (v & !EXPAND_MASK) as usize;
            hazards.push(addr);
            if v & EXPAND_DESC != 0 {
                // SAFETY: flagged values are descriptor addresses and
                // descriptor memory is immortal under this backend
                // (module docs), so the atomic field reads inside are
                // always in-bounds of a live allocation.
                unsafe { expand_descriptor_hazard(addr as *const u8, &mut hazards) };
            } else if v & EXPAND_ENTRY != 0 {
                // SAFETY: as above — entries are embedded in immortal
                // descriptor memory.
                unsafe { expand_entry_hazard(addr as *const u8, &mut hazards) };
            }
        }
        cur = rec.next.load(Ordering::Acquire);
    }
    hazards.sort_unstable();
    hazards.dedup();
    hazards
}

/// `true` if any hazard address falls inside `[ptr, ptr + len)`.
fn protected(hazards: &[usize], ptr: *mut u8, len: usize) -> bool {
    let lo = ptr as usize;
    let idx = hazards.partition_point(|&h| h < lo);
    idx < hazards.len() && hazards[idx] < lo + len
}

/// One scan: take the caller's retired list (plus claimable orphans),
/// snapshot hazards, free every unprotected block, keep the rest.
fn scan(rec: &HazardRecord) {
    let mut candidates: Vec<Retired> = rec.retired.borrow_mut().drain(..).collect();
    if let Ok(mut orphaned) = orphans().try_lock() {
        candidates.append(&mut orphaned);
    }
    if candidates.is_empty() {
        return;
    }
    let hazards = snapshot_hazards();
    let mut kept = Vec::new();
    for r in candidates {
        if protected(&hazards, r.ptr, r.len) {
            kept.push(r);
        } else {
            // SAFETY: `r` was retired (unlinked before our hazard
            // snapshot — scan-ordering argument in the module docs) and
            // no snapshot hazard covers it, so no thread can still hold
            // a validated reference; the dtor runs exactly once.
            unsafe { (r.dtor)(r.ptr) };
            HAZARD_GAUGE.on_free();
        }
    }
    rec.retired.borrow_mut().extend(kept);
}

/// Owner-side TLS handle. The destructor empties what it can, orphans
/// the rest, and releases the record for reuse.
struct ThreadRec(&'static HazardRecord);

impl Drop for ThreadRec {
    fn drop(&mut self) {
        let rec = self.0;
        for slot in &rec.slots {
            slot.store(0, Ordering::SeqCst);
        }
        rec.top.set(0);
        scan(rec);
        let leftovers: Vec<Retired> = rec.retired.borrow_mut().drain(..).collect();
        if !leftovers.is_empty() {
            orphans().lock().unwrap().extend(leftovers);
        }
        rec.in_use.store(false, Ordering::Release);
    }
}

thread_local! {
    static REC: ThreadRec = ThreadRec(acquire_record());
}

/// Hazard-pointer backend: garbage bounded by
/// [`static_garbage_bound`] even under frozen threads.
#[derive(Default)]
pub struct HazardReclaimer;

/// A LIFO window of the calling thread's hazard slots, opened at
/// [`HazardReclaimer::pin`]. `protect(i, _)` maps to absolute slot
/// `base + i`; dropping the guard clears the window. Guards must drop
/// in reverse creation order per thread (they do: every call path opens
/// and closes them in strict stack order).
pub struct HazardGuard {
    rec: &'static HazardRecord,
    base: usize,
}

impl Reclaimer for HazardReclaimer {
    type Guard = HazardGuard;
    const BACKEND: &'static str = "hazard";
    const MCAS_NAME: &'static str = "harris-mcas-hazard";

    fn pin() -> HazardGuard {
        REC.with(|r| HazardGuard { rec: r.0, base: r.0.top.get() })
    }

    fn flush() {
        REC.with(|r| scan(r.0));
    }

    fn live_garbage() -> u64 {
        HAZARD_GAUGE.live()
    }

    fn garbage_high_water() -> u64 {
        HAZARD_GAUGE.high_water()
    }
}

impl ReclaimGuard for HazardGuard {
    const NEEDS_PROTECT: bool = true;

    #[inline]
    fn protect(&self, slot: usize, addr: u64) {
        let idx = self.base + slot;
        assert!(
            idx < SLOTS,
            "hazard slot overflow: window base {} + slot {slot} exceeds {SLOTS} \
             (helping recursion deeper than the record can announce)",
            self.base
        );
        self.rec.slots[idx].store(addr, Ordering::SeqCst);
        if idx + 1 > self.rec.top.get() {
            self.rec.top.set(idx + 1);
        }
    }

    #[inline]
    fn clear(&self, slot: usize) {
        let idx = self.base + slot;
        debug_assert!(idx < SLOTS);
        self.rec.slots[idx].store(0, Ordering::SeqCst);
    }

    unsafe fn retire(&self, ptr: *mut u8, len: usize, dtor: unsafe fn(*mut u8)) {
        HAZARD_GAUGE.on_retire();
        let over = {
            let mut retired = self.rec.retired.borrow_mut();
            retired.push(Retired { ptr, len, dtor });
            retired.len() >= SCAN_THRESHOLD
        };
        if over {
            scan(self.rec);
        }
    }
}

impl Drop for HazardGuard {
    fn drop(&mut self) {
        for idx in self.base..self.rec.top.get() {
            self.rec.slots[idx].store(0, Ordering::SeqCst);
        }
        self.rec.top.set(self.base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    unsafe fn free_u64(p: *mut u8) {
        // SAFETY: test blocks below come from `Box::into_raw::<u64>`.
        drop(unsafe { Box::from_raw(p.cast::<u64>()) });
    }

    #[test]
    fn reclaim_hazard_unprotected_block_freed_on_flush() {
        static FREED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn counted_free(p: *mut u8) {
            // SAFETY: `p` came from `Box::into_raw::<u64>`.
            drop(unsafe { Box::from_raw(p.cast::<u64>()) });
            FREED.fetch_add(1, Ordering::SeqCst);
        }
        let g = HazardReclaimer::pin();
        let b = Box::into_raw(Box::new(1u64));
        // SAFETY: `b` is unreachable elsewhere.
        unsafe { g.retire(b.cast(), std::mem::size_of::<u64>(), counted_free) };
        drop(g);
        HazardReclaimer::flush();
        assert_eq!(FREED.load(Ordering::SeqCst), 1, "unprotected block not freed by flush");
    }

    #[test]
    fn reclaim_hazard_protected_block_survives_scan() {
        static FREED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn counted_free(p: *mut u8) {
            // SAFETY: `p` came from `Box::into_raw::<u64>`.
            drop(unsafe { Box::from_raw(p.cast::<u64>()) });
            FREED.fetch_add(1, Ordering::SeqCst);
        }
        let b = Box::into_raw(Box::new(2u64));
        let addr = b as u64;
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let g = HazardReclaimer::pin();
            g.protect(0, addr);
            tx.send(()).unwrap();
            done_rx.recv().unwrap();
            drop(g);
        });
        rx.recv().unwrap();
        let g = HazardReclaimer::pin();
        // SAFETY: retired exactly once; the holder only reads.
        unsafe { g.retire(b.cast(), std::mem::size_of::<u64>(), counted_free) };
        drop(g);
        for _ in 0..4 {
            HazardReclaimer::flush();
        }
        assert_eq!(FREED.load(Ordering::SeqCst), 0, "hazard-protected block was freed");
        done_tx.send(()).unwrap();
        holder.join().unwrap();
        for _ in 0..100 {
            HazardReclaimer::flush();
            if FREED.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::yield_now();
        }
        panic!("block not freed after hazard cleared");
    }

    #[test]
    fn reclaim_hazard_interior_pointer_protects_block() {
        // A hazard may point into the middle of an allocation (entry
        // target words live inside nodes); the range check must cover it.
        let b: *mut [u64; 4] = Box::into_raw(Box::new([0u64; 4]));
        let interior = unsafe { (b as *mut u64).add(2) } as usize;
        let hazards = vec![interior];
        assert!(protected(&hazards, b.cast(), std::mem::size_of::<[u64; 4]>()));
        assert!(!protected(&hazards, unsafe { b.add(1) }.cast(), 32));
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn reclaim_hazard_guard_windows_nest_lifo() {
        let outer = HazardReclaimer::pin();
        outer.protect(0, 0x100);
        outer.protect(1, 0x200);
        {
            let inner = HazardReclaimer::pin();
            inner.protect(0, 0x300);
            REC.with(|r| {
                assert_eq!(r.0.slots[r.0.top.get() - 1].load(Ordering::SeqCst), 0x300);
            });
        }
        REC.with(|r| {
            // Inner window cleared, outer still announced.
            let base = r.0.top.get() - 2;
            assert_eq!(r.0.slots[base].load(Ordering::SeqCst), 0x100);
            assert_eq!(r.0.slots[base + 1].load(Ordering::SeqCst), 0x200);
        });
        drop(outer);
    }

    #[test]
    fn reclaim_hazard_exited_thread_record_is_reusable_and_orphans_drain() {
        static FREED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn counted_free(p: *mut u8) {
            // SAFETY: `p` came from `Box::into_raw::<u64>`.
            drop(unsafe { Box::from_raw(p.cast::<u64>()) });
            FREED.fetch_add(1, Ordering::SeqCst);
        }
        // Hold a hazard here so the exiting thread cannot free its own
        // retired block and must orphan it.
        let b = Box::into_raw(Box::new(3u64));
        let addr = b as u64;
        let holder = HazardReclaimer::pin();
        holder.protect(0, addr);
        let b_usize = b as usize;
        std::thread::spawn(move || {
            let g = HazardReclaimer::pin();
            // SAFETY: retired exactly once.
            unsafe {
                g.retire(b_usize as *mut u8, std::mem::size_of::<u64>(), counted_free)
            };
        })
        .join()
        .unwrap();
        assert_eq!(FREED.load(Ordering::SeqCst), 0);
        drop(holder);
        for _ in 0..100 {
            HazardReclaimer::flush();
            if FREED.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(FREED.load(Ordering::SeqCst), 1, "orphaned block never drained");
        assert!(registered_records() >= 1);
        assert!(static_garbage_bound() >= SCAN_THRESHOLD as u64);
    }

    #[test]
    fn reclaim_hazard_bound_holds_under_churn() {
        // Pure-reclaim churn (no DCAS): many threads retire boxes as
        // fast as they can; live garbage must respect the static bound.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = vec![];
        for _ in 0..4 {
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = HazardReclaimer::pin();
                    for _ in 0..64 {
                        let b = Box::into_raw(Box::new(9u64));
                        // SAFETY: unreachable elsewhere; retired once.
                        unsafe { g.retire(b.cast(), std::mem::size_of::<u64>(), free_u64) };
                    }
                }
            }));
        }
        for _ in 0..200 {
            assert!(
                HazardReclaimer::live_garbage() <= static_garbage_bound(),
                "live garbage {} exceeded static bound {}",
                HazardReclaimer::live_garbage(),
                static_garbage_bound()
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
