//! Per-thread descriptor freelists for the lock-free DCAS strategy.
//!
//! The seed implementation of [`HarrisMcas`](crate::HarrisMcas) paid one
//! `Box` allocation per `dcas` that reached the descriptor slow path and
//! freed it through `crossbeam-epoch` after a grace period. Sundell &
//! Tsigas identify exactly this per-operation allocator round-trip as one
//! of the two dominant costs of software multi-word CAS (the other being
//! retry storms; see [`backoff`](crate::backoff)). This module removes
//! it: descriptors are *recycled* through the same epoch machinery
//! instead of freed, so a steady-state `dcas` touches no allocator — and
//! no atomic or lock — to obtain its descriptor.
//!
//! Because the RDCSS descriptor of each target word (an `Entry` record)
//! is embedded inside its parent DCAS descriptor, pooling the parent
//! pools the RDCSS descriptors with it — one freelist covers both
//! descriptor kinds the protocol uses.
//!
//! # Why a thread-local freelist
//!
//! The cache is a plain `thread_local!` `Vec` of recycled descriptors,
//! in the spirit of the `list_lfrc/pool.rs` node pool but specialized
//! for the hot path: descriptor churn is symmetric (every retire is
//! preceded by an acquire on the same thread, and epoch-deferred
//! releases run on the thread that queued them when it next collects),
//! so inventory naturally stays where it is consumed and no cross-thread
//! freelist — with its locks or CAS loops — is needed. A miss (cold
//! thread, or releases still sitting out a grace period) falls back to
//! `Box::new`; an overflow past [`CACHE_CAP`] frees to the allocator, so
//! idle memory per thread is bounded. Descriptors are interchangeable
//! memory once recycled, so the cache is shared by all `HarrisMcas`
//! instances on the thread; leftover inventory is freed by the TLS
//! destructor at thread exit.
//!
//! The pool can never block and never loops: the strategy's
//! *lock-freedom argument is unchanged*, and correctness never depends
//! on a pool hit (the reserve refill below uses `try_lock` only).
//!
//! # Descriptor memory is immortal
//!
//! Overflow past [`CACHE_CAP`] and thread-exit leftovers spill into a
//! process-wide *reserve* (drawn down by cold caches) instead of going
//! back to the allocator. This is load-bearing for the hazard-pointer
//! backend ([`reclaim::hazard`](crate::reclaim::hazard)): its scanner
//! dereferences descriptor addresses taken from a point-in-time hazard
//! snapshot, possibly after the announcing thread has already moved on
//! — safe only if a once-published descriptor address points at a live
//! `DcasDescriptor` allocation *forever*. Recycling through freelists
//! preserves that; freeing would not. The memory cost is bounded by the
//! peak number of simultaneously checked-out descriptors, which the
//! [`live_descriptors`] gauge measures.
//!
//! # Why recycling is as safe as freeing
//!
//! The seed retired a descriptor with `guard.defer_unchecked(|| drop(box))`
//! — the epoch collector guarantees the closure runs only after every
//! thread that could still hold a tagged pointer to the descriptor has
//! unpinned. Releasing the descriptor *into a freelist* at that same
//! moment is strictly no more visible than freeing it: once the grace
//! period has elapsed no thread can dereference the old incarnation, so
//! the next [`acquire`] may overwrite the memory at will. The owner
//! resets the status word and rewrites the entries while the descriptor
//! is still private, and publication happens through the same SeqCst
//! installation CAS as for a freshly boxed descriptor.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::mcas::DcasDescriptor;

/// Maximum idle descriptors retained per thread; releases beyond this
/// spill to the global reserve. 512
/// [`MAX_CASN_WORDS`](crate::MAX_CASN_WORDS)-entry descriptors
/// ≈ 200 KiB per thread — still noise, while comfortably absorbing the ~2
/// epochs of in-flight retirements that are always aging toward release.
const CACHE_CAP: usize = 512;

/// The freelist, wrapped so the TLS destructor spills leftover
/// inventory into the process-wide reserve (module docs: descriptor
/// memory is immortal).
struct Cache(Vec<*mut DcasDescriptor>);

impl Drop for Cache {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            let mut reserve = reserve().lock().unwrap();
            reserve.extend(self.0.drain(..).map(|p| p as usize));
        }
    }
}

thread_local! {
    static CACHE: RefCell<Cache> = const { RefCell::new(Cache(Vec::new())) };
}

/// Process-wide overflow reserve, as addresses so the `Vec` is `Send`
/// without further argument. Descriptors parked here are exclusively
/// owned by the reserve until re-acquired.
fn reserve() -> &'static Mutex<Vec<usize>> {
    static RESERVE: OnceLock<Mutex<Vec<usize>>> = OnceLock::new();
    RESERVE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Pops a recycled descriptor, exclusively owned by the caller. `None`
/// on a cold cache (or during thread teardown). A cold cache first
/// tries (without blocking) to draw from the global reserve.
pub(crate) fn acquire() -> Option<*mut DcasDescriptor> {
    let local = CACHE.try_with(|c| c.borrow_mut().0.pop()).ok().flatten();
    if local.is_some() {
        return local;
    }
    let from_reserve = reserve().try_lock().ok().and_then(|mut r| r.pop());
    from_reserve.map(|addr| addr as *mut DcasDescriptor)
}

/// Returns a descriptor to the calling thread's freelist — or to the
/// global reserve, if the cache is full or already torn down. Never
/// frees (module docs: descriptor memory is immortal).
///
/// # Safety
///
/// `p` must come from `Box::into_raw`, be exclusively owned by the
/// caller, and never be released twice. For descriptor recycling this
/// means: call either from a reclaimer-deferred destructor (after the
/// grace period / hazard drain for the descriptor's last publication)
/// or with a descriptor that was never published.
pub(crate) unsafe fn release(p: *mut DcasDescriptor) {
    note_free();
    let pooled = CACHE
        .try_with(|c| {
            let mut cache = c.borrow_mut();
            if cache.0.len() < CACHE_CAP {
                cache.0.push(p);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if !pooled {
        reserve().lock().unwrap().push(p as usize);
    }
}

// ---------------------------------------------------------------------
// Checked-out descriptor gauge.
// ---------------------------------------------------------------------

static ACQUIRED: AtomicU64 = AtomicU64::new(0);
static RELEASED: AtomicU64 = AtomicU64::new(0);

/// Records one descriptor checked out to an operation (pool hit or
/// fresh allocation alike).
pub(crate) fn note_alloc() {
    ACQUIRED.fetch_add(1, Ordering::Relaxed);
}

/// Records one descriptor returned (to a freelist, the reserve, or —
/// seed-compat boxed mode — the allocator).
pub(crate) fn note_free() {
    RELEASED.fetch_add(1, Ordering::Relaxed);
}

/// Descriptors currently checked out to operations (or aging through a
/// reclamation grace period), process-wide. Exported as
/// [`StrategyStats::live_descriptors`](crate::StrategyStats).
pub fn live_descriptors() -> u64 {
    ACQUIRED.load(Ordering::Relaxed).saturating_sub(RELEASED.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------
// Orphan accounting.
//
// A thread killed mid-operation (fault injection; in production, a
// thread that dies inside a signal handler or is cancelled) never
// reaches the epoch-deferred `release` of its in-flight descriptor.
// Freeing that descriptor would be unsound — helpers may still hold
// tagged pointers to it and probe its status word arbitrarily late —
// and returning it to a freelist would be a use-after-recycle for the
// same reason. The honest lock-free answer is *quarantine*: the
// descriptor is parked forever (bounded by the number of kills, i.e.
// one per dead thread), stays readable, and is counted so the harness
// can audit that every orphan is accounted for rather than double-freed
// or silently leaked into the freelist.
// ---------------------------------------------------------------------

/// Process-wide count of quarantined orphan descriptors. Reported as
/// [`StrategyStats::descriptor_orphans`](crate::StrategyStats); global,
/// like the thread-local pools it audits.
static ORPHANS: AtomicU64 = AtomicU64::new(0);

/// Number of descriptors quarantined because their owning thread was
/// killed mid-operation. Never decreases.
pub fn orphan_count() -> u64 {
    ORPHANS.load(Ordering::Relaxed)
}

#[cfg(feature = "fault-inject")]
mod inflight {
    use super::*;
    use std::cell::Cell;
    use std::ptr;
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        /// The descriptor the current operation would leak if the
        /// thread died right now. At most one: operations do not nest.
        static INFLIGHT: Cell<*mut DcasDescriptor> = const { Cell::new(ptr::null_mut()) };
    }

    /// Quarantined descriptors, kept (not freed — see module comment)
    /// as addresses so the list is `Send` without further argument.
    fn quarantine() -> &'static Mutex<Vec<usize>> {
        static Q: OnceLock<Mutex<Vec<usize>>> = OnceLock::new();
        Q.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Marks `p` as the calling thread's in-flight descriptor.
    pub(crate) fn track_inflight(p: *mut DcasDescriptor) {
        let _ = INFLIGHT.try_with(|c| c.set(p));
    }

    /// The in-flight descriptor reached its normal release path.
    pub(crate) fn clear_inflight() {
        let _ = INFLIGHT.try_with(|c| c.set(std::ptr::null_mut()));
    }

    /// Moves the calling thread's in-flight descriptor (if any) into
    /// the permanent quarantine; called by the fault injector on the
    /// way out of a panic kill. Returns whether one was quarantined.
    pub fn quarantine_inflight() -> bool {
        let p = INFLIGHT.try_with(|c| c.replace(ptr::null_mut())).unwrap_or(ptr::null_mut());
        if p.is_null() {
            return false;
        }
        quarantine().lock().unwrap().push(p as usize);
        ORPHANS.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Quarantine length, for auditing against [`orphan_count`].
    pub fn quarantine_len() -> usize {
        quarantine().lock().unwrap().len()
    }
}

#[cfg(feature = "fault-inject")]
pub(crate) use inflight::{clear_inflight, track_inflight};
#[cfg(feature = "fault-inject")]
pub use inflight::{quarantine_inflight, quarantine_len};

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> *mut DcasDescriptor {
        Box::into_raw(Box::new(DcasDescriptor::vacant()))
    }

    /// Returns every descriptor in `ps` to the pool: once released, a
    /// descriptor is immortal (module docs) and must never go back to
    /// the allocator, even in tests.
    fn give_back(ps: impl IntoIterator<Item = *mut DcasDescriptor>) {
        for p in ps {
            unsafe { release(p) };
        }
    }

    #[test]
    fn release_then_acquire_recycles_lifo() {
        // Drain anything left by other tests on this thread first.
        let mut drained = vec![];
        while let Some(p) = acquire() {
            drained.push(p);
        }
        let (p1, p2) = (fresh(), fresh());
        unsafe {
            release(p1);
            release(p2);
        }
        // The local cache is LIFO; it is consulted before the shared
        // reserve, so these two pops are deterministic even with other
        // test threads spilling into the reserve concurrently.
        assert_eq!(acquire(), Some(p2));
        assert_eq!(acquire(), Some(p1));
        give_back([p1, p2]);
        give_back(drained);
    }

    #[test]
    fn caches_are_per_thread() {
        let mut drained = vec![];
        while let Some(p) = acquire() {
            drained.push(p);
        }
        let p = fresh();
        unsafe { release(p) };
        // Another thread's cache is independent: whatever it may pull
        // from the shared reserve, it can never see our local `p`.
        let ours = p as usize;
        std::thread::spawn(move || {
            let got = acquire();
            assert_ne!(got.map(|q| q as usize), Some(ours));
            give_back(got);
        })
        .join()
        .unwrap();
        assert_eq!(acquire(), Some(p));
        give_back([p]);
        give_back(drained);
    }

    #[test]
    fn live_descriptor_gauge_moves() {
        let a0 = ACQUIRED.load(Ordering::Relaxed);
        let r0 = RELEASED.load(Ordering::Relaxed);
        note_alloc();
        note_alloc();
        note_free();
        assert!(ACQUIRED.load(Ordering::Relaxed) >= a0 + 2);
        assert!(RELEASED.load(Ordering::Relaxed) > r0);
        let _ = live_descriptors(); // saturating — never panics
    }

    /// A killed thread's in-flight descriptor lands in the quarantine —
    /// not in the freelist, not in the allocator — and the freelist
    /// keeps recycling consistently afterwards.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn pool_orphan() {
        let orphans_before = orphan_count();
        let quarantined = std::thread::spawn(|| {
            let p = fresh();
            track_inflight(p);
            // Simulate the thread dying mid-operation: the descriptor
            // is quarantined, never released.
            assert!(quarantine_inflight());
            // A second sweep finds nothing — no double-quarantine, and
            // hence no path to a double-free.
            assert!(!quarantine_inflight());
            p as usize
        })
        .join()
        .unwrap();
        assert_eq!(orphan_count(), orphans_before + 1);
        assert!(quarantine_len() as u64 >= orphan_count() - orphans_before);
        // The freelist stays consistent: recycling on this thread never
        // hands out the quarantined descriptor.
        let (p1, p2) = (fresh(), fresh());
        unsafe {
            release(p1);
            release(p2);
        }
        for _ in 0..3 {
            let a = acquire().unwrap();
            let b = acquire().unwrap();
            assert_ne!(a as usize, quarantined);
            assert_ne!(b as usize, quarantined);
            unsafe {
                release(a);
                release(b);
            }
        }
    }

    /// The normal release path of a tracked descriptor clears the
    /// in-flight mark, so a later kill has nothing to quarantine.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn cleared_inflight_is_not_quarantined() {
        std::thread::spawn(|| {
            let p = fresh();
            track_inflight(p);
            clear_inflight();
            assert!(!quarantine_inflight());
            drop(unsafe { Box::from_raw(p) });
        })
        .join()
        .unwrap();
    }

    #[test]
    fn cap_overflow_spills_to_reserve_instead_of_growing() {
        // Overflow past CACHE_CAP goes to the shared reserve, never the
        // allocator (module docs: immortality). The local cache stays
        // capped, and at least the capped inventory is re-acquirable
        // (the 32 reserve spills may be claimed by concurrent test
        // threads — the reserve is process-global).
        let mut drained = vec![];
        while let Some(p) = acquire() {
            drained.push(p);
        }
        for _ in 0..(CACHE_CAP + 32) {
            unsafe { release(fresh()) };
        }
        let mut got = vec![];
        while let Some(p) = acquire() {
            got.push(p);
        }
        assert!(got.len() >= CACHE_CAP, "capped inventory lost: {}", got.len());
        give_back(got);
        give_back(drained);
    }
}
