//! Per-thread descriptor freelists for the lock-free DCAS strategy.
//!
//! The seed implementation of [`HarrisMcas`](crate::HarrisMcas) paid one
//! `Box` allocation per `dcas` that reached the descriptor slow path and
//! freed it through `crossbeam-epoch` after a grace period. Sundell &
//! Tsigas identify exactly this per-operation allocator round-trip as one
//! of the two dominant costs of software multi-word CAS (the other being
//! retry storms; see [`backoff`](crate::backoff)). This module removes
//! it: descriptors are *recycled* through the same epoch machinery
//! instead of freed, so a steady-state `dcas` touches no allocator — and
//! no atomic or lock — to obtain its descriptor.
//!
//! Because the RDCSS descriptor of each target word (an `Entry` record)
//! is embedded inside its parent DCAS descriptor, pooling the parent
//! pools the RDCSS descriptors with it — one freelist covers both
//! descriptor kinds the protocol uses.
//!
//! # Why a thread-local freelist
//!
//! The cache is a plain `thread_local!` `Vec` of recycled descriptors,
//! in the spirit of the `list_lfrc/pool.rs` node pool but specialized
//! for the hot path: descriptor churn is symmetric (every retire is
//! preceded by an acquire on the same thread, and epoch-deferred
//! releases run on the thread that queued them when it next collects),
//! so inventory naturally stays where it is consumed and no cross-thread
//! freelist — with its locks or CAS loops — is needed. A miss (cold
//! thread, or releases still sitting out a grace period) falls back to
//! `Box::new`; an overflow past [`CACHE_CAP`] frees to the allocator, so
//! idle memory per thread is bounded. Descriptors are interchangeable
//! memory once recycled, so the cache is shared by all `HarrisMcas`
//! instances on the thread; leftover inventory is freed by the TLS
//! destructor at thread exit.
//!
//! The pool can never block and never loops: the strategy's
//! *lock-freedom argument is unchanged*, and correctness never depends
//! on a pool hit.
//!
//! # Why recycling is as safe as freeing
//!
//! The seed retired a descriptor with `guard.defer_unchecked(|| drop(box))`
//! — the epoch collector guarantees the closure runs only after every
//! thread that could still hold a tagged pointer to the descriptor has
//! unpinned. Releasing the descriptor *into a freelist* at that same
//! moment is strictly no more visible than freeing it: once the grace
//! period has elapsed no thread can dereference the old incarnation, so
//! the next [`acquire`] may overwrite the memory at will. The owner
//! resets the status word and rewrites the entries while the descriptor
//! is still private, and publication happens through the same SeqCst
//! installation CAS as for a freshly boxed descriptor.

use std::cell::RefCell;

use crate::mcas::DcasDescriptor;

/// Maximum idle descriptors retained per thread; releases beyond this are
/// freed. 512 [`MAX_CASN_WORDS`](crate::MAX_CASN_WORDS)-entry descriptors
/// ≈ 200 KiB per thread — still noise, while comfortably absorbing the ~2
/// epochs of in-flight retirements that are always aging toward release.
const CACHE_CAP: usize = 512;

/// The freelist, wrapped so the TLS destructor returns leftover
/// inventory to the allocator.
struct Cache(Vec<*mut DcasDescriptor>);

impl Drop for Cache {
    fn drop(&mut self) {
        for p in self.0.drain(..) {
            // SAFETY: every pointer in the cache came from `Box::into_raw`
            // (release contract) and is exclusively owned by the cache.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

thread_local! {
    static CACHE: RefCell<Cache> = const { RefCell::new(Cache(Vec::new())) };
}

/// Pops a recycled descriptor, exclusively owned by the caller. `None`
/// on a cold cache (or during thread teardown).
pub(crate) fn acquire() -> Option<*mut DcasDescriptor> {
    CACHE.try_with(|c| c.borrow_mut().0.pop()).ok().flatten()
}

/// Returns a descriptor to the calling thread's freelist — or to the
/// allocator, if the cache is full or already torn down.
///
/// # Safety
///
/// `p` must come from `Box::into_raw`, be exclusively owned by the
/// caller, and never be released twice. For descriptor recycling this
/// means: call either from an epoch-deferred closure (after the grace
/// period for the descriptor's last publication) or with a descriptor
/// that was never published.
pub(crate) unsafe fn release(p: *mut DcasDescriptor) {
    let pooled = CACHE
        .try_with(|c| {
            let mut cache = c.borrow_mut();
            if cache.0.len() < CACHE_CAP {
                cache.0.push(p);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if !pooled {
        // SAFETY: caller contract — `p` is an exclusively owned
        // `Box::into_raw` allocation.
        drop(unsafe { Box::from_raw(p) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> *mut DcasDescriptor {
        Box::into_raw(Box::new(DcasDescriptor::vacant()))
    }

    #[test]
    fn release_then_acquire_recycles_lifo() {
        // Drain anything left by other tests on this thread first.
        while acquire().is_some() {}
        let (p1, p2) = (fresh(), fresh());
        unsafe {
            release(p1);
            release(p2);
        }
        assert_eq!(acquire(), Some(p2));
        assert_eq!(acquire(), Some(p1));
        assert_eq!(acquire(), None);
        drop(unsafe { Box::from_raw(p1) });
        drop(unsafe { Box::from_raw(p2) });
    }

    #[test]
    fn caches_are_per_thread() {
        while acquire().is_some() {}
        let p = fresh();
        unsafe { release(p) };
        // Another thread's cache is independent: it must miss.
        std::thread::spawn(|| assert_eq!(acquire(), None)).join().unwrap();
        assert_eq!(acquire(), Some(p));
        drop(unsafe { Box::from_raw(p) });
    }

    #[test]
    fn cap_overflow_frees_instead_of_growing() {
        while acquire().is_some() {}
        for _ in 0..(CACHE_CAP + 32) {
            unsafe { release(fresh()) };
        }
        let mut n = 0;
        while acquire().is_some() {
            n += 1;
        }
        assert_eq!(n, CACHE_CAP);
    }
}
