//! A latency-model wrapper: simulate hardware DCAS of varying cost.
//!
//! The paper's Section 2 assumes "DCAS is a relatively expensive
//! operation, that is, has longer latency than traditional CAS, which in
//! turn has longer latency than either a read or a write" — but, absent
//! hardware, nobody knows *how much* more expensive. [`Delayed`] wraps a
//! strategy and adds a configurable spin delay to every DCAS (and,
//! optionally, every load), letting benches sweep the assumed DCAS
//! latency and answer the question the paper leaves open: *how cheap
//! would hardware DCAS have to be for the DCAS deques to win?* (Bench
//! `e9_latency_model`.)

use crate::{CasnEntry, DcasStrategy, DcasWord};

/// Wraps `S`, spinning `DCAS_SPIN` iterations around every DCAS and
/// `LOAD_SPIN` around every load/store. Spin iterations are
/// `std::hint::spin_loop` pause cycles — a stable, frequency-independent
/// unit of artificial latency.
#[derive(Default)]
pub struct Delayed<S: DcasStrategy, const DCAS_SPIN: u32, const LOAD_SPIN: u32 = 0> {
    inner: S,
}

impl<S: DcasStrategy, const DCAS_SPIN: u32, const LOAD_SPIN: u32>
    Delayed<S, DCAS_SPIN, LOAD_SPIN>
{
    /// Creates a delayed wrapper around a default-constructed `S`.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn spin(n: u32) {
        for _ in 0..n {
            std::hint::spin_loop();
        }
    }
}

impl<S: DcasStrategy, const DCAS_SPIN: u32, const LOAD_SPIN: u32> DcasStrategy
    for Delayed<S, DCAS_SPIN, LOAD_SPIN>
{
    type Reclaimer = S::Reclaimer;
    const IS_LOCK_FREE: bool = S::IS_LOCK_FREE;
    const HAS_CHEAP_STRONG: bool = S::HAS_CHEAP_STRONG;
    const NAME: &'static str = "delayed";

    fn load(&self, w: &DcasWord) -> u64 {
        Self::spin(LOAD_SPIN);
        self.inner.load(w)
    }

    fn store(&self, w: &DcasWord, v: u64) {
        Self::spin(LOAD_SPIN);
        self.inner.store(w, v)
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        Self::spin(DCAS_SPIN / 2);
        self.inner.cas(w, old, new)
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        Self::spin(DCAS_SPIN);
        self.inner.dcas(a1, a2, o1, o2, n1, n2)
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        Self::spin(DCAS_SPIN);
        self.inner.dcas_strong(a1, a2, o1, o2, n1, n2)
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        // Scale the modeled latency with the entry count: a hypothetical
        // hardware CASN would touch one cache line per word.
        Self::spin(DCAS_SPIN / 2 * entries.len() as u32);
        self.inner.casn(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalSeqLock;

    #[test]
    fn semantics_are_transparent() {
        let s: Delayed<GlobalSeqLock, 16, 2> = Delayed::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
        assert!(s.cas(&a, 8, 16));
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 4));
        assert_eq!((o1, o2), (16, 12));
        s.store(&a, 0);
        assert_eq!(s.load(&a), 0);
    }

    #[test]
    fn delay_is_measurable() {
        // Coarse sanity check: 100k heavily-delayed DCASes take visibly
        // longer than undelayed ones.
        let fast: Delayed<GlobalSeqLock, 0> = Delayed::new();
        let slow: Delayed<GlobalSeqLock, 2048> = Delayed::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        let time = |s: &dyn Fn() -> bool| {
            let t = std::time::Instant::now();
            for _ in 0..20_000 {
                let _ = s();
            }
            t.elapsed()
        };
        let tf = time(&|| fast.dcas(&a, &b, 0, 0, 0, 0));
        let ts = time(&|| slow.dcas(&a, &b, 0, 0, 0, 0));
        assert!(ts > tf, "delay had no effect: fast={tf:?} slow={ts:?}");
    }
}
