//! The simplest blocking DCAS emulation: one global mutex.

use std::sync::atomic::Ordering;

use parking_lot::Mutex;

use crate::strategy::{validate_args, validate_casn};
use crate::{CasnEntry, DcasStrategy, DcasWord};

/// Blocking DCAS emulation that serializes every operation on a single
/// process-wide mutex.
///
/// This corresponds to the "blocking software emulation" the paper cites as
/// its reference \[2\] (Agesen & Cartwright, *Platform independent double
/// compare and swap operation*). It is the correctness baseline: trivially
/// linearizable, trivially *not* lock-free, and maximally contended. Loads
/// also take the lock, so a `GlobalLock` DCAS behaves as a single
/// indivisible action with respect to every other access.
#[derive(Default)]
pub struct GlobalLock {
    lock: Mutex<()>,
}

impl GlobalLock {
    /// Creates a fresh emulation instance (each instance has its own lock).
    pub fn new() -> Self {
        Self::default()
    }
}

impl DcasStrategy for GlobalLock {
    type Reclaimer = crate::reclaim::EpochReclaimer;
    const IS_LOCK_FREE: bool = false;
    const HAS_CHEAP_STRONG: bool = true;
    const NAME: &'static str = "global-lock";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        let _g = self.lock.lock();
        w.raw_load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, w: &DcasWord, v: u64) {
        debug_assert!(crate::is_valid_payload(v));
        let _g = self.lock.lock();
        w.raw_store(v, Ordering::SeqCst);
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        debug_assert!(crate::is_valid_payload(old) && crate::is_valid_payload(new));
        let _g = self.lock.lock();
        if w.raw_load(Ordering::SeqCst) == old {
            w.raw_store(new, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        let _g = self.lock.lock();
        if a1.raw_load(Ordering::SeqCst) == o1 && a2.raw_load(Ordering::SeqCst) == o2 {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        validate_args(a1, a2, &[*o1, *o2, n1, n2]);
        let _g = self.lock.lock();
        let v1 = a1.raw_load(Ordering::SeqCst);
        let v2 = a2.raw_load(Ordering::SeqCst);
        if v1 == *o1 && v2 == *o2 {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
            true
        } else {
            *o1 = v1;
            *o2 = v2;
            false
        }
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        validate_casn(entries);
        let _g = self.lock.lock();
        if entries.iter().any(|e| e.word.raw_load(Ordering::SeqCst) != e.old) {
            return false;
        }
        for e in entries.iter() {
            e.word.raw_store(e.new, Ordering::SeqCst);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_success_and_failure() {
        let s = GlobalLock::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert_eq!(s.load(&a), 8);
        assert_eq!(s.load(&b), 12);
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
    }

    #[test]
    fn strong_form_returns_view_on_failure() {
        let s = GlobalLock::new();
        let a = DcasWord::new(8);
        let b = DcasWord::new(12);
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 16, 20));
        assert_eq!((o1, o2), (8, 12));
        // With the corrected view the retry succeeds.
        assert!(s.dcas_strong(&a, &b, &mut o1, &mut o2, 16, 20));
        assert_eq!((s.load(&a), s.load(&b)), (16, 20));
    }

    #[test]
    fn partial_match_is_failure() {
        let s = GlobalLock::new();
        let a = DcasWord::new(4);
        let b = DcasWord::new(8);
        // First word matches, second does not: nothing is written.
        assert!(!s.dcas(&a, &b, 4, 12, 0, 0));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
        // Second matches, first does not.
        assert!(!s.dcas(&a, &b, 8, 8, 0, 0));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
    }

    #[test]
    fn store_then_load() {
        let s = GlobalLock::new();
        let a = DcasWord::new(0);
        s.store(&a, 1 << 20);
        assert_eq!(s.load(&a), 1 << 20);
    }
}
