//! Elimination/backoff arrays: pairing colliding same-end pushes and
//! pops instead of retrying against a hot word.
//!
//! When a `push_x` and a `pop_x` at the **same end** of a deque collide,
//! retrying both against the end's index word only deepens the
//! contention. Shavit & Touitou's elimination observation applies
//! instead: two overlapping operations whose net effect on the deque is
//! nil can exchange the value directly and both complete — linearized
//! back-to-back at the instant of the exchange — without touching the
//! deque at all. The deque retry loops consult an [`EliminationArray`]
//! per end *after a failed DCAS* (i.e. as backoff), gated by
//! [`EndConfig`]; with elimination off (the default, seed-compatible
//! arm) nothing changes.
//!
//! Same-end pairing only, and **unbounded deques only**:
//!
//! * `push_right`/`pop_right` overlapping linearize adjacently (push
//!   then pop returns the pushed value), but that is legal only where
//!   the push could succeed at the exchange instant. On an unbounded
//!   deque pushes never fail, so the pairing is unconditional; on a
//!   *bounded* deque the exchanger cannot prove non-fullness at that
//!   instant, and an eliminated push completing while the deque is full
//!   (where it must report full) is non-linearizable. The bounded array
//!   deque therefore exposes no elimination knob.
//! * A cross-end pair is never legal (`pop_left` must return the
//!   leftmost element, which a concurrent `push_right` supplies only
//!   when the deque is empty — unknowable without consulting it).
//!
//! Each eliminating deque therefore owns two arrays, one per end.
//!
//! # Slot protocol
//!
//! Each slot is a control word packing `(version << 2) | state` plus a
//! value word. States: `EMPTY`, `CLAIMED` (a pusher is writing the
//! value), `OFFER` (value visible, waiting for a taker). **Every**
//! transition bumps the version, so a slow popper that read an offer
//! cannot take a *recycled* incarnation of the slot by mistake (the
//! classic ABA of unversioned exchanger slots):
//!
//! ```text
//! EMPTY(v) --pusher CAS--> CLAIMED(v+1) --write value; publish-->
//! OFFER(v+2) --taker CAS--> EMPTY(v+3)     (hit: popper owns value)
//!            --pusher CAS--> EMPTY(v+3)    (miss: offer timed out)
//! ```
//!
//! The value word is written only by the claiming pusher, only while the
//! slot is `CLAIMED`; a popper that reads the value under `OFFER(v)` and
//! then CASes the control word from exactly `OFFER(v)` has therefore read
//! the offered value and owns it exclusively.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::stats::{Counters, StrategyStats};

const STATE_MASK: u64 = 0b11;
const EMPTY: u64 = 0;
const CLAIMED: u64 = 1;
const OFFER: u64 = 2;

#[inline]
fn next(word: u64, state: u64) -> u64 {
    // Bump the version (high 62 bits) and set the new state:
    // `(word | MASK) + 1` is `(ver + 1) << 2` for any current state.
    (word | STATE_MASK).wrapping_add(1) | state
}

/// Per-end knobs for the deque retry loops. Lives next to
/// [`McasConfig`](crate::McasConfig) in spirit: the default is the
/// seed-compatible arm (no elimination), and benches ablate against
/// [`EndConfig::eliminating`]. Honored by the *unbounded* deques only —
/// see the module docs for why elimination on a bounded deque would
/// break linearizability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndConfig {
    /// Consult an elimination array in the retry loops. Default `false`
    /// (seed-compatible: retries spin on the end words alone).
    pub elimination: bool,
    /// Slots per end array. More slots reduce pairing probability but
    /// also pairing contention; a handful suffices for tens of threads.
    pub elim_slots: usize,
    /// Wait iterations a pusher spends on its published offer before
    /// cancelling it (exponential spinning that decays into OS yields,
    /// so waiting pushers do not starve their prospective partners).
    pub offer_spins: u32,
}

impl Default for EndConfig {
    fn default() -> Self {
        EndConfig { elimination: false, elim_slots: 4, offer_spins: 256 }
    }
}

impl EndConfig {
    /// Elimination enabled with the default sizing.
    pub fn eliminating() -> Self {
        EndConfig { elimination: true, ..EndConfig::default() }
    }
}

struct Slot {
    /// `(version << 2) | state`.
    control: AtomicU64,
    value: AtomicU64,
}

/// One end's elimination array. See the module docs for the protocol.
pub struct EliminationArray {
    slots: Box<[CachePadded<Slot>]>,
    offer_spins: u32,
    counters: Counters,
}

thread_local! {
    /// Per-thread probe cursor so concurrent threads start on different
    /// slots instead of all piling onto slot 0.
    static CURSOR: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn probe_index(len: usize) -> usize {
    let raw = CURSOR.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        // First use: scatter by thread identity (address of the TLS cell
        // is as good a per-thread nonce as any).
        v.wrapping_add(c as *const _ as u64 >> 6)
    });
    (raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % len
}

impl EliminationArray {
    /// Creates an array per `config` (`elim_slots` slots, rounded up to 1).
    pub fn new(config: &EndConfig) -> Self {
        let n = config.elim_slots.max(1);
        EliminationArray {
            slots: (0..n)
                .map(|_| {
                    CachePadded::new(Slot {
                        control: AtomicU64::new(EMPTY),
                        value: AtomicU64::new(0),
                    })
                })
                .collect(),
            offer_spins: config.offer_spins,
            counters: Counters::default(),
        }
    }

    /// A pusher's elimination attempt: publish `value` as an offer and
    /// wait briefly for a popper. `Ok(())` means a popper took the value
    /// — the push is complete. `Err(value)` returns ownership to the
    /// caller (no partner showed up).
    pub fn offer(&self, value: u64) -> Result<(), u64> {
        let slot = &self.slots[probe_index(self.slots.len())];
        let ctl = slot.control.load(Ordering::SeqCst);
        if ctl & STATE_MASK != EMPTY {
            return Err(value);
        }
        let claimed = next(ctl, CLAIMED);
        if slot
            .control
            .compare_exchange(ctl, claimed, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(value);
        }
        slot.value.store(value, Ordering::SeqCst);
        let offered = next(claimed, OFFER);
        slot.control.store(offered, Ordering::SeqCst);

        // Exponential spin first, then OS yields: on a single CPU a pure
        // spin wait would monopolize the core for the whole window, so no
        // popper could ever run concurrently and take the offer.
        let mut backoff = crate::Backoff::new();
        for _ in 0..self.offer_spins {
            if slot.control.load(Ordering::SeqCst) != offered {
                // A popper moved the slot on: the exchange happened.
                self.counters.inc_elim_hit();
                return Ok(());
            }
            backoff.snooze();
        }

        // Timed out: withdraw the offer. Losing this CAS means a popper
        // took the value at the last moment — still a hit.
        match slot.control.compare_exchange(
            offered,
            next(offered, EMPTY),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                self.counters.inc_elim_miss();
                Err(value)
            }
            Err(_) => {
                self.counters.inc_elim_hit();
                Ok(())
            }
        }
    }

    /// A popper's elimination attempt: take a pending same-end offer, if
    /// any. `Some(value)` transfers ownership of the value to the caller.
    pub fn try_take(&self) -> Option<u64> {
        let slot = &self.slots[probe_index(self.slots.len())];
        let ctl = slot.control.load(Ordering::SeqCst);
        if ctl & STATE_MASK != OFFER {
            return None;
        }
        // Stable while the control word stays `OFFER(ctl)`: only the
        // claiming pusher writes the value, and only before publishing.
        let value = slot.value.load(Ordering::SeqCst);
        slot.control
            .compare_exchange(ctl, next(ctl, EMPTY), Ordering::SeqCst, Ordering::SeqCst)
            .ok()
            .map(|_| value)
        // Hits are counted by the pusher side (both sides observe every
        // exchange; counting once keeps hit+miss == offers resolved).
    }

    /// Snapshot of this array's counters (only the `elim_*` fields are
    /// populated). All-zero unless the crate is built with the `stats`
    /// feature.
    pub fn stats(&self) -> StrategyStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Arc;

    fn eliminating(slots: usize, spins: u32) -> EliminationArray {
        EliminationArray::new(&EndConfig {
            elimination: true,
            elim_slots: slots,
            offer_spins: spins,
        })
    }

    #[test]
    fn version_bumps_and_state_packs() {
        let w0 = EMPTY;
        let w1 = next(w0, CLAIMED);
        let w2 = next(w1, OFFER);
        let w3 = next(w2, EMPTY);
        assert_eq!(w1 & STATE_MASK, CLAIMED);
        assert_eq!(w2 & STATE_MASK, OFFER);
        assert_eq!(w3 & STATE_MASK, EMPTY);
        // Versions strictly increase, so no control word ever repeats.
        assert!(w1 >> 2 > w0 >> 2);
        assert!(w2 >> 2 > w1 >> 2);
        assert!(w3 >> 2 > w2 >> 2);
    }

    #[test]
    fn unpaired_offer_times_out_and_returns_value() {
        let a = eliminating(1, 8);
        assert_eq!(a.offer(40), Err(40));
        // The slot is EMPTY again: a popper finds nothing.
        assert_eq!(a.try_take(), None);
    }

    #[test]
    fn take_without_offer_is_none() {
        let a = eliminating(4, 8);
        assert_eq!(a.try_take(), None);
    }

    #[test]
    fn concurrent_exchange_conserves_values() {
        // Pushers offer unique values; poppers take. Every value must be
        // accounted for exactly once: either exchanged (pusher Ok +
        // popper got it) or returned to its pusher (Err).
        let a = Arc::new(eliminating(2, 2_000));
        let taken: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        let kept: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        let hits = Arc::new(StdAtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let (a, kept, hits) = (a.clone(), kept.clone(), hits.clone());
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..5_000u64 {
                        let v = (t * 5_000 + i) * 4 + 4;
                        match a.offer(v) {
                            Ok(()) => {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(back) => {
                                assert_eq!(back, v);
                                mine.push(v);
                            }
                        }
                    }
                    kept.lock().unwrap().extend(mine);
                });
            }
            for _ in 0..2 {
                let (a, taken) = (a.clone(), taken.clone());
                s.spawn(move || {
                    let mut mine = Vec::new();
                    // Keep taking until the pushers are clearly done.
                    let mut idle = 0u32;
                    while idle < 50_000 {
                        match a.try_take() {
                            Some(v) => {
                                mine.push(v);
                                idle = 0;
                            }
                            None => idle += 1,
                        }
                    }
                    taken.lock().unwrap().extend(mine);
                });
            }
        });
        let taken = taken.lock().unwrap();
        let kept = kept.lock().unwrap();
        // Exchanged exactly = pusher-side hits, and no value both kept
        // and taken, none lost, none duplicated.
        assert_eq!(taken.len() as u64, hits.load(Ordering::Relaxed));
        let mut all: Vec<u64> = taken.iter().chain(kept.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10_000, "values lost or duplicated");
    }

    #[test]
    fn version_wraparound_has_no_aba_false_match() {
        // The version counter lives in the high 62 bits of the control
        // word. Near `u64::MAX` it wraps to 0; what matters is that no
        // control word a slow thread captured *before* the wrap can
        // spuriously match a recycled slot *after* it.
        let a = eliminating(1, 50_000);
        let slot = &a.slots[0];

        // next() at the boundary: the version wraps, the state bits
        // stay exact.
        let max_empty = !STATE_MASK | EMPTY;
        let w1 = next(max_empty, CLAIMED);
        assert_eq!(w1 >> 2, 0, "version wraps to 0, not saturates");
        assert_eq!(w1 & STATE_MASK, CLAIMED);
        let w2 = next(w1, OFFER);
        assert_eq!((w2 >> 2, w2 & STATE_MASK), (1, OFFER));

        // A real exchange whose CLAIMED -> OFFER -> EMPTY transitions
        // cross the wraparound still hands over the value exactly once.
        slot.control.store(max_empty, Ordering::SeqCst);
        std::thread::scope(|s| {
            let taker = s.spawn(|| loop {
                if let Some(v) = a.try_take() {
                    return v;
                }
                std::thread::yield_now();
            });
            assert_eq!(a.offer(44), Ok(()));
            assert_eq!(taker.join().unwrap(), 44);
        });
        // The value was transferred once, not duplicated by the wrap.
        assert_eq!(a.try_take(), None);

        // The ABA scenario proper: a slow popper captured the pre-wrap
        // OFFER word, the slot cycles through the wrap and is
        // re-offered, and the popper's stale CAS must fail rather than
        // steal the new offer.
        let stale_offer = !STATE_MASK | OFFER;
        slot.control.store(stale_offer, Ordering::SeqCst);
        slot.value.store(48, Ordering::SeqCst);
        assert_eq!(a.try_take(), Some(48)); // legitimate take: version wraps
        assert_eq!(slot.control.load(Ordering::SeqCst), next(stale_offer, EMPTY));
        assert_eq!(slot.control.load(Ordering::SeqCst) & STATE_MASK, EMPTY);

        // Recycle the slot exactly as a pusher would: claim, write the
        // value, publish the offer.
        let e = slot.control.load(Ordering::SeqCst);
        let c = next(e, CLAIMED);
        slot.control.store(c, Ordering::SeqCst);
        slot.value.store(52, Ordering::SeqCst);
        let o = next(c, OFFER);
        slot.control.store(o, Ordering::SeqCst);

        // The stale popper wakes up and retries with its pre-wrap
        // word: the post-wrap offer has a restarted version, so the
        // CAS fails — no false match, and the fresh offer stays intact
        // for its rightful taker.
        assert_ne!(o, stale_offer);
        assert!(slot
            .control
            .compare_exchange(
                stale_offer,
                next(stale_offer, EMPTY),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err());
        assert_eq!(a.try_take(), Some(52));
    }

    #[cfg(feature = "stats")]
    #[test]
    fn stats_count_hits_and_misses() {
        let a = eliminating(1, 4);
        assert_eq!(a.offer(4), Err(4)); // miss
        let s = a.stats();
        assert_eq!(s.elim_misses, 1);
        assert_eq!(s.elim_hits, 0);
        assert_eq!(s.elim_hit_rate(), Some(0.0));
    }
}
