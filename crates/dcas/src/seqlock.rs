//! A sequence-lock DCAS emulation: serialized writers, optimistic readers.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::strategy::{validate_args, validate_casn};
use crate::{CasnEntry, DcasStrategy, DcasWord};

/// Blocking DCAS emulation built on a single global sequence word.
///
/// Writers (DCAS and `store`) spin to move the sequence from even to odd,
/// perform their writes, and release by bumping it back to even. Readers
/// never write shared state: they sample the sequence, read the word, and
/// retry if the sequence moved or was odd. Compared with [`GlobalLock`],
/// loads are wait-free in the absence of writers and never contend with
/// each other.
///
/// This is still a *blocking* emulation (a writer stalled inside its
/// critical section blocks everyone), but it is the natural software
/// approximation of "DCAS as a short hardware transaction", and it is the
/// fastest of the blocking strategies under read-heavy workloads.
///
/// [`GlobalLock`]: crate::GlobalLock
#[derive(Default)]
pub struct GlobalSeqLock {
    seq: AtomicU64,
}

impl GlobalSeqLock {
    /// Creates a fresh emulation instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spins until the sequence word is even and we have moved it to odd.
    #[inline]
    fn acquire(&self) -> u64 {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s.is_multiple_of(2)
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn release(&self, s: u64) {
        self.seq.store(s + 2, Ordering::Release);
    }
}

impl DcasStrategy for GlobalSeqLock {
    type Reclaimer = crate::reclaim::EpochReclaimer;
    const IS_LOCK_FREE: bool = false;
    const HAS_CHEAP_STRONG: bool = true;
    const NAME: &'static str = "global-seqlock";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1.is_multiple_of(2) {
                let v = w.raw_load(Ordering::Acquire);
                if self.seq.load(Ordering::Acquire) == s1 {
                    return v;
                }
            }
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn store(&self, w: &DcasWord, v: u64) {
        debug_assert!(crate::is_valid_payload(v));
        let s = self.acquire();
        w.raw_store(v, Ordering::SeqCst);
        self.release(s);
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        debug_assert!(crate::is_valid_payload(old) && crate::is_valid_payload(new));
        let s = self.acquire();
        let ok = w.raw_load(Ordering::SeqCst) == old;
        if ok {
            w.raw_store(new, Ordering::SeqCst);
        }
        self.release(s);
        ok
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        let s = self.acquire();
        let ok = a1.raw_load(Ordering::SeqCst) == o1 && a2.raw_load(Ordering::SeqCst) == o2;
        if ok {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
        }
        self.release(s);
        ok
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        validate_args(a1, a2, &[*o1, *o2, n1, n2]);
        let s = self.acquire();
        let v1 = a1.raw_load(Ordering::SeqCst);
        let v2 = a2.raw_load(Ordering::SeqCst);
        let ok = v1 == *o1 && v2 == *o2;
        if ok {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
        } else {
            *o1 = v1;
            *o2 = v2;
        }
        self.release(s);
        ok
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        validate_casn(entries);
        let s = self.acquire();
        let ok = entries.iter().all(|e| e.word.raw_load(Ordering::SeqCst) == e.old);
        if ok {
            for e in entries.iter() {
                e.word.raw_store(e.new, Ordering::SeqCst);
            }
        }
        self.release(s);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_success_and_failure() {
        let s = GlobalSeqLock::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
    }

    #[test]
    fn strong_form_snapshot() {
        let s = GlobalSeqLock::new();
        let a = DcasWord::new(100);
        let b = DcasWord::new(200);
        let (mut o1, mut o2) = (4, 8);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 0, 0));
        assert_eq!((o1, o2), (100, 200));
    }

    #[test]
    fn sequence_stays_even_after_ops() {
        let s = GlobalSeqLock::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        let _ = s.dcas(&a, &b, 0, 0, 4, 4);
        let _ = s.dcas(&a, &b, 0, 0, 4, 4); // fails
        s.store(&a, 0);
        assert_eq!(s.seq.load(Ordering::SeqCst) % 2, 0);
    }

    #[test]
    fn readers_see_consistent_pairs_under_writers() {
        // Two words are always updated together to equal values; a torn
        // read protocol would let a reader observe a mismatched pair.
        use std::sync::Arc;
        let s = Arc::new(GlobalSeqLock::new());
        let words = Arc::new((DcasWord::new(0), DcasWord::new(0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer = {
            let (s, words, stop) = (s.clone(), words.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let nv = v + 4;
                    assert!(s.dcas(&words.0, &words.1, v, v, nv, nv));
                    v = nv;
                }
            })
        };
        for _ in 0..10_000 {
            // Each individually-atomic load pair: since both words always
            // hold the same value, the *second* load can only be >= first.
            let v1 = s.load(&words.0);
            let v2 = s.load(&words.1);
            assert!(v2 >= v1, "reader observed time going backwards: {v1} then {v2}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
