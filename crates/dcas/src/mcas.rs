//! Lock-free DCAS emulation from single-word CAS.
//!
//! This module implements the restricted double-compare single-swap
//! (RDCSS) and a two-entry multi-word CAS (CASN) in the style of Harris,
//! Fraser & Pratt, *A Practical Multi-Word Compare-and-Swap Operation*
//! (DISC 2002) — the "non-blocking software emulation" family the paper
//! cites as references \[8, 30\]. With this strategy the deque algorithms
//! built on top are non-blocking end-to-end.
//!
//! # How it works
//!
//! A DCAS allocates a *descriptor* recording both (address, old, new)
//! entries plus a status word (`UNDECIDED` → `SUCCEEDED`/`FAILED`).
//!
//! * **Phase 1** installs a tagged pointer to the descriptor into each
//!   target word (in ascending address order, to bound mutual helping)
//!   using RDCSS, which atomically refuses the installation once the
//!   status has been decided.
//! * The status is then decided with a single CAS.
//! * **Phase 2** replaces each tagged pointer by the new value (on
//!   success) or the old value (on failure).
//!
//! Any thread that encounters a tagged word *helps* the operation it
//! belongs to before retrying its own, which is what makes the emulation
//! lock-free: a stalled thread's operation is finished by whoever trips
//! over it.
//!
//! # Tagging and reclamation
//!
//! The two reserved low bits of every [`DcasWord`] distinguish payloads
//! (`00`) from RDCSS descriptors (`01`) and DCAS descriptors (`10`).
//! Descriptors are reclaimed with `crossbeam-epoch`: every public
//! operation runs inside one pinned epoch guard, and the descriptor is
//! retired by its owner after phase 2. Transient re-installations by slow
//! helpers are safe because a helper only acts within a pinned section
//! whose guard predates the owner's retirement, so the epoch cannot
//! advance far enough to free a descriptor while any thread can still
//! observe a tagged pointer to it.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch as epoch;

use crate::strategy::validate_args;
use crate::{DcasStrategy, DcasWord};

const TAG_MASK: u64 = 0b11;
const RDCSS_TAG: u64 = 0b01;
const DCAS_TAG: u64 = 0b10;

const UNDECIDED: u64 = 0;
const SUCCEEDED: u64 = 1;
const FAILED: u64 = 2;

#[inline]
fn is_rdcss(v: u64) -> bool {
    v & TAG_MASK == RDCSS_TAG
}

#[inline]
fn is_dcas(v: u64) -> bool {
    v & TAG_MASK == DCAS_TAG
}

/// One target word of a DCAS, together with a back-pointer to its
/// descriptor. A tagged pointer to an `Entry` doubles as the RDCSS
/// descriptor for installing the parent into `addr`: all RDCSS fields
/// (control address = parent status, expected control = `UNDECIDED`,
/// new value = tagged parent) are derivable from it and immutable.
struct Entry {
    parent: *const DcasDescriptor,
    addr: *const DcasWord,
    old: u64,
    new: u64,
}

/// A two-entry CASN descriptor. Entries are sorted by target address.
#[repr(align(8))]
struct DcasDescriptor {
    status: AtomicU64,
    entries: [Entry; 2],
}

// The raw pointers inside a descriptor refer to (a) the descriptor itself
// and (b) `DcasWord`s that the caller guarantees outlive the operation;
// descriptors are shared across helping threads by design.
unsafe impl Send for DcasDescriptor {}
unsafe impl Sync for DcasDescriptor {}

#[inline]
fn tagged_entry(e: &Entry) -> u64 {
    e as *const Entry as u64 | RDCSS_TAG
}

#[inline]
fn tagged_desc(d: *const DcasDescriptor) -> u64 {
    d as u64 | DCAS_TAG
}

/// Lock-free DCAS emulation (RDCSS + two-entry CASN).
///
/// See the module-level documentation for the protocol. All public
/// operations are lock-free; `dcas` performs one heap allocation per
/// invocation that reaches the descriptor-installation slow path (a
/// mismatch detected by a preliminary atomic read fails without
/// allocating).
#[derive(Default)]
pub struct HarrisMcas {
    _private: (),
}

impl HarrisMcas {
    /// Creates a fresh emulation instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completes (or reverts) a pending RDCSS installation.
    ///
    /// # Safety
    ///
    /// `e` must have been obtained from a tagged word read while the
    /// current thread was continuously pinned.
    unsafe fn rdcss_complete(&self, e: &Entry) {
        // SAFETY: the parent descriptor is alive for as long as any tagged
        // pointer to one of its entries can be observed (epoch argument in
        // the module docs).
        let d = unsafe { &*e.parent };
        let new = if d.status.load(Ordering::SeqCst) == UNDECIDED {
            tagged_desc(e.parent)
        } else {
            e.old
        };
        // SAFETY: `addr` outlives the operation per the caller contract of
        // `dcas`.
        let w = unsafe { &*e.addr };
        let _ = w.raw_compare_exchange(tagged_entry(e), new, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Attempts to install `tagged_desc(e.parent)` into `*e.addr` iff the
    /// word holds `e.old` and the parent status is still `UNDECIDED`.
    ///
    /// Returns `e.old` if the installation took place (possibly already
    /// reverted because the status was decided), or the conflicting value
    /// otherwise. Never returns an RDCSS-tagged value.
    ///
    /// # Safety
    ///
    /// Same as [`Self::rdcss_complete`]; additionally the current thread
    /// must be pinned.
    unsafe fn rdcss(&self, e: &Entry) -> u64 {
        // SAFETY: per caller contract.
        let w = unsafe { &*e.addr };
        loop {
            match w.raw_compare_exchange(e.old, tagged_entry(e), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    // SAFETY: `e` observed tagged in memory under our pin.
                    unsafe { self.rdcss_complete(e) };
                    return e.old;
                }
                Err(seen) if is_rdcss(seen) => {
                    // Help the conflicting RDCSS finish, then retry ours.
                    // SAFETY: `seen` was read under our pin.
                    let other = unsafe { &*((seen & !TAG_MASK) as *const Entry) };
                    unsafe { self.rdcss_complete(other) };
                }
                Err(seen) => return seen,
            }
        }
    }

    /// Drives descriptor `d` to completion (both phases). Returns whether
    /// the DCAS succeeded. Reentrant: called both by the owner and by
    /// helpers.
    ///
    /// # Safety
    ///
    /// The current thread must be pinned and `d` must be alive (obtained
    /// either from the owner or from a tagged word read under the pin).
    unsafe fn casn_help(&self, d: &DcasDescriptor) -> bool {
        if d.status.load(Ordering::SeqCst) == UNDECIDED {
            let me = tagged_desc(d as *const DcasDescriptor);
            let mut status = SUCCEEDED;
            'install: for e in &d.entries {
                loop {
                    // SAFETY: pinned, d alive.
                    let val = unsafe { self.rdcss(e) };
                    if val == me || val == e.old {
                        // Our descriptor is (or was, before the status got
                        // decided) installed in this word.
                        break;
                    }
                    if is_dcas(val) {
                        // A different DCAS holds this word: help it first.
                        // SAFETY: `val` read under our pin.
                        let other = unsafe { &*((val & !TAG_MASK) as *const DcasDescriptor) };
                        unsafe { self.casn_help(other) };
                        continue;
                    }
                    status = FAILED;
                    break 'install;
                }
            }
            let _ = d
                .status
                .compare_exchange(UNDECIDED, status, Ordering::SeqCst, Ordering::SeqCst);
        }
        let succeeded = d.status.load(Ordering::SeqCst) == SUCCEEDED;
        let me = tagged_desc(d as *const DcasDescriptor);
        for e in &d.entries {
            let resolved = if succeeded { e.new } else { e.old };
            // SAFETY: `addr` outlives the operation.
            let w = unsafe { &*e.addr };
            let _ = w.raw_compare_exchange(me, resolved, Ordering::SeqCst, Ordering::SeqCst);
        }
        succeeded
    }

    /// Descriptor-aware atomic read. Helps any operation found in-flight
    /// at `w` until a plain payload value is visible.
    ///
    /// # Safety
    ///
    /// The current thread must be pinned.
    unsafe fn read(&self, w: &DcasWord) -> u64 {
        loop {
            let v = w.raw_load(Ordering::SeqCst);
            if is_rdcss(v) {
                // SAFETY: `v` read under our pin.
                let e = unsafe { &*((v & !TAG_MASK) as *const Entry) };
                unsafe { self.rdcss_complete(e) };
            } else if is_dcas(v) {
                // SAFETY: `v` read under our pin.
                let d = unsafe { &*((v & !TAG_MASK) as *const DcasDescriptor) };
                unsafe { self.casn_help(d) };
            } else {
                return v;
            }
        }
    }
}

impl DcasStrategy for HarrisMcas {
    const IS_LOCK_FREE: bool = true;
    const HAS_CHEAP_STRONG: bool = false;
    const NAME: &'static str = "harris-mcas";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        let _guard = epoch::pin();
        // SAFETY: pinned for the duration of the read.
        unsafe { self.read(w) }
    }

    fn store(&self, w: &DcasWord, v: u64) {
        debug_assert!(crate::is_valid_payload(v));
        let _guard = epoch::pin();
        loop {
            // SAFETY: pinned.
            let cur = unsafe { self.read(w) };
            if w.raw_compare_exchange(cur, v, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        debug_assert!(crate::is_valid_payload(old) && crate::is_valid_payload(new));
        let _guard = epoch::pin();
        loop {
            match w.raw_compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(seen) if is_rdcss(seen) => {
                    // SAFETY: `seen` read under our pin.
                    let e = unsafe { &*((seen & !TAG_MASK) as *const Entry) };
                    unsafe { self.rdcss_complete(e) };
                }
                Err(seen) if is_dcas(seen) => {
                    // SAFETY: `seen` read under our pin.
                    let d = unsafe { &*((seen & !TAG_MASK) as *const DcasDescriptor) };
                    unsafe { self.casn_help(d) };
                }
                Err(_) => return false,
            }
        }
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        let guard = epoch::pin();

        // Fast path: a preliminary atomic read that observes a mismatch is
        // a legal linearization of a failed DCAS and avoids allocating.
        // SAFETY: pinned.
        if unsafe { self.read(a1) } != o1 || unsafe { self.read(a2) } != o2 {
            return false;
        }

        // Entries sorted by address so concurrent DCAS operations help one
        // another in a consistent order.
        let ((w1, ov1, nv1), (w2, ov2, nv2)) = if a1.addr() < a2.addr() {
            ((a1, o1, n1), (a2, o2, n2))
        } else {
            ((a2, o2, n2), (a1, o1, n1))
        };
        let d = Box::into_raw(Box::new(DcasDescriptor {
            status: AtomicU64::new(UNDECIDED),
            entries: [
                Entry { parent: std::ptr::null(), addr: w1, old: ov1, new: nv1 },
                Entry { parent: std::ptr::null(), addr: w2, old: ov2, new: nv2 },
            ],
        }));
        // Fix up the self-referential parent pointers.
        // SAFETY: `d` is uniquely owned until `casn_help` publishes it.
        unsafe {
            (*d).entries[0].parent = d;
            (*d).entries[1].parent = d;
        }

        // SAFETY: pinned; `d` alive (owned by us until retirement below).
        let ok = unsafe { self.casn_help(&*d) };

        // Retire the descriptor. Helpers that can still observe a tagged
        // pointer to it hold guards that predate this retirement.
        // SAFETY: `d` was allocated by `Box::new` above and is retired
        // exactly once (only the owner executes this line).
        unsafe {
            guard.defer_unchecked(move || drop(Box::from_raw(d)));
        }
        ok
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        // The paper's own trick (Figure 2, lines 8-9): an identity DCAS
        // that succeeds yields an atomic snapshot of the pair. On failure
        // of the real DCAS we loop snapshotting until we either obtain a
        // consistent view to report or discover the expected values are
        // back (in which case the outer swap is retried). Lock-free: every
        // inner retry is caused by another operation's successful DCAS.
        loop {
            if self.dcas(a1, a2, *o1, *o2, n1, n2) {
                return true;
            }
            loop {
                let v1 = self.load(a1);
                let v2 = self.load(a2);
                if v1 == *o1 && v2 == *o2 {
                    // The expected pair is observable again; retry the swap.
                    break;
                }
                if self.dcas(a1, a2, v1, v2, v1, v2) {
                    *o1 = v1;
                    *o2 = v2;
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_success_and_failure() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
    }

    #[test]
    fn identity_dcas_succeeds_and_changes_nothing() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(40);
        let b = DcasWord::new(80);
        assert!(s.dcas(&a, &b, 40, 80, 40, 80));
        assert_eq!((s.load(&a), s.load(&b)), (40, 80));
    }

    #[test]
    fn address_order_is_input_order_independent() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        assert!(s.dcas(&b, &a, 0, 0, 4, 8));
        assert_eq!((s.load(&b), s.load(&a)), (4, 8));
    }

    #[test]
    fn strong_form_snapshot_on_failure() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(100);
        let b = DcasWord::new(200);
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 4));
        assert_eq!((o1, o2), (100, 200));
        assert!(s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 8));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
    }

    #[test]
    fn store_clobbers_any_value() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(4);
        s.store(&a, 12);
        assert_eq!(s.load(&a), 12);
    }

    #[test]
    fn concurrent_counters_preserve_sum() {
        // Two words whose sum is invariant under transfer DCASes; a torn
        // or non-atomic DCAS would break conservation.
        let s = Arc::new(HarrisMcas::new());
        let words = Arc::new((DcasWord::new(1 << 20), DcasWord::new(1 << 20)));
        let total = (1u64 << 20) * 2;
        let mut handles = vec![];
        for t in 0..8 {
            let (s, words) = (s.clone(), words.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    loop {
                        let v1 = s.load(&words.0);
                        let v2 = s.load(&words.1);
                        let delta = 4 * ((i + t) % 64);
                        if v1 < delta {
                            break;
                        }
                        if s.dcas(&words.0, &words.1, v1, v2, v1 - delta, v2 + delta) {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.load(&words.0) + s.load(&words.1), total);
    }

    #[test]
    fn overlapping_pairs_stress() {
        // Three words, threads DCAS random adjacent pairs; checks the sum
        // invariant across overlapping DCAS pairs (the helping path).
        let s = Arc::new(HarrisMcas::new());
        let words: Arc<Vec<DcasWord>> =
            Arc::new((0..3).map(|_| DcasWord::new(1 << 16)).collect());
        let total = (1u64 << 16) * 3;
        let mut handles = vec![];
        for t in 0..6u64 {
            let (s, words) = (s.clone(), words.clone());
            handles.push(std::thread::spawn(move || {
                let mut x = t + 1;
                for _ in 0..30_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let i = (x >> 33) as usize % 2; // pair (i, i+1): overlaps on word 1
                    let v1 = s.load(&words[i]);
                    let v2 = s.load(&words[i + 1]);
                    if v1 >= 4 {
                        let _ = s.dcas(&words[i], &words[i + 1], v1, v2, v1 - 4, v2 + 4);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum: u64 = (0..3).map(|i| s.load(&words[i])).sum();
        assert_eq!(sum, total);
    }
}
