//! Lock-free DCAS emulation from single-word CAS.
//!
//! This module implements the restricted double-compare single-swap
//! (RDCSS) and a two-entry multi-word CAS (CASN) in the style of Harris,
//! Fraser & Pratt, *A Practical Multi-Word Compare-and-Swap Operation*
//! (DISC 2002) — the "non-blocking software emulation" family the paper
//! cites as references \[8, 30\]. With this strategy the deque algorithms
//! built on top are non-blocking end-to-end.
//!
//! # How it works
//!
//! A DCAS acquires a *descriptor* recording both (address, old, new)
//! entries plus a status word (`UNDECIDED` → `SUCCEEDED`/`FAILED`).
//!
//! * **Phase 1** installs a tagged pointer to the descriptor into each
//!   target word (in ascending address order, to bound mutual helping)
//!   using RDCSS, which atomically refuses the installation once the
//!   status has been decided.
//! * The status is then decided with a single CAS.
//! * **Phase 2** replaces each tagged pointer by the new value (on
//!   success) or the old value (on failure).
//!
//! Any thread that encounters a tagged word *helps* the operation it
//! belongs to before retrying its own, which is what makes the emulation
//! lock-free: a stalled thread's operation is finished by whoever trips
//! over it.
//!
//! # Descriptor pooling
//!
//! The descriptor for each operation comes from a per-thread freelist
//! ([`pool`](crate::pool)) rather than a fresh `Box`, so a steady-state
//! `dcas`/`dcas_strong` performs **zero heap allocations** and *zero
//! atomic operations* to manage descriptor memory (a miss — cold cache,
//! or releases still aging through the grace period — falls back to
//! `Box::new`, preserving lock-freedom). Because the RDCSS descriptor of
//! each target word (`Entry`) is embedded in its parent `DcasDescriptor`,
//! recycling the parent recycles the RDCSS descriptors with it. Pooling
//! can be disabled per instance via [`McasConfig`] for ablation (under
//! the hazard backend the pool is always used — see below).
//!
//! # Owner fast-path installation
//!
//! RDCSS exists to stop a *helper* from (re)installing a descriptor
//! after its status has been decided. The owner's very first
//! installation needs no such guard: until that CAS lands, the
//! descriptor is private — no other thread can have observed it, so no
//! thread can have decided its status, which is therefore still
//! `UNDECIDED` exactly as the owner wrote it. The owner may thus install
//! the first (lowest-address) entry with one plain CAS instead of a full
//! RDCSS (install CAS + status check + payload CAS), and when that CAS
//! fails on a value mismatch the descriptor was *never published* and
//! goes straight back to the freelist with no grace period. Helpers —
//! and the second entry, installed after publication — always use RDCSS.
//! Toggleable via [`McasConfig`]; the seed-compat arm keeps the seed's
//! all-RDCSS install path.
//!
//! # Contention management
//!
//! Retry loops — helping chains in [`HarrisMcas::load`]-style reads, CAS
//! conflicts in `store`/`cas`, install conflicts inside CASN, and the
//! outer `dcas_strong` loop — apply [`Backoff`](crate::Backoff)
//! (exponential spin, then yield) *after* first helping whichever
//! operation was found in the way. Help-then-back-off keeps the protocol
//! lock-free (the conflicting operation is driven forward before we
//! sleep on it) while stopping retry storms from saturating the
//! contended cache line. Also toggleable via [`McasConfig`].
//!
//! # Tagging and reclamation
//!
//! The two reserved low bits of every [`DcasWord`] distinguish payloads
//! (`00`) from RDCSS descriptors (`01`) and DCAS descriptors (`10`).
//! Descriptor lifetime is managed by a pluggable
//! [`Reclaimer`](crate::reclaim::Reclaimer) backend: `HarrisMcas<R>` is
//! generic over it, with [`EpochReclaimer`] (the vendored
//! `crossbeam-epoch` shim) as the default and
//! [`HazardReclaimer`](crate::reclaim::hazard::HazardReclaimer) — alias
//! [`HarrisMcasHazard`] — as the bounded-garbage alternative.
//!
//! Under epochs, every public operation runs inside one pinned guard and
//! the descriptor is retired by its owner after phase 2; a helper only
//! acts within a pinned section whose guard predates that retirement, so
//! the epoch cannot advance far enough to recycle a descriptor while any
//! thread can still observe a tagged pointer to it.
//!
//! Under hazard pointers (`NEEDS_PROTECT == true`), every dereference of
//! a tagged value is preceded by an *announce-and-validate*: the pointer
//! is stored in a hazard slot (with an
//! [`EXPAND_DESC`](crate::reclaim::EXPAND_DESC)/
//! [`EXPAND_ENTRY`](crate::reclaim::EXPAND_ENTRY) flag so the scanner
//! also protects the descriptor's *target words*), then the source word
//! is re-read; a mismatch means the announcement may be too late, and
//! the caller retries from a fresh read. The owner additionally
//! announces its own descriptor (slot 0) for the whole operation, so a
//! thread frozen mid-operation keeps its target words protected — that
//! self-hazard, plus validated helper hazards, is the induction that
//! keeps every tagged pointer covered from publication to the last
//! transient helper re-installation. Recycled descriptor memory is
//! *immortal* (it returns to the [`pool`](crate::pool), never the
//! allocator — see the pool docs), which is what makes the scanner's
//! expansion reads and the single-phase announce/validate protocol
//! memory-safe even against stale announcements.

use std::marker::PhantomData;
use std::ptr::{self, addr_of_mut};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::backoff::Backoff;
use crate::fault_point;
use crate::hw;
use crate::pool;
use crate::reclaim::hazard::HazardReclaimer;
use crate::reclaim::{EpochReclaimer, ReclaimGuard, Reclaimer, EXPAND_DESC, EXPAND_ENTRY};
use crate::stats::{Counters, StrategyStats};
use crate::strategy::{validate_args, validate_casn, MAX_CASN_WORDS};
use crate::{CasnEntry, DcasStrategy, DcasWord};

const TAG_MASK: u64 = 0b11;
const RDCSS_TAG: u64 = 0b01;
const DCAS_TAG: u64 = 0b10;

const UNDECIDED: u64 = 0;
const SUCCEEDED: u64 = 1;
const FAILED: u64 = 2;

#[inline]
fn is_rdcss(v: u64) -> bool {
    v & TAG_MASK == RDCSS_TAG
}

#[inline]
fn is_dcas(v: u64) -> bool {
    v & TAG_MASK == DCAS_TAG
}

/// One target word of a DCAS, together with a back-pointer to its
/// descriptor. A tagged pointer to an `Entry` doubles as the RDCSS
/// descriptor for installing the parent into `addr`: all RDCSS fields
/// (control address = parent status, expected control = `UNDECIDED`,
/// new value = tagged parent) are derivable from it and immutable for
/// the lifetime of the parent's publication.
///
/// `addr` is atomic because the hazard scanner reads it from descriptors
/// it knows only by address — possibly a recycled incarnation — so the
/// read must never race with the next owner's (re-)initialization.
/// `parent`/`old`/`new` stay plain: they are written while the
/// descriptor is private and read only under a validated hazard or an
/// epoch pin, both of which exclude recycling.
struct Entry {
    parent: *const DcasDescriptor,
    addr: AtomicPtr<DcasWord>,
    old: u64,
    new: u64,
}

impl Entry {
    /// Placeholder contents for a descriptor sitting in the pool.
    const fn vacant() -> Self {
        Entry {
            parent: ptr::null(),
            addr: AtomicPtr::new(ptr::null_mut()),
            old: 0,
            new: 0,
        }
    }
}

/// A CASN descriptor holding up to [`MAX_CASN_WORDS`] entries, of which
/// the first `len` are live for the current operation (a plain `dcas`
/// uses 2; the deques' batch operations use up to the maximum). Live
/// entries are sorted by target address. `len` is atomic for the same
/// scanner-vs-recycle reason as `Entry::addr`; helpers observe the
/// owner's value via the publishing SeqCst CAS.
/// `pub(crate)` so the [`pool`](crate::pool) freelists can name the type.
#[repr(align(8))]
pub(crate) struct DcasDescriptor {
    status: AtomicU64,
    len: AtomicUsize,
    entries: [Entry; MAX_CASN_WORDS],
}

impl DcasDescriptor {
    pub(crate) fn vacant() -> Self {
        DcasDescriptor {
            status: AtomicU64::new(UNDECIDED),
            len: AtomicUsize::new(0),
            entries: std::array::from_fn(|_| Entry::vacant()),
        }
    }
}

// The raw pointers inside a descriptor refer to (a) the descriptor itself
// and (b) `DcasWord`s that the caller guarantees outlive the operation;
// descriptors are shared across helping threads by design.
unsafe impl Send for DcasDescriptor {}
unsafe impl Sync for DcasDescriptor {}

/// Pushes the target-word addresses named by the descriptor at `d` into
/// `out` — the hazard scanner's *expansion* of an
/// [`EXPAND_DESC`]-flagged slot. Reads only the atomic fields (`len`,
/// clamped, and each entry's `addr`), so a stale or recycled descriptor
/// yields at worst conservative spurious hazards.
///
/// # Safety
///
/// `d` must point at a `DcasDescriptor` allocation that is still live —
/// guaranteed for every once-published descriptor because descriptor
/// memory is immortal under the hazard backend (pool docs).
pub(crate) unsafe fn expand_descriptor_hazard(d: *const u8, out: &mut Vec<usize>) {
    let d = d.cast::<DcasDescriptor>();
    // SAFETY: live allocation per caller contract; atomic loads only.
    let len = unsafe { (*d).len.load(Ordering::SeqCst) }.min(MAX_CASN_WORDS);
    for i in 0..len {
        // SAFETY: as above; `i < MAX_CASN_WORDS` by the clamp.
        let a = unsafe { (*d).entries[i].addr.load(Ordering::SeqCst) };
        if !a.is_null() {
            out.push(a as usize);
        }
    }
}

/// [`expand_descriptor_hazard`] for a single [`EXPAND_ENTRY`]-flagged
/// entry pointer: pushes just that entry's target-word address (the
/// range check on the entry address itself already covers the parent
/// descriptor's allocation, since entries are embedded in it).
///
/// # Safety
///
/// `e` must point into a live `DcasDescriptor` allocation (same
/// immortality argument as [`expand_descriptor_hazard`]).
pub(crate) unsafe fn expand_entry_hazard(e: *const u8, out: &mut Vec<usize>) {
    let e = e.cast::<Entry>();
    // SAFETY: live allocation per caller contract; atomic load only.
    let a = unsafe { (*e).addr.load(Ordering::SeqCst) };
    if !a.is_null() {
        out.push(a as usize);
    }
}

/// Initializes one live entry of a **private** (unpublished) descriptor
/// field by field, never forming a reference to the `Entry` or the
/// descriptor: hazard scanners may concurrently read the *atomic*
/// fields of a recycled descriptor, and a `&mut` would assert exclusive
/// access the scanner violates. The plain-field raw writes race with
/// nothing (helpers hold validated protection, which excludes
/// recycling; scanners read only atomics).
///
/// # Safety
///
/// `d` must be exclusively owned by the caller (acquired, not yet
/// published) and `i < MAX_CASN_WORDS`.
unsafe fn init_entry(d: *mut DcasDescriptor, i: usize, w: &DcasWord, old: u64, new: u64) {
    // SAFETY: `d` private per caller contract; projections stay in
    // bounds; no reference to non-atomic fields is ever shared.
    unsafe {
        let e = addr_of_mut!((*d).entries[i]);
        addr_of_mut!((*e).parent).write(d);
        addr_of_mut!((*e).old).write(old);
        addr_of_mut!((*e).new).write(new);
        (*e).addr.store(w as *const DcasWord as *mut DcasWord, Ordering::Relaxed);
    }
}

#[inline]
fn tagged_entry(e: *const Entry) -> u64 {
    e as u64 | RDCSS_TAG
}

#[inline]
fn tagged_desc(d: *const DcasDescriptor) -> u64 {
    d as u64 | DCAS_TAG
}

/// Tuning knobs for [`HarrisMcas`], primarily for ablation benchmarks
/// (`e10_dcas_hotpath` compares the defaults against
/// [`McasConfig::seed_compat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McasConfig {
    /// Recycle descriptors through per-thread freelists instead of
    /// boxing/freeing one per operation. Default `true`. Ignored (always
    /// on) under the hazard backend, whose scanner requires descriptor
    /// memory to be immortal.
    pub pool_descriptors: bool,
    /// Apply exponential [`Backoff`](crate::Backoff) on retry and
    /// helping loops. Default `true`.
    pub backoff: bool,
    /// Install the first CASN entry with a plain CAS while the
    /// descriptor is still private, instead of a full RDCSS (see the
    /// module docs). Default `true`.
    pub owner_fast_install: bool,
    /// Route a `dcas`/`dcas_strong` whose two targets share one
    /// 16-byte [`DcasPair`](crate::DcasPair) slot to a single hardware
    /// 128-bit CAS ([`hw`](crate::hw)) instead of the descriptor
    /// protocol, when the CPU supports it. Default `true`.
    pub hw_pair: bool,
}

impl Default for McasConfig {
    fn default() -> Self {
        McasConfig {
            pool_descriptors: true,
            backoff: true,
            owner_fast_install: true,
            hw_pair: true,
        }
    }
}

impl McasConfig {
    /// The seed behaviour: one `Box` per descriptor, no backoff, every
    /// entry installed via RDCSS. Kept as the baseline arm of perf
    /// comparisons.
    pub const fn seed_compat() -> Self {
        McasConfig {
            pool_descriptors: false,
            backoff: false,
            owner_fast_install: false,
            hw_pair: false,
        }
    }
}

/// Lock-free DCAS emulation (RDCSS + two-entry CASN), generic over the
/// memory-reclamation backend `R`.
///
/// See the module-level documentation for the protocol. All public
/// operations are lock-free. With the default [`McasConfig`], descriptors
/// are pooled — a steady-state `dcas` performs **zero heap allocations**
/// (a mismatch detected by the preliminary read fails without even
/// touching the pool) — and retry/helping loops use exponential backoff.
///
/// `HarrisMcas` (no parameter) is the epoch-backed default;
/// [`HarrisMcasHazard`] is the same protocol over hazard pointers, whose
/// garbage stays bounded even under frozen threads.
pub struct HarrisMcas<R: Reclaimer = EpochReclaimer> {
    config: McasConfig,
    counters: Counters,
    _backend: PhantomData<R>,
}

impl<R: Reclaimer> Default for HarrisMcas<R> {
    fn default() -> Self {
        Self::with_config_in(McasConfig::default())
    }
}

impl HarrisMcas {
    /// Creates a fresh epoch-backed instance with the default (pooled,
    /// backed-off) configuration.
    pub fn new() -> Self {
        Self::with_config(McasConfig::default())
    }

    /// Creates an epoch-backed instance with an explicit configuration.
    pub fn with_config(config: McasConfig) -> Self {
        Self::with_config_in(config)
    }
}

impl<R: Reclaimer> HarrisMcas<R> {
    /// Whether the backend requires announce-and-validate protection
    /// (`true` for hazard pointers). Const, so the epoch instantiation
    /// folds every validation re-read away.
    const NP: bool = <R::Guard as ReclaimGuard>::NEEDS_PROTECT;

    /// Creates an instance with an explicit configuration over the
    /// backend `R` (the backend-generic form of
    /// [`HarrisMcas::with_config`]).
    pub fn with_config_in(config: McasConfig) -> Self {
        HarrisMcas { config, counters: Counters::default(), _backend: PhantomData }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> McasConfig {
        self.config
    }

    /// Snapshot of this instance's operation counters. All-zero unless
    /// the crate is built with the `stats` feature — except
    /// [`descriptor_orphans`](StrategyStats::descriptor_orphans) and the
    /// reclamation gauges
    /// ([`live_descriptors`](StrategyStats::live_descriptors),
    /// [`retired_pending`](StrategyStats::retired_pending),
    /// [`garbage_high_water`](StrategyStats::garbage_high_water),
    /// [`stalled_collections`](StrategyStats::stalled_collections)),
    /// which audit correctness-relevant events and are reported
    /// unconditionally. Those are process-global (per backend), like the
    /// thread-local descriptor pools they audit. The node-pool census
    /// gauges ([`pool_pages`](StrategyStats::pool_pages),
    /// [`pool_nodes_outstanding`](StrategyStats::pool_nodes_outstanding),
    /// [`pool_remote_frees`](StrategyStats::pool_remote_frees)) are
    /// likewise unconditional and process-global, summed over every
    /// registered [`NodePool`](crate::NodePool).
    pub fn stats(&self) -> StrategyStats {
        let mut s = self.counters.snapshot();
        s.descriptor_orphans = pool::orphan_count();
        s.live_descriptors = pool::live_descriptors();
        s.retired_pending = R::live_garbage();
        s.garbage_high_water = R::garbage_high_water();
        s.stalled_collections = R::stalled_collections();
        s.pool_pages = crate::alloc::pages_allocated();
        s.pool_nodes_outstanding = crate::alloc::nodes_outstanding();
        s.pool_remote_frees = crate::alloc::remote_frees();
        s
    }

    /// Takes a descriptor for a new operation: recycled from the calling
    /// thread's freelist when configured and available, freshly boxed
    /// otherwise. The result is exclusively owned until published. The
    /// hazard backend always draws from the pool regardless of
    /// configuration — its retirements always release back into it, and
    /// bypassing acquisition would grow the immortal reserve without
    /// bound.
    fn acquire_descriptor(&self) -> *mut DcasDescriptor {
        pool::note_alloc();
        let d = if Self::NP || self.config.pool_descriptors {
            pool::acquire()
        } else {
            None
        };
        let d = match d {
            Some(d) => {
                self.counters.inc_descriptor_reuse();
                d
            }
            None => {
                self.counters.inc_descriptor_alloc();
                Box::into_raw(Box::new(DcasDescriptor::vacant()))
            }
        };
        // Mark the descriptor as the one this thread would orphan if it
        // died before the release paths below; a panic kill sweeps it
        // into the quarantine instead of leaking or double-freeing it.
        #[cfg(feature = "fault-inject")]
        pool::track_inflight(d);
        d
    }

    /// Retires a published descriptor after phase 2: back to a freelist
    /// (or the allocator, in epoch-backed seed-compat mode) once the
    /// backend's grace period / hazard drain elapses.
    ///
    /// # Safety
    ///
    /// `d` must have been returned by [`Self::acquire_descriptor`] and be
    /// retired exactly once (only the owner executes this).
    unsafe fn retire_descriptor(&self, g: &R::Guard, d: *mut DcasDescriptor) {
        #[cfg(feature = "fault-inject")]
        pool::clear_inflight();
        unsafe fn dtor_pool(p: *mut u8) {
            // SAFETY: the retire contract hands the dtor exclusive
            // ownership of the block.
            unsafe { pool::release(p.cast()) };
        }
        unsafe fn dtor_box(p: *mut u8) {
            pool::note_free();
            // SAFETY: created by `Box::new` (pooling off, epoch backend)
            // and freed exactly once, after the grace period.
            drop(unsafe { Box::from_raw(p.cast::<DcasDescriptor>()) });
        }
        let dtor: unsafe fn(*mut u8) = if Self::NP || self.config.pool_descriptors {
            dtor_pool
        } else {
            dtor_box
        };
        // SAFETY: phase 2 removed every tagged pointer to `d` from the
        // target words (transient helper re-installations are covered by
        // the re-installer's own pin/validated hazard — module docs), so
        // `d` is unreachable to threads that pin afterwards; the dtor
        // runs once per the caller contract.
        unsafe { g.retire(d.cast(), std::mem::size_of::<DcasDescriptor>(), dtor) };
    }

    /// Disposes of a descriptor that was **never published**: no thread
    /// can have seen it, so it goes back to the freelist (or allocator)
    /// immediately, with no grace period.
    ///
    /// # Safety
    ///
    /// `d` must have been returned by [`Self::acquire_descriptor`] and no
    /// tagged pointer to it (or its entries) may ever have been stored in
    /// a [`DcasWord`] since.
    unsafe fn dispose_unpublished(&self, d: *mut DcasDescriptor) {
        #[cfg(feature = "fault-inject")]
        pool::clear_inflight();
        if Self::NP || self.config.pool_descriptors {
            // SAFETY: `d` is still private, hence exclusively owned.
            unsafe { pool::release(d) };
        } else {
            pool::note_free();
            // SAFETY: as above; created by `Box::new` when pooling is off.
            drop(unsafe { Box::from_raw(d) });
        }
    }

    /// Completes (or reverts) a pending RDCSS installation.
    ///
    /// # Safety
    ///
    /// `e` must be protected for the whole call: under the epoch backend
    /// a pin predating any possible retirement of the parent descriptor;
    /// under the hazard backend a **validated** announcement covering
    /// the parent's allocation (the entry itself via [`EXPAND_ENTRY`] —
    /// the scanner's range check covers the parent — or the parent via
    /// [`EXPAND_DESC`]). The entry's target word is dereferenceable for
    /// the same reason: the announcement expands to it, and epoch pins
    /// cover node grace periods.
    unsafe fn rdcss_complete(&self, e: *const Entry) {
        // SAFETY: `e` protected per the caller contract, so the parent
        // cannot be recycled mid-read and the plain fields are stable.
        let (parent, old, w) =
            unsafe { ((*e).parent, (*e).old, &*(*e).addr.load(Ordering::Relaxed)) };
        // SAFETY: `parent` alive under the same protection.
        let new = if unsafe { &*parent }.status.load(Ordering::SeqCst) == UNDECIDED {
            tagged_desc(parent)
        } else {
            old
        };
        let _ = w.raw_compare_exchange(tagged_entry(e), new, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Attempts to install `tagged_desc(e.parent)` into `*e.addr` iff the
    /// word holds `e.old` and the parent status is still `UNDECIDED`.
    ///
    /// Returns `e.old` if the installation took place (possibly already
    /// reverted because the status was decided), or the conflicting value
    /// otherwise. Never returns an RDCSS-tagged value.
    ///
    /// # Safety
    ///
    /// The parent descriptor of `e` must be protected per
    /// [`Self::rdcss_complete`]; `slot` (and above) must be free scratch
    /// slots of `g`'s window.
    unsafe fn rdcss(&self, g: &R::Guard, e: &Entry, slot: usize) -> u64 {
        // SAFETY: target word protected via the parent's hazard
        // expansion / the epoch pin (caller contract).
        let w = unsafe { &*e.addr.load(Ordering::Relaxed) };
        let mut backoff = Backoff::new();
        loop {
            match w.raw_compare_exchange(e.old, tagged_entry(e), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    // SAFETY: our own entry, still protected by the caller.
                    unsafe { self.rdcss_complete(e) };
                    return e.old;
                }
                Err(seen) if is_rdcss(seen) => {
                    // Help the conflicting RDCSS finish, then retry ours.
                    self.counters.inc_help();
                    // Not effect-free: earlier entries of our own
                    // descriptor may already be installed.
                    fault_point!(MidHelping, false);
                    let other = (seen & !TAG_MASK) as *const Entry;
                    g.protect(slot, other as u64 | EXPAND_ENTRY);
                    if Self::NP && w.raw_load(Ordering::SeqCst) != seen {
                        // Announced too late — the word moved on; retry
                        // from a fresh read.
                        g.clear(slot);
                        continue;
                    }
                    // SAFETY: announced-and-validated (hazard) or pinned
                    // (epoch) — `other`'s parent cannot be recycled.
                    unsafe { self.rdcss_complete(other) };
                    g.clear(slot);
                    if self.config.backoff {
                        backoff.snooze();
                    }
                }
                Err(seen) => return seen,
            }
        }
    }

    /// Drives descriptor `d` to completion (both phases). Returns whether
    /// the DCAS succeeded. Reentrant: called both by the owner and by
    /// helpers.
    ///
    /// # Safety
    ///
    /// `d` must be protected for the whole call (owner self-hazard, a
    /// validated helper hazard at a slot below `slot`, or an epoch pin);
    /// `slot` and above must be free scratch slots of `g`'s window.
    unsafe fn casn_help(&self, g: &R::Guard, d: *const DcasDescriptor, slot: usize) -> bool {
        // SAFETY: forwarded caller contract.
        unsafe { self.casn_run(g, d, 0, slot) }
    }

    /// [`Self::casn_help`] with the first `skip` entries assumed already
    /// installed — the owner passes 1 after a fast-path direct install
    /// (helpers always pass 0). Phase 2 resolves *all* entries regardless.
    ///
    /// # Safety
    ///
    /// Same as [`Self::casn_help`]; additionally, for every skipped entry
    /// the caller must have successfully stored `tagged_desc(d)` into the
    /// entry's target word while `d.status` was `UNDECIDED`.
    unsafe fn casn_run(
        &self,
        g: &R::Guard,
        d: *const DcasDescriptor,
        skip: usize,
        slot: usize,
    ) -> bool {
        // SAFETY: `d` protected per the caller contract.
        let d_ref = unsafe { &*d };
        let me = tagged_desc(d);
        let len = d_ref.len.load(Ordering::SeqCst).min(MAX_CASN_WORDS);
        if d_ref.status.load(Ordering::SeqCst) == UNDECIDED {
            let mut status = SUCCEEDED;
            let mut backoff = Backoff::new();
            'install: for e in &d_ref.entries[skip..len] {
                loop {
                    // SAFETY: parent protected; `slot` free scratch.
                    let val = unsafe { self.rdcss(g, e, slot) };
                    if val == me || val == e.old {
                        // Our descriptor is (or was, before the status got
                        // decided) installed in this word.
                        break;
                    }
                    if is_dcas(val) {
                        // A different DCAS holds this word: help it first,
                        // then back off before re-contending the line.
                        self.counters.inc_help();
                        // Not effect-free: `d` may be our own descriptor
                        // with earlier entries already installed.
                        fault_point!(MidHelping, false);
                        let other = (val & !TAG_MASK) as *const DcasDescriptor;
                        g.protect(slot, other as u64 | EXPAND_DESC);
                        // SAFETY: target word protected via `d`'s own
                        // expansion / the epoch pin.
                        let w = unsafe { &*e.addr.load(Ordering::Relaxed) };
                        if Self::NP && w.raw_load(Ordering::SeqCst) != val {
                            // The conflicting descriptor already left the
                            // word; re-read it via a fresh rdcss.
                            g.clear(slot);
                            continue;
                        }
                        // SAFETY: announced-and-validated / pinned; the
                        // recursion scratches strictly above `slot`, so
                        // our announcement of `other` stays standing.
                        unsafe { self.casn_help(g, other, slot + 1) };
                        g.clear(slot);
                        if self.config.backoff {
                            backoff.snooze();
                        }
                        continue;
                    }
                    status = FAILED;
                    break 'install;
                }
            }
            let _ = d_ref
                .status
                .compare_exchange(UNDECIDED, status, Ordering::SeqCst, Ordering::SeqCst);
        }
        let succeeded = d_ref.status.load(Ordering::SeqCst) == SUCCEEDED;
        for e in &d_ref.entries[..len] {
            let resolved = if succeeded { e.new } else { e.old };
            // SAFETY: target word protected via `d`'s expansion / pin.
            let w = unsafe { &*e.addr.load(Ordering::Relaxed) };
            let _ = w.raw_compare_exchange(me, resolved, Ordering::SeqCst, Ordering::SeqCst);
        }
        succeeded
    }

    /// Helps the in-flight operation a tagged word value belongs to
    /// (RDCSS completion or CASN help). Returns `false` when `v` is a
    /// plain payload, i.e. there was nothing to help. A `true` return
    /// means the caller must re-read the word — either the operation was
    /// helped, or (hazard backend) the announcement failed validation
    /// and the value is stale either way.
    ///
    /// Only for callers whose own operation is still effect-free — the
    /// fault point here asserts as much.
    ///
    /// # Safety
    ///
    /// `v` must have been read from `w` under `g`; `slot` and above must
    /// be free scratch slots of `g`'s window.
    unsafe fn help_tagged(&self, g: &R::Guard, w: &DcasWord, v: u64, slot: usize) -> bool {
        if is_rdcss(v) {
            self.counters.inc_help();
            // Effect-free: the caller owns nothing published; unwinding
            // here loses no state.
            fault_point!(MidHelping, true);
            let e = (v & !TAG_MASK) as *const Entry;
            g.protect(slot, e as u64 | EXPAND_ENTRY);
            if Self::NP && w.raw_load(Ordering::SeqCst) != v {
                g.clear(slot);
                return true;
            }
            // SAFETY: announced-and-validated / pinned.
            unsafe { self.rdcss_complete(e) };
            g.clear(slot);
            true
        } else if is_dcas(v) {
            self.counters.inc_help();
            fault_point!(MidHelping, true);
            let d = (v & !TAG_MASK) as *const DcasDescriptor;
            g.protect(slot, d as u64 | EXPAND_DESC);
            if Self::NP && w.raw_load(Ordering::SeqCst) != v {
                g.clear(slot);
                return true;
            }
            // SAFETY: announced-and-validated / pinned; recursion
            // scratches above `slot`, keeping our announcement standing.
            unsafe { self.casn_help(g, d, slot + 1) };
            g.clear(slot);
            true
        } else {
            false
        }
    }

    /// Descriptor-aware atomic read. Helps any operation found in-flight
    /// at `w` until a plain payload value is visible.
    ///
    /// # Safety
    ///
    /// `slot` and above must be free scratch slots of `g`'s window.
    unsafe fn read(&self, g: &R::Guard, w: &DcasWord, slot: usize) -> u64 {
        let mut backoff = Backoff::new();
        loop {
            let v = w.raw_load(Ordering::SeqCst);
            // SAFETY: `v` freshly read from `w` under `g`.
            if !unsafe { self.help_tagged(g, w, v, slot) } {
                return v;
            }
            if self.config.backoff {
                backoff.snooze();
            }
        }
    }

    /// Hardware fast path shared by `dcas` and `dcas_strong`: both
    /// target words live in one 16-byte slot, so the whole DCAS is one
    /// 128-bit CAS. Returns `Ok` on success and the **atomic** plain
    /// snapshot of the slot on failure.
    ///
    /// A failed 128-bit CAS that observed a descriptor tag in either
    /// half must *not* report DCAS failure — the logical values might
    /// still match once that operation resolves. Help it (keeping the
    /// emulation's lock-freedom: the operation in the way is driven
    /// forward) and retry; only a tag-free mismatch is a legal failure
    /// linearization, and the instruction's own atomic read of the slot
    /// is the certified view the strong form hands back.
    ///
    /// `a1`/`a2` are the two words backing `slot` (either order): the
    /// CAS itself runs unguarded, so its failure snapshot is good for
    /// tag *detection* only, never for dereferencing — by the time this
    /// thread pins, the owner may have resolved and retired the
    /// descriptor. The contended branch therefore pins first and helps
    /// only values re-read from the words under that guard, which is
    /// what `help_tagged`'s reclamation contract requires.
    #[cfg(target_arch = "x86_64")]
    fn pair_hw(
        &self,
        slot: *mut u128,
        a1: &DcasWord,
        a2: &DcasWord,
        old: u128,
        new: u128,
    ) -> Result<(), u128> {
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: `slot` came from the adjacency probe (16-byte
            // aligned, backed by `a1` and `a2`, which are live) and the
            // caller checked `hw::supported()`.
            match unsafe { hw::cas_u128(slot, old, new) } {
                Ok(()) => return Ok(()),
                Err(seen) => {
                    let (s_lo, s_hi) = hw::unpack(seen);
                    if s_lo & TAG_MASK == 0 && s_hi & TAG_MASK == 0 {
                        // Plain payload mismatch: a legal failed-DCAS
                        // linearization point. No descriptor was (or will
                        // be) dereferenced, so the whole uncontended call
                        // — succeed or fail — runs without a reclamation
                        // guard; that guard costs more than the
                        // `cmpxchg16b` itself and would erase most of the
                        // fast path's advantage.
                        return Err(seen);
                    }
                    // A descriptor is in flight on one of the halves.
                    // Failing here would break linearizability (the
                    // DCAS may be mid-flight and succeed), so help it
                    // to completion and retry. Pin *before* re-reading:
                    // the stale `seen` halves must not be dereferenced
                    // (see the doc comment above).
                    let g = R::pin();
                    let f1 = a1.raw_load(Ordering::SeqCst);
                    let f2 = a2.raw_load(Ordering::SeqCst);
                    // SAFETY: guarded; `f1`/`f2` read under the guard.
                    // (The tags the failed CAS saw may be gone by now —
                    // fine, `help_tagged` ignores plain values and the
                    // loop just retries.)
                    unsafe {
                        self.help_tagged(&g, a1, f1, 0);
                        self.help_tagged(&g, a2, f2, 0);
                    }
                    drop(g);
                    if self.config.backoff {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// The descriptor slow path shared by `dcas` and the `dcas_strong`
    /// snapshot: acquires a descriptor, runs both CASN phases, retires
    /// it. No preliminary mismatch check — callers have already read the
    /// pair.
    ///
    /// # Safety
    ///
    /// `g` must guard the current thread for the whole call, with its
    /// whole slot window free.
    #[allow(clippy::too_many_arguments)]
    unsafe fn dcas_publish(
        &self,
        g: &R::Guard,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: u64,
        o2: u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        // Entries sorted by address so concurrent DCAS operations help one
        // another in a consistent order.
        let ((w1, ov1, nv1), (w2, ov2, nv2)) = if a1.addr() < a2.addr() {
            ((a1, o1, n1), (a2, o2, n2))
        } else {
            ((a2, o2, n2), (a1, o1, n1))
        };
        let d = self.acquire_descriptor();
        // SAFETY: `d` is exclusively owned until published; a recycled
        // descriptor is past its grace period / hazard drain, so no
        // helper of a previous incarnation can observe these writes
        // (scanners read only the atomic fields, which stay sound).
        unsafe {
            (*d).status.store(UNDECIDED, Ordering::Relaxed);
            (*d).len.store(2, Ordering::Relaxed);
            init_entry(d, 0, w1, ov1, nv1);
            init_entry(d, 1, w2, ov2, nv2);
        }
        // SAFETY: forwarded caller contract; entries and len written above.
        unsafe { self.publish_run_retire(g, d) }
    }

    /// Publishes a fully prepared descriptor (status `UNDECIDED`, `len`
    /// live entries sorted by address), drives both CASN phases, and
    /// retires it. Shared tail of `dcas_publish` and `casn`.
    ///
    /// With owner fast-path installation, entry 0 is installed by one
    /// plain CAS while the descriptor is still private (module docs); a
    /// plain-value mismatch there fails the operation with the descriptor
    /// never published, so it is recycled with no grace period.
    ///
    /// The owner announces its own descriptor in slot 0 (with target-word
    /// expansion) for the whole operation — the base case of the hazard
    /// protection induction, and what keeps a thread frozen anywhere in
    /// here from stranding unprotected target words. Helping and the CASN
    /// phases scratch from slot 1 up.
    ///
    /// # Safety
    ///
    /// `g` must guard the current thread for the whole call with its slot
    /// window free; `d` must come from [`Self::acquire_descriptor`] with
    /// its status, `len`, and first `len` entries initialized, and never
    /// have been published.
    unsafe fn publish_run_retire(&self, g: &R::Guard, d: *mut DcasDescriptor) -> bool {
        g.protect(0, d as u64 | EXPAND_DESC);
        // Effect-free: `d` is still private — nobody has seen it, and a
        // panic kill sweeps it into the quarantine. (A freeze here holds
        // the slot-0 self-announcement, which is the point.)
        fault_point!(PreInstall, true);
        if self.config.owner_fast_install {
            // SAFETY: `d` is still private, so reading its entry is safe.
            let (w0, ov0) = unsafe {
                let e = &(*d).entries[0];
                (&*e.addr.load(Ordering::Relaxed), e.old)
            };
            let me = tagged_desc(d);
            let mut backoff = Backoff::new();
            loop {
                match w0.raw_compare_exchange(ov0, me, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(_) => break,
                    Err(seen) if is_rdcss(seen) => {
                        self.counters.inc_help();
                        // Effect-free: our own descriptor is still
                        // private (the fast install did not land).
                        fault_point!(MidHelping, true);
                        let other = (seen & !TAG_MASK) as *const Entry;
                        g.protect(1, other as u64 | EXPAND_ENTRY);
                        if Self::NP && w0.raw_load(Ordering::SeqCst) != seen {
                            g.clear(1);
                            continue;
                        }
                        // SAFETY: announced-and-validated / pinned.
                        unsafe { self.rdcss_complete(other) };
                        g.clear(1);
                    }
                    Err(seen) if is_dcas(seen) => {
                        self.counters.inc_help();
                        fault_point!(MidHelping, true);
                        let other = (seen & !TAG_MASK) as *const DcasDescriptor;
                        g.protect(1, other as u64 | EXPAND_DESC);
                        if Self::NP && w0.raw_load(Ordering::SeqCst) != seen {
                            g.clear(1);
                            continue;
                        }
                        // SAFETY: announced-and-validated / pinned;
                        // recursion scratches from slot 2.
                        unsafe { self.casn_help(g, other, 2) };
                        g.clear(1);
                    }
                    Err(_) => {
                        // Plain value mismatch: the operation fails without
                        // the descriptor ever having been published —
                        // recycle it immediately, no grace period needed.
                        // Effect-free: unpublished, and the op failed.
                        fault_point!(PreRelease, true);
                        g.clear(0);
                        // SAFETY: `d` from `acquire_descriptor`, still
                        // private.
                        unsafe { self.dispose_unpublished(d) };
                        return false;
                    }
                }
                if self.config.backoff {
                    backoff.snooze();
                }
            }

            // SAFETY: guarded; `d` protected by our slot-0 announcement
            // (owner-owned under epochs); entry 0 installed by the CAS
            // above while the status was UNDECIDED; scratch from slot 1.
            let ok = unsafe { self.casn_run(g, d, 1, 1) };
            // Effect-free only if the operation failed: on success the
            // writes are committed and the caller owns their outcome, so
            // a panic here would lose it (a freeze is fine — the thread
            // resumes, retires, and returns normally).
            fault_point!(PreRelease, !ok);
            // Drop the self-announcement before retiring, so our own
            // scan can free the descriptor once helpers are done.
            g.clear(0);
            // SAFETY: `d` came from `acquire_descriptor` and only the
            // owner executes this line.
            unsafe { self.retire_descriptor(g, d) };
            return ok;
        }

        // SAFETY: guarded; `d` protected by our slot-0 announcement
        // (owner-owned under epochs); scratch from slot 1.
        let ok = unsafe { self.casn_run(g, d, 0, 1) };

        fault_point!(PreRelease, !ok);
        g.clear(0);
        // Retire the descriptor. Helpers that can still observe a tagged
        // pointer to it hold guards (or validated hazards) that predate
        // this retirement.
        // SAFETY: `d` came from `acquire_descriptor` and only the owner
        // executes this line.
        unsafe { self.retire_descriptor(g, d) };
        ok
    }

    /// Uncounted `dcas` body (also the forward arm of `dcas_strong`).
    fn dcas_inner(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        let g = R::pin();

        // Fast path: a preliminary atomic read that observes a mismatch is
        // a legal linearization of a failed DCAS and costs neither an
        // allocation nor a pool access. The `||` short-circuits, covering
        // both orderings: a first-word mismatch never touches the second.
        // SAFETY: guarded; slot 0 free (help_tagged restores it).
        if unsafe { self.read(&g, a1, 0) } != o1 || unsafe { self.read(&g, a2, 0) } != o2 {
            return false;
        }

        // SAFETY: `g` guards us for the whole call, window free again.
        unsafe { self.dcas_publish(&g, a1, a2, o1, o2, n1, n2) }
    }

    /// One snapshot attempt for `dcas_strong`: under a single guard, reads
    /// the pair and certifies the observed values with an identity DCAS.
    /// Returns the certified atomic view, or `None` if another thread's
    /// successful operation invalidated it mid-certification.
    fn snapshot(&self, a1: &DcasWord, a2: &DcasWord) -> Option<(u64, u64)> {
        let g = R::pin();
        // SAFETY: guarded.
        let v1 = unsafe { self.read(&g, a1, 0) };
        let v2 = unsafe { self.read(&g, a2, 0) };
        // SAFETY: `g` guards us for the whole call.
        if unsafe { self.dcas_publish(&g, a1, a2, v1, v2, v1, v2) } {
            Some((v1, v2))
        } else {
            None
        }
    }
}

impl<R: Reclaimer> DcasStrategy for HarrisMcas<R> {
    type Reclaimer = R;
    const IS_LOCK_FREE: bool = true;
    const HAS_CHEAP_STRONG: bool = false;
    const NAME: &'static str = R::MCAS_NAME;

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        self.counters.inc_op();
        let g = R::pin();
        // SAFETY: guarded for the duration of the read.
        unsafe { self.read(&g, w, 0) }
    }

    fn store(&self, w: &DcasWord, v: u64) {
        debug_assert!(crate::is_valid_payload(v));
        self.counters.inc_op();
        let g = R::pin();
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: guarded.
            let cur = unsafe { self.read(&g, w, 0) };
            if w.raw_compare_exchange(cur, v, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
            if self.config.backoff {
                backoff.snooze();
            }
        }
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        debug_assert!(crate::is_valid_payload(old) && crate::is_valid_payload(new));
        self.counters.inc_op();
        let g = R::pin();
        let mut backoff = Backoff::new();
        loop {
            match w.raw_compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                // Effect-free helping: our CAS has not landed.
                // SAFETY: `seen` read from `w` under our guard.
                Err(seen) if unsafe { self.help_tagged(&g, w, seen, 0) } => {}
                Err(_) => return false,
            }
            if self.config.backoff {
                backoff.snooze();
            }
        }
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        self.counters.inc_op();
        self.counters.inc_dcas();
        #[cfg(target_arch = "x86_64")]
        if self.config.hw_pair && hw::supported() {
            if let Some((slot, swapped)) = hw::adjacent_pair(a1, a2) {
                self.counters.inc_pair_hit();
                let (old, new) = if swapped {
                    (hw::pack(o2, o1), hw::pack(n2, n1))
                } else {
                    (hw::pack(o1, o2), hw::pack(n1, n2))
                };
                let ok = self.pair_hw(slot, a1, a2, old, new).is_ok();
                if !ok {
                    self.counters.inc_dcas_failure();
                }
                return ok;
            }
        }
        self.counters.inc_pair_fallback();
        let ok = self.dcas_inner(a1, a2, o1, o2, n1, n2);
        if !ok {
            self.counters.inc_dcas_failure();
        }
        ok
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        // The paper's own trick (Figure 2, lines 8-9): an identity DCAS
        // that succeeds yields an atomic snapshot of the pair. On failure
        // of the real DCAS we loop snapshotting until we either obtain a
        // consistent view to report or discover the expected values are
        // back (in which case the outer swap is retried). Lock-free: every
        // inner retry is caused by another operation's successful DCAS.
        //
        // The forward attempt's preliminary read short-circuits on the
        // first mismatching word (both orderings), so a doomed attempt
        // builds no descriptor at all; the identity snapshots draw from
        // the pool, so the whole failure path is allocation-free in the
        // steady state.
        self.counters.inc_op();
        self.counters.inc_dcas();
        #[cfg(target_arch = "x86_64")]
        if self.config.hw_pair && hw::supported() {
            if let Some((slot, swapped)) = hw::adjacent_pair(a1, a2) {
                self.counters.inc_pair_hit();
                let (old, new) = if swapped {
                    (hw::pack(*o2, *o1), hw::pack(n2, n1))
                } else {
                    (hw::pack(*o1, *o2), hw::pack(n1, n2))
                };
                return match self.pair_hw(slot, a1, a2, old, new) {
                    Ok(()) => true,
                    Err(seen) => {
                        // The failed 128-bit CAS read the slot atomically
                        // and `pair_hw` already resolved any descriptor
                        // tags, so this *is* the certified snapshot.
                        let (s_lo, s_hi) = hw::unpack(seen);
                        (*o1, *o2) = if swapped { (s_hi, s_lo) } else { (s_lo, s_hi) };
                        self.counters.inc_dcas_failure();
                        false
                    }
                };
            }
        }
        self.counters.inc_pair_fallback();
        let mut backoff = Backoff::new();
        loop {
            if self.dcas_inner(a1, a2, *o1, *o2, n1, n2) {
                return true;
            }
            loop {
                match self.snapshot(a1, a2) {
                    Some((v1, v2)) if v1 == *o1 && v2 == *o2 => {
                        // The expected pair is observable again; retry the
                        // swap.
                        break;
                    }
                    Some((v1, v2)) => {
                        *o1 = v1;
                        *o2 = v2;
                        self.counters.inc_dcas_failure();
                        return false;
                    }
                    None => {
                        // Lost the certification race to another writer.
                        if self.config.backoff {
                            backoff.snooze();
                        }
                    }
                }
            }
            if self.config.backoff {
                backoff.snooze();
            }
        }
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        validate_casn(entries);
        self.counters.inc_op();
        self.counters.inc_casn();
        let g = R::pin();

        // Preliminary read fast path, as in `dcas_inner`: a mismatch seen
        // by an atomic read is a legal linearization of the failed CASN
        // and never touches the descriptor pool.
        for e in entries.iter() {
            // SAFETY: guarded.
            if unsafe { self.read(&g, e.word, 0) } != e.old {
                self.counters.inc_casn_failure();
                return false;
            }
        }

        // Sort by address so concurrent CASNs over overlapping word sets
        // help one another in a consistent order (same argument as the
        // two-entry case, extended to n).
        entries.sort_unstable_by_key(|e| e.word.addr());

        let d = self.acquire_descriptor();
        // SAFETY: `d` is exclusively owned until published; a recycled
        // descriptor is past its grace period / hazard drain (see
        // `dcas_publish`).
        unsafe {
            (*d).status.store(UNDECIDED, Ordering::Relaxed);
            (*d).len.store(entries.len(), Ordering::Relaxed);
            for (i, e) in entries.iter().enumerate() {
                init_entry(d, i, e.word, e.old, e.new);
            }
        }
        // SAFETY: `g` guards us for the whole call; `d` prepared above.
        let ok = unsafe { self.publish_run_retire(&g, d) };
        if !ok {
            self.counters.inc_casn_failure();
        }
        ok
    }
}

/// [`HarrisMcas`] over the hazard-pointer backend
/// ([`HazardReclaimer`]): identical protocol and semantics, but retired
/// garbage — descriptors here, nodes in the deque crates — stays under
/// the static bound `reclaim::hazard::static_garbage_bound()` even while
/// threads are frozen mid-operation, where the epoch default grows
/// without bound. Reports [`DcasStrategy::NAME`] `"harris-mcas-hazard"`.
pub type HarrisMcasHazard = HarrisMcas<HazardReclaimer>;

/// [`HarrisMcas`] fixed to [`McasConfig::seed_compat`]: a fresh `Box` per
/// descriptor, no backoff, all-RDCSS installation — the seed hot path.
/// Exists as a distinct [`DcasStrategy`] type so
/// test matrices and benchmarks can exercise the unpooled hot path
/// side-by-side with the default.
#[derive(Default)]
pub struct HarrisMcasBoxed(HarrisMcas);

impl HarrisMcasBoxed {
    /// Creates a seed-compatible (unpooled, no-backoff) instance.
    pub fn new() -> Self {
        HarrisMcasBoxed(HarrisMcas::with_config(McasConfig::seed_compat()))
    }

    /// Snapshot of the inner instance's counters.
    pub fn stats(&self) -> StrategyStats {
        self.0.stats()
    }
}

impl DcasStrategy for HarrisMcasBoxed {
    type Reclaimer = EpochReclaimer;
    const IS_LOCK_FREE: bool = true;
    const HAS_CHEAP_STRONG: bool = false;
    const NAME: &'static str = "harris-mcas-boxed";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        self.0.load(w)
    }

    #[inline]
    fn store(&self, w: &DcasWord, v: u64) {
        self.0.store(w, v)
    }

    #[inline]
    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        self.0.cas(w, old, new)
    }

    #[inline]
    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        self.0.dcas(a1, a2, o1, o2, n1, n2)
    }

    #[inline]
    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        self.0.dcas_strong(a1, a2, o1, o2, n1, n2)
    }

    #[inline]
    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        self.0.casn(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_success_and_failure() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
    }

    #[test]
    fn basic_success_and_failure_all_configs() {
        // Full 2^4 knob matrix: every combination must implement the same
        // DCAS semantics.
        for bits in 0..16u8 {
            let config = McasConfig {
                pool_descriptors: bits & 1 != 0,
                backoff: bits & 2 != 0,
                owner_fast_install: bits & 4 != 0,
                hw_pair: bits & 8 != 0,
            };
            let s = HarrisMcas::with_config(config);
            let a = DcasWord::new(0);
            let b = DcasWord::new(4);
            assert!(s.dcas(&a, &b, 0, 4, 8, 12), "{config:?}");
            assert_eq!((s.load(&a), s.load(&b)), (8, 12), "{config:?}");
            assert!(!s.dcas(&a, &b, 0, 4, 16, 16), "{config:?}");
            assert_eq!((s.load(&a), s.load(&b)), (8, 12), "{config:?}");
            let (mut o1, mut o2) = (0, 0);
            assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 16, 16), "{config:?}");
            assert_eq!((o1, o2), (8, 12), "{config:?}");
        }
    }

    #[test]
    fn identity_dcas_succeeds_and_changes_nothing() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(40);
        let b = DcasWord::new(80);
        assert!(s.dcas(&a, &b, 40, 80, 40, 80));
        assert_eq!((s.load(&a), s.load(&b)), (40, 80));
    }

    #[test]
    fn address_order_is_input_order_independent() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        assert!(s.dcas(&b, &a, 0, 0, 4, 8));
        assert_eq!((s.load(&b), s.load(&a)), (4, 8));
    }

    #[test]
    fn strong_form_snapshot_on_failure() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(100);
        let b = DcasWord::new(200);
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 4));
        assert_eq!((o1, o2), (100, 200));
        assert!(s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 8));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
    }

    #[test]
    fn strong_form_snapshot_on_failure_boxed() {
        let s = HarrisMcasBoxed::new();
        let a = DcasWord::new(100);
        let b = DcasWord::new(200);
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 4));
        assert_eq!((o1, o2), (100, 200));
        assert!(s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 8));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
    }

    #[test]
    fn store_clobbers_any_value() {
        let s = HarrisMcas::new();
        let a = DcasWord::new(4);
        s.store(&a, 12);
        assert_eq!(s.load(&a), 12);
    }

    fn conservation_under_transfers<R: Reclaimer>(
        s: Arc<HarrisMcas<R>>,
        threads: u64,
        iters: u64,
    ) {
        // Two words whose sum is invariant under transfer DCASes; a torn
        // or non-atomic DCAS would break conservation.
        let words = Arc::new((DcasWord::new(1 << 20), DcasWord::new(1 << 20)));
        let total = (1u64 << 20) * 2;
        let mut handles = vec![];
        for t in 0..threads {
            let (s, words) = (s.clone(), words.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..iters {
                    loop {
                        let v1 = s.load(&words.0);
                        let v2 = s.load(&words.1);
                        let delta = 4 * ((i + t) % 64);
                        if v1 < delta {
                            break;
                        }
                        if s.dcas(&words.0, &words.1, v1, v2, v1 - delta, v2 + delta) {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.load(&words.0) + s.load(&words.1), total);
    }

    #[test]
    fn concurrent_counters_preserve_sum() {
        conservation_under_transfers(Arc::new(HarrisMcas::new()), 8, 20_000);
    }

    #[test]
    fn concurrent_counters_preserve_sum_seed_compat() {
        // Same conservation check with pooling and backoff disabled, so
        // the ablation arm keeps its own correctness coverage.
        conservation_under_transfers(
            Arc::new(HarrisMcas::with_config(McasConfig::seed_compat())),
            4,
            10_000,
        );
    }

    #[test]
    fn overlapping_pairs_stress() {
        // Three words, threads DCAS random adjacent pairs; checks the sum
        // invariant across overlapping DCAS pairs (the helping path).
        let s = Arc::new(HarrisMcas::new());
        let words: Arc<Vec<DcasWord>> =
            Arc::new((0..3).map(|_| DcasWord::new(1 << 16)).collect());
        let total = (1u64 << 16) * 3;
        let mut handles = vec![];
        for t in 0..6u64 {
            let (s, words) = (s.clone(), words.clone());
            handles.push(std::thread::spawn(move || {
                let mut x = t + 1;
                for _ in 0..30_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let i = (x >> 33) as usize % 2; // pair (i, i+1): overlaps on word 1
                    let v1 = s.load(&words[i]);
                    let v2 = s.load(&words[i + 1]);
                    if v1 >= 4 {
                        let _ = s.dcas(&words[i], &words[i + 1], v1, v2, v1 - 4, v2 + 4);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum: u64 = (0..3).map(|i| s.load(&words[i])).sum();
        assert_eq!(sum, total);
    }

    #[test]
    #[allow(clippy::drop_non_drop)] // drop(s) marks where the strategy's lifetime must end
    fn pool_survives_instance_drop_with_inflight_garbage() {
        // Dropping the strategy while epoch-deferred releases are still
        // queued must be safe: the deferred closures capture only the
        // descriptor pointer and release into the thread-global freelist,
        // which owns nothing of the dropped instance.
        let s = HarrisMcas::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        for i in 0..64u64 {
            assert!(s.dcas(&a, &b, i * 8, i * 8 + 4, (i + 1) * 8, (i + 1) * 8 + 4));
        }
        drop(s); // any queued releases now own the only pool references
        EpochReclaimer::flush();
    }

    #[test]
    fn adjacent_pair_fast_path_semantics_both_knobs() {
        // DcasPair words routed through dcas/dcas_strong with the hw
        // knob on and off: identical DCAS semantics either way (on this
        // host the on-arm actually takes cmpxchg16b when available).
        for hw_pair in [false, true] {
            let s = HarrisMcas::with_config(McasConfig { hw_pair, ..Default::default() });
            let p = crate::DcasPair::new(0, 4);
            assert!(s.dcas(p.lo(), p.hi(), 0, 4, 8, 12), "hw_pair={hw_pair}");
            assert!(!s.dcas(p.lo(), p.hi(), 0, 4, 16, 16), "hw_pair={hw_pair}");
            assert_eq!((s.load(p.lo()), s.load(p.hi())), (8, 12), "hw_pair={hw_pair}");
            // Swapped argument order must map onto the same slot.
            assert!(s.dcas(p.hi(), p.lo(), 12, 8, 4, 0), "hw_pair={hw_pair}");
            assert_eq!((s.load(p.lo()), s.load(p.hi())), (0, 4), "hw_pair={hw_pair}");
            // Strong form: failure hands back the atomic snapshot.
            let (mut o1, mut o2) = (8, 8);
            assert!(!s.dcas_strong(p.lo(), p.hi(), &mut o1, &mut o2, 16, 16));
            assert_eq!((o1, o2), (0, 4), "hw_pair={hw_pair}");
            let (mut oh, mut ol) = (4, 0);
            assert!(s.dcas_strong(p.hi(), p.lo(), &mut oh, &mut ol, 12, 8));
            assert_eq!((s.load(p.lo()), s.load(p.hi())), (8, 12), "hw_pair={hw_pair}");
        }
    }

    fn race_pair_fast_path_against_descriptor_casn<R: Reclaimer>(config: McasConfig) {
        // The mix `crates/modelcheck` explores exhaustively, run on real
        // silicon: hardware pair CAS racing descriptor-based CASN over
        // the same two words (plus a third word, which keeps the CASN on
        // the descriptor path) must stay atomic — a torn update or a
        // spurious pair-CAS failure against an in-flight descriptor
        // would break conservation or wedge a transfer loop.
        struct Cell {
            pair: crate::DcasPair,
            extra: DcasWord,
        }
        let total = (1u64 << 20) * 3;
        let cell = Arc::new(Cell {
            pair: crate::DcasPair::new(1 << 20, 1 << 20),
            extra: DcasWord::new(1 << 20),
        });
        let s = Arc::new(HarrisMcas::<R>::with_config_in(config));
        let mut handles = vec![];
        for t in 0..2u64 {
            let (s, cell) = (s.clone(), cell.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..30_000u64 {
                    loop {
                        let lo = s.load(cell.pair.lo());
                        let hi = s.load(cell.pair.hi());
                        let delta = 4 * ((i + t) % 64);
                        if lo < delta {
                            break;
                        }
                        if s.dcas(cell.pair.lo(), cell.pair.hi(), lo, hi, lo - delta, hi + delta)
                        {
                            break;
                        }
                    }
                }
            }));
        }
        for t in 0..2u64 {
            let (s, cell) = (s.clone(), cell.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..30_000u64 {
                    loop {
                        let lo = s.load(cell.pair.lo());
                        let hi = s.load(cell.pair.hi());
                        let ex = s.load(&cell.extra);
                        let delta = 4 * ((i + t) % 64);
                        if hi < delta {
                            break;
                        }
                        let mut entries = [
                            crate::CasnEntry::new(cell.pair.lo(), lo, lo),
                            crate::CasnEntry::new(cell.pair.hi(), hi, hi - delta),
                            crate::CasnEntry::new(&cell.extra, ex, ex + delta),
                        ];
                        if s.casn(&mut entries) {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum = s.load(cell.pair.lo()) + s.load(cell.pair.hi()) + s.load(&cell.extra);
        assert_eq!(sum, total);
    }

    #[test]
    fn pair_fast_path_races_descriptor_casn_conserving_sum() {
        race_pair_fast_path_against_descriptor_casn::<EpochReclaimer>(McasConfig::default());
    }

    #[test]
    fn pair_fast_path_races_descriptor_casn_pooling_off() {
        // Reclamation-race regression: the pair fast path's failed
        // `cmpxchg16b` runs unpinned, so the descriptor pointers in its
        // snapshot may already be retired by the time the helper pins —
        // it must re-read the words under the pin and help only those
        // fresh values. With pooling off a retired descriptor is
        // `Box`-freed as soon as its grace period ends, turning any
        // stale-snapshot dereference into a hard use-after-free this
        // stress can actually trip (the pooled variant above would only
        // see recycled-but-live memory).
        race_pair_fast_path_against_descriptor_casn::<EpochReclaimer>(McasConfig {
            pool_descriptors: false,
            ..Default::default()
        });
    }

    #[test]
    fn reclaim_hazard_mcas_basic_semantics() {
        let s = HarrisMcasHazard::default();
        assert_eq!(<HarrisMcasHazard as DcasStrategy>::NAME, "harris-mcas-hazard");
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 16, 16));
        assert_eq!((o1, o2), (8, 12));
        let c = DcasWord::new(16);
        let mut entries = [
            CasnEntry::new(&a, 8, 20),
            CasnEntry::new(&b, 12, 24),
            CasnEntry::new(&c, 16, 28),
        ];
        assert!(s.casn(&mut entries));
        assert_eq!((s.load(&a), s.load(&b), s.load(&c)), (20, 24, 28));
        s.store(&a, 4);
        assert!(s.cas(&a, 4, 8));
        assert_eq!(s.load(&a), 8);
    }

    #[test]
    fn reclaim_hazard_mcas_all_configs() {
        // The knob matrix again, under the hazard backend (pooling is
        // forced on internally; the knob must still be harmless).
        for bits in 0..16u8 {
            let config = McasConfig {
                pool_descriptors: bits & 1 != 0,
                backoff: bits & 2 != 0,
                owner_fast_install: bits & 4 != 0,
                hw_pair: bits & 8 != 0,
            };
            let s = HarrisMcasHazard::with_config_in(config);
            let a = DcasWord::new(0);
            let b = DcasWord::new(4);
            assert!(s.dcas(&a, &b, 0, 4, 8, 12), "{config:?}");
            assert!(!s.dcas(&a, &b, 0, 4, 16, 16), "{config:?}");
            assert_eq!((s.load(&a), s.load(&b)), (8, 12), "{config:?}");
            let (mut o1, mut o2) = (0, 0);
            assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 16, 16), "{config:?}");
            assert_eq!((o1, o2), (8, 12), "{config:?}");
        }
    }

    #[test]
    fn reclaim_hazard_mcas_concurrent_counters_preserve_sum() {
        // The conservation stress on the hazard arm: exercises the
        // announce/validate helping protocol (including descriptor
        // recycling through the immortal pool) under real contention.
        conservation_under_transfers(Arc::new(HarrisMcasHazard::default()), 4, 10_000);
    }

    #[test]
    fn reclaim_hazard_mcas_race_pair_vs_casn() {
        // The pair fast path's contended branch under the hazard
        // backend: helps only values re-read under a fresh guard, with
        // announce-and-validate instead of an epoch pin.
        race_pair_fast_path_against_descriptor_casn::<HazardReclaimer>(McasConfig::default());
    }

    #[test]
    fn reclaim_hazard_mcas_garbage_stays_bounded() {
        // After descriptor churn on the hazard arm, live garbage must
        // respect the static bound (the frozen-victim variant lives in
        // tests/reclaim_torture.rs).
        let s = HarrisMcasHazard::default();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        for i in 0..2_000u64 {
            assert!(s.dcas(&a, &b, i * 8, i * 8 + 4, (i + 1) * 8, (i + 1) * 8 + 4));
        }
        let bound = crate::reclaim::hazard::static_garbage_bound();
        let live = HazardReclaimer::live_garbage();
        assert!(live <= bound, "hazard live garbage {live} exceeds static bound {bound}");
    }

    #[cfg(all(feature = "stats", target_arch = "x86_64"))]
    #[test]
    fn stats_count_pair_hits_and_fallbacks() {
        if !hw::supported() {
            return;
        }
        let s = HarrisMcas::new();
        let p = crate::DcasPair::new(0, 4);
        // 16 bytes apart: deterministically *not* slot-mates (two loose
        // locals might be, depending on stack layout).
        let words = [DcasWord::new(0), DcasWord::new(0), DcasWord::new(4)];
        assert!(s.dcas(p.lo(), p.hi(), 0, 4, 8, 12)); // adjacent: hit
        assert!(s.dcas(&words[0], &words[2], 0, 4, 8, 12)); // fallback
        let st = s.stats();
        assert_eq!(st.pair_hits, 1);
        assert_eq!(st.pair_fallbacks, 1);
        assert_eq!(st.pair_hit_rate(), Some(0.5));
        // The hit never touched the descriptor pool (the fallback took
        // exactly one descriptor — freshly boxed or recycled from the
        // process-wide reserve, depending on sibling tests).
        assert_eq!(st.descriptor_allocs + st.descriptor_reuses, 1);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn stats_count_ops_and_failures() {
        // hw_pair off: the test asserts descriptor-pool behaviour, and
        // two stack locals can land adjacent and take the hardware path.
        let s = HarrisMcas::with_config(McasConfig { hw_pair: false, ..Default::default() });
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        let st = s.stats();
        assert_eq!(st.dcas_ops, 2);
        assert_eq!(st.dcas_failures, 1);
        assert_eq!(st.ops, 2);
        // The failed dcas exited on the preliminary read: exactly one
        // descriptor was ever needed (freshly boxed or drawn from the
        // process-wide reserve, depending on sibling tests).
        assert_eq!(st.descriptor_allocs + st.descriptor_reuses, 1);
    }
}
