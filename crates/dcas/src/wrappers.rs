//! Instrumentation wrappers around any [`DcasStrategy`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{CasnEntry, DcasStrategy, DcasWord};

/// Operation counters collected by [`Counting`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DcasStats {
    /// Number of `load` calls.
    pub loads: u64,
    /// Number of `store` calls.
    pub stores: u64,
    /// Number of single-word CAS calls.
    pub cas_attempts: u64,
    /// Number of DCAS attempts (weak and strong).
    pub dcas_attempts: u64,
    /// Number of DCAS attempts that succeeded.
    pub dcas_successes: u64,
    /// Number of multi-word `casn` attempts.
    pub casn_attempts: u64,
    /// Number of `casn` attempts that succeeded.
    pub casn_successes: u64,
}

impl DcasStats {
    /// Failed attempts (attempts − successes).
    pub fn dcas_failures(&self) -> u64 {
        self.dcas_attempts - self.dcas_successes
    }

    /// Failed multi-word attempts (attempts − successes).
    pub fn casn_failures(&self) -> u64 {
        self.casn_attempts - self.casn_successes
    }
}

/// Wraps a strategy and counts every operation.
///
/// Useful for measuring algorithmic work independent of wall-clock noise:
/// e.g. the paper's claim that the linked-list algorithm costs "an extra
/// DCAS per pop operation" is validated by counting DCASes per completed
/// deque operation.
#[derive(Default)]
pub struct Counting<S: DcasStrategy> {
    inner: S,
    loads: AtomicU64,
    stores: AtomicU64,
    cas_attempts: AtomicU64,
    dcas_attempts: AtomicU64,
    dcas_successes: AtomicU64,
    casn_attempts: AtomicU64,
    casn_successes: AtomicU64,
}

impl<S: DcasStrategy> Counting<S> {
    /// Creates a counting wrapper around a default-constructed `S`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> DcasStats {
        DcasStats {
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
            dcas_attempts: self.dcas_attempts.load(Ordering::Relaxed),
            dcas_successes: self.dcas_successes.load(Ordering::Relaxed),
            casn_attempts: self.casn_attempts.load(Ordering::Relaxed),
            casn_successes: self.casn_successes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.loads.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.cas_attempts.store(0, Ordering::Relaxed);
        self.dcas_attempts.store(0, Ordering::Relaxed);
        self.dcas_successes.store(0, Ordering::Relaxed);
        self.casn_attempts.store(0, Ordering::Relaxed);
        self.casn_successes.store(0, Ordering::Relaxed);
    }
}

impl<S: DcasStrategy> DcasStrategy for Counting<S> {
    type Reclaimer = S::Reclaimer;
    const IS_LOCK_FREE: bool = S::IS_LOCK_FREE;
    const HAS_CHEAP_STRONG: bool = S::HAS_CHEAP_STRONG;
    const NAME: &'static str = S::NAME;

    fn load(&self, w: &DcasWord) -> u64 {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.inner.load(w)
    }

    fn store(&self, w: &DcasWord, v: u64) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.inner.store(w, v)
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        self.cas_attempts.fetch_add(1, Ordering::Relaxed);
        self.inner.cas(w, old, new)
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        self.dcas_attempts.fetch_add(1, Ordering::Relaxed);
        let ok = self.inner.dcas(a1, a2, o1, o2, n1, n2);
        if ok {
            self.dcas_successes.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        self.dcas_attempts.fetch_add(1, Ordering::Relaxed);
        let ok = self.inner.dcas_strong(a1, a2, o1, o2, n1, n2);
        if ok {
            self.dcas_successes.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        self.casn_attempts.fetch_add(1, Ordering::Relaxed);
        let ok = self.inner.casn(entries);
        if ok {
            self.casn_successes.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }
}

/// Wraps a strategy and yields the OS scheduler around every DCAS.
///
/// Stress-testing aid: widens race windows so that interleavings which are
/// rare on an idle machine (e.g. a thread suspended between the logical and
/// physical deletion steps of the linked-list deque) occur frequently.
#[derive(Default)]
pub struct Yielding<S: DcasStrategy> {
    inner: S,
}

impl<S: DcasStrategy> Yielding<S> {
    /// Creates a yielding wrapper around a default-constructed `S`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S: DcasStrategy> DcasStrategy for Yielding<S> {
    type Reclaimer = S::Reclaimer;
    const IS_LOCK_FREE: bool = S::IS_LOCK_FREE;
    const HAS_CHEAP_STRONG: bool = S::HAS_CHEAP_STRONG;
    const NAME: &'static str = S::NAME;

    fn load(&self, w: &DcasWord) -> u64 {
        self.inner.load(w)
    }

    fn store(&self, w: &DcasWord, v: u64) {
        self.inner.store(w, v)
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        std::thread::yield_now();
        self.inner.cas(w, old, new)
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        std::thread::yield_now();
        let ok = self.inner.dcas(a1, a2, o1, o2, n1, n2);
        std::thread::yield_now();
        ok
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        std::thread::yield_now();
        let ok = self.inner.dcas_strong(a1, a2, o1, o2, n1, n2);
        std::thread::yield_now();
        ok
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        std::thread::yield_now();
        let ok = self.inner.casn(entries);
        std::thread::yield_now();
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalLock;

    #[test]
    fn counting_counts() {
        let s: Counting<GlobalLock> = Counting::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        let _ = s.load(&a);
        s.store(&a, 4);
        assert!(s.dcas(&a, &b, 4, 0, 8, 4));
        assert!(!s.dcas(&a, &b, 4, 0, 8, 4));
        let st = s.stats();
        assert_eq!(st.loads, 1);
        assert_eq!(st.stores, 1);
        assert_eq!(st.dcas_attempts, 2);
        assert_eq!(st.dcas_successes, 1);
        assert_eq!(st.dcas_failures(), 1);
        s.reset();
        assert_eq!(s.stats(), DcasStats::default());
    }

    #[test]
    fn yielding_is_transparent() {
        let s: Yielding<GlobalLock> = Yielding::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        assert!(s.dcas(&a, &b, 0, 0, 4, 8));
        assert_eq!((s.load(&a), s.load(&b)), (4, 8));
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 12, 12));
        assert_eq!((o1, o2), (4, 8));
    }
}
