//! Deterministic fault injection for the DCAS substrate
//! (`fault-inject` feature).
//!
//! The paper's central progress claim is that the deques are
//! *non-blocking*: a processor stalled or killed at any point inside an
//! operation can never prevent other processors from completing theirs,
//! because any thread that encounters the orphaned DCAS descriptor helps
//! it to completion. Clean executions never exercise that claim. This
//! module manufactures the adversarial schedules deterministically:
//!
//! * [`FaultPlan`] — a seeded, replayable description of *what goes
//!   wrong*: spurious weak-DCAS/CASN failures, bounded stalls at the
//!   named [`FaultPoint`]s inside [`HarrisMcas`](crate::HarrisMcas), and
//!   at most one *kill* (a permanent freeze on a [`StallGate`], or a
//!   panic that unwinds out of the operation).
//! * [`arm`] — attaches a plan to the **calling thread**; only armed
//!   threads experience faults, so victims and survivors can share one
//!   strategy instance.
//! * [`FaultInjecting`] — a [`DcasStrategy`] wrapper that injects the
//!   plan's spurious failures into the weak `dcas`/`casn` paths (legal:
//!   callers of the weak form must tolerate failure and retry), while
//!   the `fault_point!` hooks compiled into `mcas.rs` deliver the
//!   stalls and kills inside the helping protocol itself.
//!
//! Determinism: every probabilistic decision comes from a per-thread
//! splitmix64 stream seeded from `(plan.seed, thread_index)`, so a run
//! is replayed exactly by re-arming the same plan on the same thread
//! topology. The torture harness prints the seed of every run for this
//! reason.
//!
//! # Kill semantics
//!
//! A [`KillKind::Freeze`] parks the victim on its gate at the Nth hit of
//! the chosen point — *any* hit, because a frozen thread resumes when
//! the gate is released and completes its operation normally, exactly
//! like a descheduled processor. A [`KillKind::Panic`] unwinds instead,
//! and is delivered only at a hit flagged *effect-free* (the in-flight
//! strategy operation has not yet published state nor transferred value
//! ownership), so an unwinding operation is indistinguishable from one
//! that returned failure; the thread's pooled descriptor, which will
//! never be retired now, is first moved to the permanent quarantine
//! ([`crate::pool::quarantine_inflight`]) so helpers that still hold
//! tagged pointers to it can keep probing it safely.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::strategy::{validate_args, validate_casn};
use crate::word::DcasWord;
use crate::{CasnEntry, DcasStrategy};

/// Named injection points: three inside the Harris MCAS protocol (the
/// `fault_point!` hooks in `mcas.rs`) plus one scheduler-level point in
/// the tiered work deque's spill path (hooked directly by
/// `dcas-workstealing` behind its own `fault-inject` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// On entry to descriptor publication, before phase 1 installs the
    /// descriptor into any target word.
    PreInstall,
    /// Inside a helping branch: the thread just encountered a foreign
    /// in-flight descriptor (during its own installation, a read, or a
    /// single-word CAS) and is about to help it.
    MidHelping,
    /// After resolution, immediately before the operation releases or
    /// retires its descriptor.
    PreRelease,
    /// In a tiered work deque's spill: the batch has been drained from
    /// the owner-private tier into the staging buffer but not yet
    /// pushed to the shared level — the death-flush recovery window.
    SpillStaged,
}

/// The MCAS-protocol injection points, for iterating a torture matrix
/// over strategy operations. [`FaultPoint::SpillStaged`] is deliberately
/// excluded: it only fires inside the work-stealing spill path, so a
/// matrix arm waiting for it during plain deque traffic would hang.
pub const FAULT_POINTS: [FaultPoint; 3] =
    [FaultPoint::PreInstall, FaultPoint::MidHelping, FaultPoint::PreRelease];

/// Every injection point, indexed by [`FaultPoint::index`].
const ALL_POINTS: [FaultPoint; 4] = [
    FaultPoint::PreInstall,
    FaultPoint::MidHelping,
    FaultPoint::PreRelease,
    FaultPoint::SpillStaged,
];

impl FaultPoint {
    #[inline]
    fn index(self) -> usize {
        match self {
            FaultPoint::PreInstall => 0,
            FaultPoint::MidHelping => 1,
            FaultPoint::PreRelease => 2,
            FaultPoint::SpillStaged => 3,
        }
    }

    /// Short stable name, used in diagnostics and replay lines.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PreInstall => "pre-install",
            FaultPoint::MidHelping => "mid-helping",
            FaultPoint::PreRelease => "pre-release",
            FaultPoint::SpillStaged => "spill-staged",
        }
    }
}

/// A gate a frozen thread parks on until the harness releases it —
/// the "suspended processor" of the paper's progress argument, with a
/// resume button for orderly test teardown.
pub struct StallGate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl StallGate {
    /// Creates a closed gate.
    pub fn new() -> Arc<StallGate> {
        Arc::new(StallGate { open: Mutex::new(false), cv: Condvar::new() })
    }

    /// Blocks until [`release`](Self::release) is called (returns
    /// immediately if it already was).
    pub fn park(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    /// Opens the gate, resuming every parked thread.
    pub fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// What happens to the victim thread when its kill triggers.
#[derive(Clone)]
pub enum KillKind {
    /// Park on the gate: a descheduled thread that eventually resumes
    /// (at test teardown) and completes its operation.
    Freeze(Arc<StallGate>),
    /// Unwind out of the operation: a thread killed mid-operation. The
    /// in-flight pooled descriptor is quarantined first. Delivered only
    /// at an effect-free hit of the chosen point (see module docs).
    Panic,
}

/// A single kill: at which point, after how many prior hits, and how.
#[derive(Clone)]
pub struct Kill {
    /// The injection point the kill triggers at.
    pub point: FaultPoint,
    /// Number of hits of `point` to let pass before triggering.
    pub after_hits: u64,
    /// Freeze or panic.
    pub kind: KillKind,
}

/// A seeded, replayable description of the faults one thread suffers.
#[derive(Clone)]
pub struct FaultPlan {
    /// Seed of the per-thread decision stream (combined with the
    /// thread index passed to [`arm`]).
    pub seed: u64,
    /// Probability, in ‰, that a weak `dcas`/`casn` through
    /// [`FaultInjecting`] spuriously fails without reaching the inner
    /// strategy.
    pub spurious_per_mille: u32,
    /// Probability, in ‰, that a `fault_point!` hit spins for
    /// [`stall_spins`](Self::stall_spins) iterations (a bounded
    /// preemption).
    pub stall_per_mille: u32,
    /// Length of a bounded stall, in spin-loop hints.
    pub stall_spins: u32,
    /// At most one permanent kill.
    pub kill: Option<Kill>,
}

impl FaultPlan {
    /// A plan with no faults; add them with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, spurious_per_mille: 0, stall_per_mille: 0, stall_spins: 0, kill: None }
    }

    /// Enables spurious weak-DCAS/CASN failures at the given per-mille
    /// rate.
    pub fn spurious(mut self, per_mille: u32) -> Self {
        self.spurious_per_mille = per_mille;
        self
    }

    /// Enables bounded stalls at the given per-mille rate and length.
    pub fn stalls(mut self, per_mille: u32, spins: u32) -> Self {
        self.stall_per_mille = per_mille;
        self.stall_spins = spins;
        self
    }

    /// Schedules the thread's kill.
    pub fn kill(mut self, point: FaultPoint, after_hits: u64, kind: KillKind) -> Self {
        self.kill = Some(Kill { point, after_hits, kind });
        self
    }
}

/// Shared, lock-free record of what an armed thread has experienced;
/// the watchdog reads it to produce a stuck-thread diagnostic.
#[derive(Default)]
pub struct FaultLog {
    hits: [AtomicU64; 4],
    /// `point.index() + 1` of the most recent hit; 0 = none yet.
    last_point: AtomicU64,
    spurious: AtomicU64,
    stalls: AtomicU64,
    frozen: AtomicBool,
    panicked: AtomicBool,
}

impl FaultLog {
    /// Hits recorded at `point`.
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.hits[point.index()].load(Ordering::Relaxed)
    }

    /// Total hits across all points.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// The most recently hit injection point, if any.
    pub fn last_point(&self) -> Option<FaultPoint> {
        match self.last_point.load(Ordering::Relaxed) {
            0 => None,
            n => Some(ALL_POINTS[n as usize - 1]),
        }
    }

    /// Spurious weak-DCAS/CASN failures injected so far.
    pub fn spurious_failures(&self) -> u64 {
        self.spurious.load(Ordering::Relaxed)
    }

    /// Bounded stalls delivered so far.
    pub fn bounded_stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Whether the thread is (or was) parked on its freeze gate.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }

    /// Whether the thread's panic kill was delivered.
    pub fn is_panicked(&self) -> bool {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Whether either kill kind was delivered.
    pub fn is_killed(&self) -> bool {
        self.is_frozen() || self.is_panicked()
    }

    /// One-line diagnostic summary for the watchdog dump.
    pub fn describe(&self) -> String {
        format!(
            "last-point={} hits=[pre-install:{} mid-helping:{} pre-release:{} spill-staged:{}] \
             spurious={} stalls={} frozen={} panicked={}",
            self.last_point().map_or("none", |p| p.name()),
            self.hits(FaultPoint::PreInstall),
            self.hits(FaultPoint::MidHelping),
            self.hits(FaultPoint::PreRelease),
            self.hits(FaultPoint::SpillStaged),
            self.spurious_failures(),
            self.bounded_stalls(),
            self.is_frozen(),
            self.is_panicked(),
        )
    }
}

/// Per-thread armed state.
struct Active {
    plan: FaultPlan,
    rng: u64,
    log: Arc<FaultLog>,
    /// The (single) kill has not fired yet.
    kill_pending: bool,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Disarms the calling thread when dropped (end of the victim's scoped
/// run). `!Send`: faults are a property of the thread that armed them.
pub struct ArmedGuard {
    log: Arc<FaultLog>,
    _not_send: PhantomData<*const ()>,
}

impl ArmedGuard {
    /// The log shared with the harness/watchdog.
    pub fn log(&self) -> Arc<FaultLog> {
        Arc::clone(&self.log)
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        let _ = ACTIVE.try_with(|a| a.borrow_mut().take());
    }
}

/// Arms the calling thread with `plan`. The decision stream is seeded
/// from `(plan.seed, thread_index)` so distinct victim threads of one
/// run draw independent, replayable streams. Returns the disarm guard;
/// its [`log`](ArmedGuard::log) is live immediately.
pub fn arm(plan: &FaultPlan, thread_index: u64) -> ArmedGuard {
    let log = Arc::new(FaultLog::default());
    let mut rng = plan.seed ^ thread_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // Warm the stream so nearby seeds diverge immediately.
    splitmix64(&mut rng);
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(Active {
            plan: plan.clone(),
            rng,
            log: Arc::clone(&log),
            kill_pending: plan.kill.is_some(),
        });
    });
    ArmedGuard { log, _not_send: PhantomData }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum Action {
    None,
    Stall(u32),
    Freeze(Arc<StallGate>),
    Panic,
}

/// The `fault_point!` hook body: records the hit and delivers whatever
/// the calling thread's plan owes at this point. No-op on unarmed
/// threads. `effect_free` asserts that the in-flight strategy operation
/// has neither published state nor transferred value ownership — the
/// precondition for delivering a panic here.
pub fn hit(point: FaultPoint, effect_free: bool) {
    // Decide under the TLS borrow, act after releasing it: parking or
    // unwinding while the RefCell is borrowed would poison re-entry.
    let action = ACTIVE
        .try_with(|a| {
            let mut a = a.borrow_mut();
            let Some(active) = a.as_mut() else { return Action::None };
            let n = active.log.hits[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
            active.log.last_point.store(point.index() as u64 + 1, Ordering::Relaxed);
            if active.kill_pending {
                if let Some(kill) = &active.plan.kill {
                    if kill.point == point && n > kill.after_hits {
                        match &kill.kind {
                            KillKind::Freeze(gate) => {
                                active.kill_pending = false;
                                active.log.frozen.store(true, Ordering::SeqCst);
                                return Action::Freeze(Arc::clone(gate));
                            }
                            // A panic must wait for an effect-free hit
                            // of its point; see module docs.
                            KillKind::Panic if effect_free => {
                                active.kill_pending = false;
                                active.log.panicked.store(true, Ordering::SeqCst);
                                return Action::Panic;
                            }
                            KillKind::Panic => {}
                        }
                    }
                }
            }
            if active.plan.stall_per_mille > 0
                && splitmix64(&mut active.rng) % 1000 < active.plan.stall_per_mille as u64
            {
                active.log.stalls.fetch_add(1, Ordering::Relaxed);
                return Action::Stall(active.plan.stall_spins);
            }
            Action::None
        })
        .unwrap_or(Action::None);
    match action {
        Action::None => {}
        Action::Stall(spins) => {
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        Action::Freeze(gate) => gate.park(),
        Action::Panic => {
            crate::pool::quarantine_inflight();
            panic!("fault-injected kill at {}", point.name());
        }
    }
}

/// Rolls the armed thread's spurious-failure die. `false` on unarmed
/// threads.
fn spurious_failure() -> bool {
    ACTIVE
        .try_with(|a| {
            let mut a = a.borrow_mut();
            let Some(active) = a.as_mut() else { return false };
            if active.plan.spurious_per_mille > 0
                && splitmix64(&mut active.rng) % 1000 < active.plan.spurious_per_mille as u64
            {
                active.log.spurious.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            false
        })
        .unwrap_or(false)
}

/// A [`DcasStrategy`] decorator that injects the calling thread's
/// [`FaultPlan`] spurious failures into the **weak** `dcas`/`casn`
/// paths. Weak-form callers must already tolerate failure-and-retry, so
/// a fabricated `false` (with the inner strategy never invoked — the
/// words are untouched) is always linearizable: it is a DCAS that
/// "lost a race". `dcas_strong` is deliberately passed through — its
/// callers consume the failure snapshot, and fabricating one would
/// invent a memory state that never existed.
///
/// Threads that never called [`arm`] pass through unchanged, so one
/// wrapped strategy instance serves victims and survivors alike.
#[derive(Default)]
pub struct FaultInjecting<S: DcasStrategy> {
    inner: S,
}

impl<S: DcasStrategy> FaultInjecting<S> {
    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: DcasStrategy> DcasStrategy for FaultInjecting<S> {
    type Reclaimer = S::Reclaimer;
    const IS_LOCK_FREE: bool = S::IS_LOCK_FREE;
    const HAS_CHEAP_STRONG: bool = S::HAS_CHEAP_STRONG;
    const NAME: &'static str = "fault-injecting";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        self.inner.load(w)
    }

    #[inline]
    fn store(&self, w: &DcasWord, v: u64) {
        self.inner.store(w, v)
    }

    #[inline]
    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        self.inner.cas(w, old, new)
    }

    #[inline]
    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        // Keep the trait's validation panics even when the inner
        // strategy is skipped.
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        if spurious_failure() {
            return false;
        }
        self.inner.dcas(a1, a2, o1, o2, n1, n2)
    }

    #[inline]
    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        self.inner.dcas_strong(a1, a2, o1, o2, n1, n2)
    }

    #[inline]
    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        validate_casn(entries);
        if spurious_failure() {
            return false;
        }
        self.inner.casn(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HarrisMcas;
    use std::time::{Duration, Instant};

    #[test]
    fn unarmed_thread_is_transparent() {
        let s = FaultInjecting::<HarrisMcas>::default();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 20));
        let mut entries =
            [CasnEntry::new(&a, 8, 16), CasnEntry::new(&b, 12, 20)];
        assert!(s.casn(&mut entries));
        assert_eq!((s.load(&a), s.load(&b)), (16, 20));
    }

    #[test]
    fn certain_spurious_failure_never_reaches_inner() {
        let s = FaultInjecting::<HarrisMcas>::default();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        let guard = arm(&FaultPlan::new(7).spurious(1000), 0);
        for _ in 0..64 {
            // Would succeed against the real strategy; must fail and
            // leave both words untouched.
            assert!(!s.dcas(&a, &b, 0, 4, 8, 12));
        }
        assert_eq!((s.load(&a), s.load(&b)), (0, 4));
        assert_eq!(guard.log().spurious_failures(), 64);
        drop(guard);
        // Disarmed: back to the real semantics.
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
    }

    #[test]
    fn same_seed_same_decisions() {
        fn stream(seed: u64, index: u64) -> Vec<bool> {
            let _guard = arm(&FaultPlan::new(seed).spurious(500), index);
            (0..256).map(|_| spurious_failure()).collect()
        }
        let a = stream(42, 3);
        let b = stream(42, 3);
        let c = stream(42, 4);
        assert_eq!(a, b, "same (seed, index) must replay identically");
        assert_ne!(a, c, "distinct thread indices must diverge");
        // The rate is in the right ballpark for 500‰.
        let hits = a.iter().filter(|&&x| x).count();
        assert!((64..192).contains(&hits), "got {hits}/256 at 500 per mille");
    }

    #[test]
    fn freeze_parks_until_released() {
        let gate = StallGate::new();
        let plan =
            FaultPlan::new(1).kill(FaultPoint::PreInstall, 0, KillKind::Freeze(gate.clone()));
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let guard = arm(&plan, 0);
            tx.send(guard.log()).unwrap();
            // `hw_pair` off: this test targets the descriptor protocol's
            // PreInstall point, which the hardware pair path (taken when
            // two stack locals happen to share a 16-byte slot) bypasses.
            let s = HarrisMcas::with_config(crate::McasConfig {
                hw_pair: false,
                ..Default::default()
            });
            let a = DcasWord::new(0);
            let b = DcasWord::new(4);
            // Reaches descriptor publication, hits PreInstall, parks.
            assert!(s.dcas(&a, &b, 0, 4, 8, 12));
            (s.load(&a), s.load(&b))
        });
        let log = rx.recv().unwrap();
        let start = Instant::now();
        while !log.is_frozen() {
            assert!(start.elapsed() < Duration::from_secs(10), "victim never froze");
            std::thread::yield_now();
        }
        assert!(!handle.is_finished(), "frozen thread must not make progress");
        gate.release();
        // Resumed: the operation completes normally.
        assert_eq!(handle.join().unwrap(), (8, 12));
    }

    #[test]
    fn panic_kill_unwinds_and_quarantines() {
        let before = crate::pool::orphan_count();
        let plan = FaultPlan::new(2).kill(FaultPoint::PreInstall, 0, KillKind::Panic);
        let (log, result) = std::thread::spawn(move || {
            let guard = arm(&plan, 0);
            let log = guard.log();
            // `hw_pair` off, as in `freeze_parks_until_released`: the
            // PreInstall kill only exists on the descriptor path.
            let s = HarrisMcas::with_config(crate::McasConfig {
                hw_pair: false,
                ..Default::default()
            });
            let a = DcasWord::new(0);
            let b = DcasWord::new(4);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s.dcas(&a, &b, 0, 4, 8, 12)
            }));
            // Effect-free: the words are untouched after the unwind,
            // and the strategy keeps working on this thread.
            assert_eq!((s.load(&a), s.load(&b)), (0, 4));
            assert!(s.dcas(&a, &b, 0, 4, 8, 12));
            (log, result.map_err(drop))
        })
        .join()
        .unwrap();
        assert!(result.is_err(), "the kill must unwind out of dcas");
        assert!(log.is_panicked());
        assert!(
            crate::pool::orphan_count() > before,
            "the in-flight descriptor must land in the quarantine"
        );
    }

    #[test]
    fn panic_kill_waits_for_effect_free_hit() {
        // MidHelping hits with effect_free = false must not deliver the
        // panic; the kill stays pending.
        let plan = FaultPlan::new(3).kill(FaultPoint::MidHelping, 0, KillKind::Panic);
        let guard = arm(&plan, 0);
        hit(FaultPoint::MidHelping, false);
        hit(FaultPoint::MidHelping, false);
        assert!(!guard.log().is_panicked());
        let r = std::panic::catch_unwind(|| hit(FaultPoint::MidHelping, true));
        assert!(r.is_err());
        assert!(guard.log().is_panicked());
    }
}
