//! The shared memory word type operated on by all DCAS strategies.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 64-bit shared memory word that may participate in DCAS operations.
///
/// `DcasWord` deliberately does **not** expose raw atomic accessors: all
/// reads and writes must go through a [`DcasStrategy`](crate::DcasStrategy)
/// so that strategies which tag in-flight descriptors into words (the
/// lock-free [`HarrisMcas`](crate::HarrisMcas)) can intercept them. The
/// `pub(crate)` accessors below are the escape hatch used by strategy
/// implementations themselves.
///
/// Payload values must satisfy the crate-wide reserved-bits contract: the
/// low [`RESERVED_BITS`](crate::RESERVED_BITS) bits must be clear.
#[repr(transparent)]
pub struct DcasWord {
    cell: AtomicU64,
}

impl DcasWord {
    /// Creates a new word holding `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` violates the payload contract.
    #[inline]
    pub const fn new(v: u64) -> Self {
        assert!(crate::is_valid_payload(v), "DcasWord payload has reserved low bits set");
        DcasWord { cell: AtomicU64::new(v) }
    }

    /// Raw load, visible only to strategy implementations.
    #[inline]
    pub(crate) fn raw_load(&self, order: Ordering) -> u64 {
        self.cell.load(order)
    }

    /// Raw store, visible only to strategy implementations.
    #[inline]
    pub(crate) fn raw_store(&self, v: u64, order: Ordering) {
        self.cell.store(v, order)
    }

    /// Raw compare-exchange, visible only to strategy implementations.
    #[inline]
    pub(crate) fn raw_compare_exchange(
        &self,
        old: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.cell.compare_exchange(old, new, success, failure)
    }

    /// Address of this word, used for lock ordering and identity checks.
    #[inline]
    pub(crate) fn addr(&self) -> usize {
        self as *const DcasWord as usize
    }

    /// Unsynchronized store for words that are **not yet shared** (e.g.
    /// initializing the fields of a node before it is published by a
    /// DCAS). The publishing DCAS provides the release edge that makes
    /// these writes visible to readers that acquire the published pointer.
    ///
    /// Must not be used on a word that another thread may access
    /// concurrently; use [`DcasStrategy::store`](crate::DcasStrategy::store)
    /// for that.
    #[inline]
    pub fn init_store(&self, v: u64) {
        debug_assert!(crate::is_valid_payload(v), "payload has reserved low bits set");
        self.cell.store(v, Ordering::Relaxed)
    }

    /// Unsynchronized load for words to which the caller has **exclusive
    /// access** (e.g. tearing down a structure through `&mut self`, when
    /// no operation can be in flight and therefore no strategy descriptor
    /// can be installed).
    #[inline]
    pub fn unsync_load(&mut self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Like [`unsync_load`](Self::unsync_load) but through a shared
    /// reference, for callers that can prove quiescence without holding
    /// `&mut` (e.g. `Drop` implementations walking linked nodes).
    ///
    /// # Safety
    ///
    /// No other thread may concurrently write this word.
    #[inline]
    pub unsafe fn unsync_load_shared(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl Default for DcasWord {
    fn default() -> Self {
        DcasWord::new(0)
    }
}

impl fmt::Debug for DcasWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A raw relaxed load is fine for debugging; the printed value may be
        // a tagged descriptor pointer if a lock-free DCAS is in flight.
        write!(f, "DcasWord({:#x})", self.raw_load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_raw_roundtrip() {
        let w = DcasWord::new(40);
        assert_eq!(w.raw_load(Ordering::SeqCst), 40);
        w.raw_store(8, Ordering::SeqCst);
        assert_eq!(w.raw_load(Ordering::SeqCst), 8);
    }

    #[test]
    fn raw_compare_exchange_semantics() {
        let w = DcasWord::new(4);
        assert_eq!(w.raw_compare_exchange(4, 8, Ordering::SeqCst, Ordering::SeqCst), Ok(4));
        assert_eq!(w.raw_compare_exchange(4, 12, Ordering::SeqCst, Ordering::SeqCst), Err(8));
    }

    #[test]
    #[should_panic(expected = "reserved low bits")]
    fn new_rejects_tagged_payload() {
        let _ = DcasWord::new(3);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(DcasWord::default().raw_load(Ordering::SeqCst), 0);
    }

    #[test]
    fn addresses_are_distinct() {
        let a = DcasWord::new(0);
        let b = DcasWord::new(0);
        assert_ne!(a.addr(), b.addr());
    }
}
