//! Feature-gated per-strategy operation counters.
//!
//! With the `stats` feature enabled, [`HarrisMcas`](crate::HarrisMcas)
//! (and any other strategy that opts in) counts operations, DCAS
//! failures, helping events, and descriptor pool traffic, exposed as a
//! [`StrategyStats`] snapshot. With the feature disabled every counter
//! method is an empty `#[inline]` body and the counter block is a
//! zero-sized struct, so the hot path pays nothing.
//!
//! The counters use `Relaxed` increments: they are monotonic telemetry,
//! not synchronization, and a torn *view* across fields is acceptable
//! (a snapshot taken while threads run is approximate by nature).
//!
//! # Layout: striped, cache-line-padded lines
//!
//! A naive counter block is a single cache line that every thread's
//! every hot-path op RMWs — enabling stats would *add* a globally
//! contended line to the very operations being measured. The block is
//! therefore split into [`COUNTER_STRIPES`] cache-line-padded lines;
//! each thread hashes to one line and all its increments stay there, so
//! threads on different stripes never share a counter cache line.
//! [`Counters::snapshot`] sums across stripes. One line (twelve `u64`s)
//! fits a single 128-byte padded slot, so the whole block is
//! `COUNTER_STRIPES` lines regardless of how many counters exist.

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "stats")]
use crossbeam_utils::CachePadded;

/// Point-in-time snapshot of a strategy's counters.
///
/// All fields are zero when the `stats` feature is disabled, so callers
/// (benches, diagnostics) can be written unconditionally.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StrategyStats {
    /// Public operations started (`load` + `store` + `cas` + `dcas` +
    /// `dcas_strong`).
    pub ops: u64,
    /// `dcas`/`dcas_strong` invocations.
    pub dcas_ops: u64,
    /// `dcas`/`dcas_strong` invocations that returned `false`.
    pub dcas_failures: u64,
    /// `dcas`/`dcas_strong` invocations whose two targets shared one
    /// 16-byte [`DcasPair`](crate::DcasPair) slot and were served by the
    /// single-instruction hardware path (see [`hw`](crate::hw)).
    pub pair_hits: u64,
    /// `dcas`/`dcas_strong` invocations that took the descriptor
    /// protocol instead: targets not adjacent, hardware DCAS
    /// unsupported, or the `hw_pair` knob off.
    pub pair_fallbacks: u64,
    /// Times this strategy helped another thread's in-flight operation
    /// (RDCSS completion or CASN help on a foreign descriptor).
    pub helps: u64,
    /// Descriptors taken from the pool freelist (recycled).
    pub descriptor_reuses: u64,
    /// Descriptors created with a fresh heap allocation (pool miss, or
    /// pooling disabled).
    pub descriptor_allocs: u64,
    /// Multi-word `casn` invocations (the batch-operation primitive).
    pub casn_ops: u64,
    /// `casn` invocations that returned `false`.
    pub casn_failures: u64,
    /// Elimination-array exchanges that paired a push with a pop
    /// (see [`elimination`](crate::elimination)).
    pub elim_hits: u64,
    /// Elimination-array attempts that timed out unpaired.
    pub elim_misses: u64,
    /// Descriptors quarantined because their owning thread was killed
    /// mid-operation (see [`orphan_count`](crate::orphan_count)).
    /// Process-global — like the thread-local descriptor pools it
    /// audits — and reported regardless of the `stats` feature, since
    /// it tracks a correctness-relevant event, not hot-path telemetry.
    pub descriptor_orphans: u64,
    /// Descriptors currently checked out to operations (or aging through
    /// a reclamation grace period / hazard drain). A snapshot-time gauge
    /// read from the process-global pool accounting
    /// ([`live_descriptors`](crate::live_descriptors)), reported
    /// regardless of the `stats` feature.
    pub live_descriptors: u64,
    /// Blocks retired through this strategy's reclamation backend and
    /// not yet freed (descriptors and client nodes alike). Snapshot-time
    /// gauge, process-global per backend, reported regardless of the
    /// `stats` feature.
    pub retired_pending: u64,
    /// High-water mark of [`retired_pending`](Self::retired_pending)
    /// since process start — the number the bounded-memory audit
    /// (`tests/reclaim_torture.rs`, bench E15) compares against the
    /// hazard backend's static bound. Snapshot-time gauge, reported
    /// regardless of the `stats` feature.
    pub garbage_high_water: u64,
    /// Collection attempts that found the backend stuck (epoch: the
    /// global epoch could not advance while the local deferred queue was
    /// over threshold — the frozen-thread signature). `0` for backends
    /// without the failure mode. Snapshot-time gauge, reported
    /// regardless of the `stats` feature.
    pub stalled_collections: u64,
    /// Pages currently held by the node page pool
    /// ([`alloc`](crate::alloc)), summed over every registered pool.
    /// Pages are never unmapped (type stability), so this is also the
    /// pool-memory high-water mark. Snapshot-time gauge, process-global,
    /// reported regardless of the `stats` feature.
    pub pool_pages: u64,
    /// Pool node slots handed out and not yet returned (allocs minus
    /// frees across every pool). Snapshot-time gauge, process-global,
    /// reported regardless of the `stats` feature.
    pub pool_nodes_outstanding: u64,
    /// Node frees that landed on a foreign page's MPSC return stack
    /// (the popper retired a node the pusher's thread allocated).
    /// Monotonic, process-global, reported regardless of the `stats`
    /// feature.
    pub pool_remote_frees: u64,
}

impl StrategyStats {
    /// Fraction of descriptor acquisitions served by the freelist, in
    /// `[0, 1]`; `1.0` means the steady state allocates nothing. `None`
    /// when no descriptor was ever acquired.
    pub fn reuse_rate(&self) -> Option<f64> {
        let total = self.descriptor_reuses + self.descriptor_allocs;
        (total != 0).then(|| self.descriptor_reuses as f64 / total as f64)
    }

    /// Fraction of failed DCAS invocations, in `[0, 1]`; `None` when no
    /// DCAS ran.
    pub fn failure_rate(&self) -> Option<f64> {
        (self.dcas_ops != 0).then(|| self.dcas_failures as f64 / self.dcas_ops as f64)
    }

    /// Fraction of elimination attempts that paired with a partner, in
    /// `[0, 1]`; `None` when the elimination array was never consulted.
    pub fn elim_hit_rate(&self) -> Option<f64> {
        let total = self.elim_hits + self.elim_misses;
        (total != 0).then(|| self.elim_hits as f64 / total as f64)
    }

    /// Fraction of `dcas`/`dcas_strong` invocations served by the
    /// single-instruction hardware pair path, in `[0, 1]`; `None` when
    /// no DCAS ran (or stats are off).
    pub fn pair_hit_rate(&self) -> Option<f64> {
        let total = self.pair_hits + self.pair_fallbacks;
        (total != 0).then(|| self.pair_hits as f64 / total as f64)
    }

    /// Name/value pairs for every counter, in declaration order — the
    /// stable iteration surface for exporters (e.g. `crates/obs`'
    /// metrics registry), so adding a counter here automatically reaches
    /// every report format.
    pub fn fields(&self) -> [(&'static str, u64); 20] {
        [
            ("ops", self.ops),
            ("dcas_ops", self.dcas_ops),
            ("dcas_failures", self.dcas_failures),
            ("pair_hits", self.pair_hits),
            ("pair_fallbacks", self.pair_fallbacks),
            ("helps", self.helps),
            ("descriptor_reuses", self.descriptor_reuses),
            ("descriptor_allocs", self.descriptor_allocs),
            ("casn_ops", self.casn_ops),
            ("casn_failures", self.casn_failures),
            ("elim_hits", self.elim_hits),
            ("elim_misses", self.elim_misses),
            ("descriptor_orphans", self.descriptor_orphans),
            ("live_descriptors", self.live_descriptors),
            ("retired_pending", self.retired_pending),
            ("garbage_high_water", self.garbage_high_water),
            ("stalled_collections", self.stalled_collections),
            ("pool_pages", self.pool_pages),
            ("pool_nodes_outstanding", self.pool_nodes_outstanding),
            ("pool_remote_frees", self.pool_remote_frees),
        ]
    }

    /// Field-wise difference (`self - earlier`), for measuring a phase.
    ///
    /// The gauge fields (`live_descriptors`, `retired_pending`,
    /// `garbage_high_water`, `stalled_collections`) are not monotonic
    /// deltas like the counters, so their difference saturates at zero
    /// rather than wrapping when the later snapshot is smaller.
    pub fn since(&self, earlier: &StrategyStats) -> StrategyStats {
        StrategyStats {
            ops: self.ops - earlier.ops,
            dcas_ops: self.dcas_ops - earlier.dcas_ops,
            dcas_failures: self.dcas_failures - earlier.dcas_failures,
            pair_hits: self.pair_hits - earlier.pair_hits,
            pair_fallbacks: self.pair_fallbacks - earlier.pair_fallbacks,
            helps: self.helps - earlier.helps,
            descriptor_reuses: self.descriptor_reuses - earlier.descriptor_reuses,
            descriptor_allocs: self.descriptor_allocs - earlier.descriptor_allocs,
            casn_ops: self.casn_ops - earlier.casn_ops,
            casn_failures: self.casn_failures - earlier.casn_failures,
            elim_hits: self.elim_hits - earlier.elim_hits,
            elim_misses: self.elim_misses - earlier.elim_misses,
            descriptor_orphans: self.descriptor_orphans - earlier.descriptor_orphans,
            live_descriptors: self.live_descriptors.saturating_sub(earlier.live_descriptors),
            retired_pending: self.retired_pending.saturating_sub(earlier.retired_pending),
            garbage_high_water: self
                .garbage_high_water
                .saturating_sub(earlier.garbage_high_water),
            stalled_collections: self
                .stalled_collections
                .saturating_sub(earlier.stalled_collections),
            pool_pages: self.pool_pages.saturating_sub(earlier.pool_pages),
            pool_nodes_outstanding: self
                .pool_nodes_outstanding
                .saturating_sub(earlier.pool_nodes_outstanding),
            pool_remote_frees: self.pool_remote_frees - earlier.pool_remote_frees,
        }
    }
}

/// Number of cache-line-padded counter lines per [`Counters`] block. A
/// power of two so the per-thread hash is a mask; eight lines keep the
/// block at 1 KiB while making same-line collisions unlikely at the
/// thread counts the benches run.
#[cfg(feature = "stats")]
const COUNTER_STRIPES: usize = 8;

/// One stripe's worth of counters: twelve adjacent `u64`s, deliberately
/// *within* a single padded line — only threads hashed to the same
/// stripe share it.
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
struct CounterLine {
    ops: AtomicU64,
    dcas_ops: AtomicU64,
    dcas_failures: AtomicU64,
    pair_hits: AtomicU64,
    pair_fallbacks: AtomicU64,
    helps: AtomicU64,
    descriptor_reuses: AtomicU64,
    descriptor_allocs: AtomicU64,
    casn_ops: AtomicU64,
    casn_failures: AtomicU64,
    elim_hits: AtomicU64,
    elim_misses: AtomicU64,
}

/// Index of the calling thread's stripe: assigned round-robin on first
/// use, so the first `COUNTER_STRIPES` threads get private lines.
#[cfg(feature = "stats")]
#[inline]
fn stripe_index() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    IDX.with(|i| *i) & (COUNTER_STRIPES - 1)
}

/// Internal counter block embedded in a strategy. Zero-sized (and all
/// methods no-ops) unless the `stats` feature is on; with it, a striped
/// array of cache-line-padded counter lines (module docs).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    #[cfg(feature = "stats")]
    stripes: [CachePadded<CounterLine>; COUNTER_STRIPES],
}

macro_rules! counter_inc {
    ($(#[$doc:meta] $inc:ident => $field:ident;)*) => {$(
        #[$doc]
        #[inline]
        pub(crate) fn $inc(&self) {
            #[cfg(feature = "stats")]
            self.stripes[stripe_index()].$field.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl Counters {
    counter_inc! {
        /// One public operation started.
        inc_op => ops;
        /// One `dcas`/`dcas_strong` invocation.
        inc_dcas => dcas_ops;
        /// One failed `dcas`/`dcas_strong`.
        inc_dcas_failure => dcas_failures;
        /// One `dcas`/`dcas_strong` served by the hardware pair path.
        inc_pair_hit => pair_hits;
        /// One `dcas`/`dcas_strong` that took the descriptor protocol.
        inc_pair_fallback => pair_fallbacks;
        /// Helped a foreign in-flight operation.
        inc_help => helps;
        /// Descriptor served from the pool freelist.
        inc_descriptor_reuse => descriptor_reuses;
        /// Descriptor freshly heap-allocated.
        inc_descriptor_alloc => descriptor_allocs;
        /// One multi-word `casn` invocation.
        inc_casn => casn_ops;
        /// One failed `casn`.
        inc_casn_failure => casn_failures;
        /// One elimination pairing (push and pop exchanged directly).
        inc_elim_hit => elim_hits;
        /// One elimination attempt that timed out unpaired.
        inc_elim_miss => elim_misses;
    }

    /// Snapshot (all-zero without the `stats` feature): the per-stripe
    /// lines summed field-wise.
    pub(crate) fn snapshot(&self) -> StrategyStats {
        #[cfg(feature = "stats")]
        {
            let mut s = StrategyStats::default();
            for line in self.stripes.iter() {
                s.ops += line.ops.load(Ordering::Relaxed);
                s.dcas_ops += line.dcas_ops.load(Ordering::Relaxed);
                s.dcas_failures += line.dcas_failures.load(Ordering::Relaxed);
                s.pair_hits += line.pair_hits.load(Ordering::Relaxed);
                s.pair_fallbacks += line.pair_fallbacks.load(Ordering::Relaxed);
                s.helps += line.helps.load(Ordering::Relaxed);
                s.descriptor_reuses += line.descriptor_reuses.load(Ordering::Relaxed);
                s.descriptor_allocs += line.descriptor_allocs.load(Ordering::Relaxed);
                s.casn_ops += line.casn_ops.load(Ordering::Relaxed);
                s.casn_failures += line.casn_failures.load(Ordering::Relaxed);
                s.elim_hits += line.elim_hits.load(Ordering::Relaxed);
                s.elim_misses += line.elim_misses.load(Ordering::Relaxed);
            }
            // descriptor_orphans is global, not per-counter-block: filled
            // in by the strategies that own pooled descriptors
            // (`HarrisMcas`).
            s
        }
        #[cfg(not(feature = "stats"))]
        StrategyStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let c = Counters::default();
        c.inc_op();
        c.inc_dcas();
        c.inc_dcas_failure();
        c.inc_help();
        c.inc_descriptor_reuse();
        c.inc_descriptor_reuse();
        c.inc_descriptor_alloc();
        let s = c.snapshot();
        #[cfg(feature = "stats")]
        {
            assert_eq!(s.ops, 1);
            assert_eq!(s.dcas_ops, 1);
            assert_eq!(s.dcas_failures, 1);
            assert_eq!(s.helps, 1);
            assert_eq!(s.descriptor_reuses, 2);
            assert_eq!(s.descriptor_allocs, 1);
            assert_eq!(s.reuse_rate(), Some(2.0 / 3.0));
            assert_eq!(s.failure_rate(), Some(1.0));
            let d = s.since(&StrategyStats { descriptor_reuses: 1, ..Default::default() });
            assert_eq!(d.descriptor_reuses, 1);
        }
        #[cfg(not(feature = "stats"))]
        {
            assert_eq!(s, StrategyStats::default());
            assert_eq!(s.reuse_rate(), None);
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn stripes_sum_across_threads() {
        // Increments from many threads land on (up to) as many stripes;
        // the snapshot must see every one exactly once.
        use std::sync::Arc;
        let c = Arc::new(Counters::default());
        let mut handles = vec![];
        for _ in 0..2 * COUNTER_STRIPES {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc_op();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().ops, 2 * COUNTER_STRIPES as u64 * 1000);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counter_lines_are_padded_and_single_line() {
        // Each stripe occupies its own 128-byte slot (no false sharing
        // between stripes), and one line's counters all fit within it.
        assert!(std::mem::size_of::<CounterLine>() <= 128);
        assert_eq!(std::mem::size_of::<CachePadded<CounterLine>>(), 128);
        assert_eq!(
            std::mem::size_of::<Counters>(),
            COUNTER_STRIPES * std::mem::size_of::<CachePadded<CounterLine>>()
        );
    }

    #[test]
    fn pair_hit_rate_math() {
        let s = StrategyStats { pair_hits: 3, pair_fallbacks: 1, ..Default::default() };
        assert_eq!(s.pair_hit_rate(), Some(0.75));
        assert_eq!(StrategyStats::default().pair_hit_rate(), None);
    }
}
