//! Feature-gated per-strategy operation counters.
//!
//! With the `stats` feature enabled, [`HarrisMcas`](crate::HarrisMcas)
//! (and any other strategy that opts in) counts operations, DCAS
//! failures, helping events, and descriptor pool traffic, exposed as a
//! [`StrategyStats`] snapshot. With the feature disabled every counter
//! method is an empty `#[inline]` body and the counter block is a
//! zero-sized struct, so the hot path pays nothing.
//!
//! The counters use `Relaxed` increments: they are monotonic telemetry,
//! not synchronization, and a torn *view* across fields is acceptable
//! (a snapshot taken while threads run is approximate by nature).

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time snapshot of a strategy's counters.
///
/// All fields are zero when the `stats` feature is disabled, so callers
/// (benches, diagnostics) can be written unconditionally.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StrategyStats {
    /// Public operations started (`load` + `store` + `cas` + `dcas` +
    /// `dcas_strong`).
    pub ops: u64,
    /// `dcas`/`dcas_strong` invocations.
    pub dcas_ops: u64,
    /// `dcas`/`dcas_strong` invocations that returned `false`.
    pub dcas_failures: u64,
    /// Times this strategy helped another thread's in-flight operation
    /// (RDCSS completion or CASN help on a foreign descriptor).
    pub helps: u64,
    /// Descriptors taken from the pool freelist (recycled).
    pub descriptor_reuses: u64,
    /// Descriptors created with a fresh heap allocation (pool miss, or
    /// pooling disabled).
    pub descriptor_allocs: u64,
    /// Multi-word `casn` invocations (the batch-operation primitive).
    pub casn_ops: u64,
    /// `casn` invocations that returned `false`.
    pub casn_failures: u64,
    /// Elimination-array exchanges that paired a push with a pop
    /// (see [`elimination`](crate::elimination)).
    pub elim_hits: u64,
    /// Elimination-array attempts that timed out unpaired.
    pub elim_misses: u64,
    /// Descriptors quarantined because their owning thread was killed
    /// mid-operation (see [`orphan_count`](crate::orphan_count)).
    /// Process-global — like the thread-local descriptor pools it
    /// audits — and reported regardless of the `stats` feature, since
    /// it tracks a correctness-relevant event, not hot-path telemetry.
    pub descriptor_orphans: u64,
}

impl StrategyStats {
    /// Fraction of descriptor acquisitions served by the freelist, in
    /// `[0, 1]`; `1.0` means the steady state allocates nothing. `None`
    /// when no descriptor was ever acquired.
    pub fn reuse_rate(&self) -> Option<f64> {
        let total = self.descriptor_reuses + self.descriptor_allocs;
        (total != 0).then(|| self.descriptor_reuses as f64 / total as f64)
    }

    /// Fraction of failed DCAS invocations, in `[0, 1]`; `None` when no
    /// DCAS ran.
    pub fn failure_rate(&self) -> Option<f64> {
        (self.dcas_ops != 0).then(|| self.dcas_failures as f64 / self.dcas_ops as f64)
    }

    /// Fraction of elimination attempts that paired with a partner, in
    /// `[0, 1]`; `None` when the elimination array was never consulted.
    pub fn elim_hit_rate(&self) -> Option<f64> {
        let total = self.elim_hits + self.elim_misses;
        (total != 0).then(|| self.elim_hits as f64 / total as f64)
    }

    /// Name/value pairs for every counter, in declaration order — the
    /// stable iteration surface for exporters (e.g. `crates/obs`'
    /// metrics registry), so adding a counter here automatically reaches
    /// every report format.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("ops", self.ops),
            ("dcas_ops", self.dcas_ops),
            ("dcas_failures", self.dcas_failures),
            ("helps", self.helps),
            ("descriptor_reuses", self.descriptor_reuses),
            ("descriptor_allocs", self.descriptor_allocs),
            ("casn_ops", self.casn_ops),
            ("casn_failures", self.casn_failures),
            ("elim_hits", self.elim_hits),
            ("elim_misses", self.elim_misses),
            ("descriptor_orphans", self.descriptor_orphans),
        ]
    }

    /// Field-wise difference (`self - earlier`), for measuring a phase.
    pub fn since(&self, earlier: &StrategyStats) -> StrategyStats {
        StrategyStats {
            ops: self.ops - earlier.ops,
            dcas_ops: self.dcas_ops - earlier.dcas_ops,
            dcas_failures: self.dcas_failures - earlier.dcas_failures,
            helps: self.helps - earlier.helps,
            descriptor_reuses: self.descriptor_reuses - earlier.descriptor_reuses,
            descriptor_allocs: self.descriptor_allocs - earlier.descriptor_allocs,
            casn_ops: self.casn_ops - earlier.casn_ops,
            casn_failures: self.casn_failures - earlier.casn_failures,
            elim_hits: self.elim_hits - earlier.elim_hits,
            elim_misses: self.elim_misses - earlier.elim_misses,
            descriptor_orphans: self.descriptor_orphans - earlier.descriptor_orphans,
        }
    }
}

/// Internal counter block embedded in a strategy. Zero-sized (and all
/// methods no-ops) unless the `stats` feature is on.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    #[cfg(feature = "stats")]
    ops: AtomicU64,
    #[cfg(feature = "stats")]
    dcas_ops: AtomicU64,
    #[cfg(feature = "stats")]
    dcas_failures: AtomicU64,
    #[cfg(feature = "stats")]
    helps: AtomicU64,
    #[cfg(feature = "stats")]
    descriptor_reuses: AtomicU64,
    #[cfg(feature = "stats")]
    descriptor_allocs: AtomicU64,
    #[cfg(feature = "stats")]
    casn_ops: AtomicU64,
    #[cfg(feature = "stats")]
    casn_failures: AtomicU64,
    #[cfg(feature = "stats")]
    elim_hits: AtomicU64,
    #[cfg(feature = "stats")]
    elim_misses: AtomicU64,
}

macro_rules! counter_inc {
    ($(#[$doc:meta] $inc:ident => $field:ident;)*) => {$(
        #[$doc]
        #[inline]
        pub(crate) fn $inc(&self) {
            #[cfg(feature = "stats")]
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl Counters {
    counter_inc! {
        /// One public operation started.
        inc_op => ops;
        /// One `dcas`/`dcas_strong` invocation.
        inc_dcas => dcas_ops;
        /// One failed `dcas`/`dcas_strong`.
        inc_dcas_failure => dcas_failures;
        /// Helped a foreign in-flight operation.
        inc_help => helps;
        /// Descriptor served from the pool freelist.
        inc_descriptor_reuse => descriptor_reuses;
        /// Descriptor freshly heap-allocated.
        inc_descriptor_alloc => descriptor_allocs;
        /// One multi-word `casn` invocation.
        inc_casn => casn_ops;
        /// One failed `casn`.
        inc_casn_failure => casn_failures;
        /// One elimination pairing (push and pop exchanged directly).
        inc_elim_hit => elim_hits;
        /// One elimination attempt that timed out unpaired.
        inc_elim_miss => elim_misses;
    }

    /// Snapshot (all-zero without the `stats` feature).
    pub(crate) fn snapshot(&self) -> StrategyStats {
        #[cfg(feature = "stats")]
        {
            StrategyStats {
                ops: self.ops.load(Ordering::Relaxed),
                dcas_ops: self.dcas_ops.load(Ordering::Relaxed),
                dcas_failures: self.dcas_failures.load(Ordering::Relaxed),
                helps: self.helps.load(Ordering::Relaxed),
                descriptor_reuses: self.descriptor_reuses.load(Ordering::Relaxed),
                descriptor_allocs: self.descriptor_allocs.load(Ordering::Relaxed),
                casn_ops: self.casn_ops.load(Ordering::Relaxed),
                casn_failures: self.casn_failures.load(Ordering::Relaxed),
                elim_hits: self.elim_hits.load(Ordering::Relaxed),
                elim_misses: self.elim_misses.load(Ordering::Relaxed),
                // Global, not per-counter-block: filled in by the
                // strategies that own pooled descriptors (`HarrisMcas`).
                descriptor_orphans: 0,
            }
        }
        #[cfg(not(feature = "stats"))]
        StrategyStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let c = Counters::default();
        c.inc_op();
        c.inc_dcas();
        c.inc_dcas_failure();
        c.inc_help();
        c.inc_descriptor_reuse();
        c.inc_descriptor_reuse();
        c.inc_descriptor_alloc();
        let s = c.snapshot();
        #[cfg(feature = "stats")]
        {
            assert_eq!(s.ops, 1);
            assert_eq!(s.dcas_ops, 1);
            assert_eq!(s.dcas_failures, 1);
            assert_eq!(s.helps, 1);
            assert_eq!(s.descriptor_reuses, 2);
            assert_eq!(s.descriptor_allocs, 1);
            assert_eq!(s.reuse_rate(), Some(2.0 / 3.0));
            assert_eq!(s.failure_rate(), Some(1.0));
            let d = s.since(&StrategyStats { descriptor_reuses: 1, ..Default::default() });
            assert_eq!(d.descriptor_reuses, 1);
        }
        #[cfg(not(feature = "stats"))]
        {
            assert_eq!(s, StrategyStats::default());
            assert_eq!(s.reuse_rate(), None);
        }
    }
}
