//! Software emulations of the **double compare-and-swap** (DCAS) primitive.
//!
//! The SPAA 2000 paper *DCAS-Based Concurrent Deques* (Agesen, Detlefs,
//! Flood, Garthwaite, Martin, Moir, Shavit, Steele) assumes a machine
//! operation `DCAS(a1, a2, o1, o2, n1, n2)` that atomically compares two
//! independent memory words against expected values and, if both match,
//! writes two new values. The hardware the paper anticipated never shipped,
//! so this crate provides the substitute the paper itself sanctions
//! (Section 2.1): DCAS "through hardware support, through a non-blocking
//! software emulation, or via a blocking software emulation".
//!
//! Four interchangeable strategies implement the [`DcasStrategy`] trait:
//!
//! * [`GlobalLock`] — the simplest blocking emulation: one process-wide
//!   mutex serializes every DCAS (cf. Agesen & Cartwright's
//!   platform-independent DCAS patent, reference \[2\] of the paper).
//! * [`GlobalSeqLock`] — a sequence-lock emulation: writers serialize on a
//!   global sequence word, readers are optimistic and never block writers.
//! * [`StripedLock`] — address-hashed lock striping with ordered
//!   acquisition, so disjoint DCAS pairs proceed in parallel.
//! * [`HarrisMcas`] — a genuinely **lock-free** emulation built from
//!   single-word CAS using RDCSS + a two-entry CASN (after Harris, Fraser
//!   & Pratt, *A Practical Multi-Word Compare-and-Swap Operation*, DISC
//!   2002), with descriptor reclamation via `crossbeam-epoch`. Using this
//!   strategy, the deques in the companion crates are non-blocking
//!   end-to-end.
//!
//! Two forms of DCAS are provided, mirroring Figure 1 of the paper:
//! [`DcasStrategy::dcas`] returns only a success flag, while
//! [`DcasStrategy::dcas_strong`] additionally stores an **atomic view** of
//! the two locations into the caller's expected-value slots when the
//! comparison fails. The paper's array-based deque uses the strong form
//! only for one optimization (lines 17–18 of its Figure 2); the
//! [`DcasStrategy::HAS_CHEAP_STRONG`] constant lets clients gate that
//! optimization on whether the strong form is cheap for the chosen
//! strategy.
//!
//! # The reserved-bits contract
//!
//! Every value stored in a [`DcasWord`] must have its **low two bits
//! clear** (`value % 4 == 0`). The lock-free strategy tags in-flight
//! descriptor pointers in those bits; the blocking strategies `debug_assert`
//! the invariant so code written against one strategy is portable to all of
//! them. See [`PAYLOAD_ALIGN`].
//!
//! # Example
//!
//! ```
//! use dcas::{DcasWord, DcasStrategy, HarrisMcas};
//!
//! let s = HarrisMcas::new();
//! let a = DcasWord::new(0);
//! let b = DcasWord::new(4);
//! // Swap both words atomically.
//! assert!(s.dcas(&a, &b, 0, 4, 8, 12));
//! assert_eq!(s.load(&a), 8);
//! assert_eq!(s.load(&b), 12);
//! // A stale expected value fails without modifying anything.
//! assert!(!s.dcas(&a, &b, 0, 4, 16, 20));
//! assert_eq!(s.load(&a), 8);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
mod backoff;
mod delayed;
pub mod elimination;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod global_lock;
pub mod hw;
mod mcas;
mod pool;
pub mod reclaim;
mod seqlock;
mod stats;
mod striped;
mod strategy;
mod word;
mod wrappers;

/// Expands to a [`fault::hit`] call with the `fault-inject` feature on,
/// and to nothing at all otherwise — the release hot path carries no
/// trace of the hooks. The second argument asserts whether the
/// in-flight operation is still *effect-free* at this point (no state
/// published, no value ownership transferred); panic kills are only
/// delivered at effect-free hits.
macro_rules! fault_point {
    ($point:ident, $effect_free:expr) => {
        #[cfg(feature = "fault-inject")]
        $crate::fault::hit($crate::fault::FaultPoint::$point, $effect_free);
    };
}
pub(crate) use fault_point;

pub use alloc::{NodeAlloc, NodePool};
pub use backoff::Backoff;
pub use delayed::Delayed;
pub use elimination::{EliminationArray, EndConfig};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultInjecting, FaultLog, FaultPlan, FaultPoint, Kill, KillKind, StallGate};
pub use global_lock::GlobalLock;
pub use hw::DcasPair;
pub use mcas::{HarrisMcas, HarrisMcasBoxed, HarrisMcasHazard, McasConfig};
pub use pool::{live_descriptors, orphan_count};
pub use reclaim::hazard::HazardReclaimer;
pub use reclaim::{EpochReclaimer, ReclaimGuard, Reclaimer};
#[cfg(feature = "fault-inject")]
pub use pool::{quarantine_inflight, quarantine_len};
pub use seqlock::GlobalSeqLock;
pub use stats::StrategyStats;
pub use striped::StripedLock;
pub use strategy::{CasnEntry, DcasStrategy, MAX_CASN_WORDS};
pub use word::DcasWord;
pub use wrappers::{Counting, DcasStats, Yielding};

/// Number of low bits of every [`DcasWord`] payload reserved by the
/// substrate (used by [`HarrisMcas`] to tag descriptor pointers).
pub const RESERVED_BITS: u32 = 2;

/// Required alignment of payload values: every stored/compared value must
/// be a multiple of this (equivalently, have [`RESERVED_BITS`] low zero
/// bits).
pub const PAYLOAD_ALIGN: u64 = 1 << RESERVED_BITS;

/// Returns `true` if `v` satisfies the payload contract (low two bits
/// clear).
#[inline]
pub const fn is_valid_payload(v: u64) -> bool {
    v & (PAYLOAD_ALIGN - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_validity() {
        assert!(is_valid_payload(0));
        assert!(is_valid_payload(4));
        assert!(is_valid_payload(1 << 63));
        assert!(!is_valid_payload(1));
        assert!(!is_valid_payload(2));
        assert!(!is_valid_payload(3));
        assert!(!is_valid_payload(7));
    }
}
