//! Type-stable page-pool node allocator: allocation-free node churn.
//!
//! PR 1 took the global heap off the MCAS *descriptor* path; this module
//! does the same for the linked deques' *nodes*, modeled on the
//! `free_access` per-thread page-pool allocator. Every pool hands out
//! fixed-size slots carved from 4096-byte, 4096-aligned **pages**:
//!
//! * **Page-local free lists.** A freed slot goes back onto *its own
//!   page's* free list (an intrusive stack threaded through the slots'
//!   first words), and each thread allocates from one page at a time —
//!   fresh pages are carved by a bump cursor, recycled pages are
//!   consumed until dry before moving on. Keeping recycling
//!   page-granular is what preserves address locality under churn:
//!   nodes allocated together stay together, the way `malloc`'s
//!   consolidation re-carves freed chunks sequentially. (The first cut
//!   of this module used one flat free stack per thread; it scrambled
//!   slot order permanently, and on DRAM-resident working sets the
//!   pooled arm *lost* to `malloc` by 40% — see E17's ring row.)
//! * **Cross-thread frees.** Deque nodes are allocated by the pusher but
//!   retired on the popper's thread. A free whose slot belongs to a page
//!   owned by another thread is pushed onto that page's MPSC **remote
//!   return stack**, and the first push onto an empty stack enqueues the
//!   page on the pool's **pending stack** (flag-guarded so a page holds
//!   at most one ticket). A refill pops the pending stack and drains
//!   exactly the notified pages — O(pages with remote frees), not
//!   O(pages owned), which matters once a long-lived thread owns
//!   thousands of pages.
//! * **Page registry + orphan adoption.** Every page is pushed onto its
//!   pool's lock-free registry at birth and lives forever (pages are
//!   never returned to the OS — that immortality is what makes the
//!   memory *type-stable*). When a thread exits, its TLS destructor
//!   parks its page-local free slots (and the unbroken carve window) on
//!   their pages' remote stacks and pushes the pages onto an orphan
//!   stack; any thread that misses a refill adopts an orphan before
//!   allocating a fresh page.
//! * **Census gauges.** `pages_allocated` (monotonic — pages are
//!   immortal, so the count *is* the high-water mark), striped
//!   `nodes_outstanding` alloc/free counters, and a `remote_frees`
//!   counter, per pool and aggregated over all pools for
//!   [`StrategyStats`](crate::StrategyStats) export.
//!
//! # Quarantine: why recycling is sound under hazard validation
//!
//! The deques free nodes exclusively through
//! [`ReclaimGuard::retire`](crate::ReclaimGuard::retire), so a slot
//! re-enters circulation only after the backend's grace period (epoch)
//! or a hazard scan proves no protected reference remains — exactly the
//! point at which `Box::from_raw` would have been legal. Recycling
//! therefore introduces no lifetime race the `Box` arm did not already
//! have. What it *does* introduce is benign ABA reads: a hazard
//! validator may hold a stale pointer into a slot that has since been
//! recycled and republished, and its announce-and-validate probe reads
//! the slot's link/value words before discovering the mismatch. Two
//! invariants keep those reads defined behavior:
//!
//! 1. pages are never unmapped, so the stale pointer always targets
//!    live memory of the same node type (type stability), and
//! 2. every word a validator can touch is only ever accessed
//!    atomically — including this module's intrusive remote-stack
//!    links, which are written through `AtomicUsize` so a store racing
//!    a stale validator's load is a race by contract, not UB.
//!
//! Callers must uphold (2) on their side: reinitialize recycled slots
//! through the node's own atomic fields (or fields no validator reads),
//! never via a non-atomic `ptr::write` over the whole node.

use std::alloc::Layout;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Size and alignment of every pool page. The power-of-two alignment is
/// load-bearing: [`NodePool::dealloc`] recovers a slot's [`PageHeader`]
/// by masking the slot address with `!(PAGE_SIZE - 1)`.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the start of each page for the [`PageHeader`];
/// slots start at this offset. 128 keeps the first slot cache-line
/// aligned for any node alignment the deques use (all ≤ 128 and all
/// powers of two, so they divide 128).
const HEADER_RESERVED: usize = 128;

/// Maximum number of distinct pools a process can create. Four deque
/// node pools exist in product code; the headroom is for tests.
pub const MAX_POOLS: usize = 16;

const UNASSIGNED: usize = usize::MAX;
const CLAIMING: usize = usize::MAX - 1;

/// Owner id marking a page whose owning thread has exited; the page is
/// (or is about to be) on the orphan stack awaiting adoption.
const ORPHAN: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Striped counters (same layout argument as the reclaim gauges: churn-
// heavy threads must not serialize on one counter cache line).
// ---------------------------------------------------------------------

const STRIPES: usize = 8;

#[repr(align(128))]
struct Stripe(AtomicU64);

impl Stripe {
    const fn new() -> Self {
        Stripe(AtomicU64::new(0))
    }
}

struct Striped {
    stripes: [Stripe; STRIPES],
}

impl Striped {
    const fn new() -> Self {
        Striped {
            stripes: [
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
                Stripe::new(),
            ],
        }
    }

    #[inline]
    fn inc(&self) {
        self.stripes[stripe_idx()].0.fetch_add(1, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[inline]
fn stripe_idx() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.try_with(|i| *i).unwrap_or(0) & (STRIPES - 1)
}

// ---------------------------------------------------------------------
// Pages.
// ---------------------------------------------------------------------

/// Metadata at the head of every page. Reached from any slot pointer by
/// address masking, so frees need no context beyond the pointer itself —
/// which is what lets a pool free run inside a context-free
/// `unsafe fn(*mut u8)` reclaimer dtor.
struct PageHeader {
    /// Back-pointer to the owning pool (always a `&'static`).
    pool: *const NodePool,
    /// Monotonic id of the owning thread, or [`ORPHAN`].
    owner: AtomicU64,
    /// Head of the MPSC remote-free Treiber stack (slot addresses, next
    /// links threaded through the slots' first words).
    remote_head: AtomicUsize,
    /// Head of the page-local free stack (same intrusive encoding).
    /// Owner-only, so plain `Relaxed` loads and stores suffice; it is
    /// still an atomic because ownership hands over on adoption.
    local_head: AtomicUsize,
    /// Whether the page currently sits in its owner's `partial` list.
    /// Owner-only (the owner's alloc and local-free paths are the only
    /// writers, and they run on one thread).
    in_partial: bool,
    /// Whether the page currently holds a ticket in (or popped from)
    /// the pool's pending stack; see [`remote_push`] for the protocol.
    pending: AtomicBool,
    /// Intrusive link in the pool's pending stack. Only the ticket
    /// holder may relink it, so single-ticket keeps it unaliased.
    pending_next: AtomicUsize,
    /// Intrusive link in the pool's all-pages registry (set once).
    registry_next: AtomicUsize,
    /// Intrusive link in the pool's orphan stack.
    orphan_next: AtomicUsize,
}

// ---------------------------------------------------------------------
// Thread-local caches.
// ---------------------------------------------------------------------

struct LocalCache {
    /// Pool this slot of the cache array belongs to (null until used).
    pool: *const NodePool,
    /// Owned pages with (possibly) non-empty local free lists; alloc
    /// consumes the most recently pushed page until it runs dry.
    partial: Vec<*mut PageHeader>,
    /// Bump cursor into the current fresh page (`carve == carve_end`
    /// when exhausted); fresh slots are handed out address-ascending.
    carve: *mut u8,
    carve_end: *mut u8,
    /// Every page this thread owns (orphaned wholesale on TLS death).
    owned: Vec<*mut PageHeader>,
}

impl LocalCache {
    const fn new() -> Self {
        LocalCache {
            pool: std::ptr::null(),
            partial: Vec::new(),
            carve: std::ptr::null_mut(),
            carve_end: std::ptr::null_mut(),
            owned: Vec::new(),
        }
    }
}

struct LocalCaches {
    thread_id: u64,
    caches: [LocalCache; MAX_POOLS],
}

impl LocalCaches {
    fn new() -> Self {
        /// Monotonic, never reused: a dead thread's id can never be
        /// confused with a live one during the owner check in `dealloc`.
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
        LocalCaches {
            thread_id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            caches: [const { LocalCache::new() }; MAX_POOLS],
        }
    }
}

impl Drop for LocalCaches {
    fn drop(&mut self) {
        for cache in &mut self.caches {
            if cache.pool.is_null() {
                continue;
            }
            let pool = unsafe { &*cache.pool };
            // Park the unbroken carve window on its page's remote stack
            // so the adopter finds it.
            while cache.carve < cache.carve_end {
                unsafe { remote_push(page_of(cache.carve), cache.carve) };
                cache.carve = unsafe { cache.carve.add(pool.stride) };
            }
            // Move each page's local free list to its remote stack
            // (local lists are owner-only and the owner is dying), then
            // orphan the pages themselves.
            for &page in &cache.owned {
                let mut cur = unsafe { (*page).local_head.load(Ordering::Relaxed) };
                unsafe { (*page).local_head.store(0, Ordering::Relaxed) };
                while cur != 0 {
                    let next = unsafe { (*(cur as *const AtomicUsize)).load(Ordering::Relaxed) };
                    unsafe { remote_push(page, cur as *mut u8) };
                    cur = next;
                }
                unsafe { (*page).in_partial = false };
                unsafe { (*page).owner.store(ORPHAN, Ordering::Release) };
                pool.push_orphan(page);
            }
        }
    }
}

thread_local! {
    static CACHES: RefCell<LocalCaches> = RefCell::new(LocalCaches::new());
}

#[inline]
fn page_of(slot: *mut u8) -> *mut PageHeader {
    ((slot as usize) & !(PAGE_SIZE - 1)) as *mut PageHeader
}

/// Pushes `slot` onto `page`'s remote-free MPSC stack and, if the page
/// does not already hold a pending ticket, enqueues it on the pool's
/// pending stack so the owner's next refill finds it without scanning.
///
/// The flag/ticket protocol (Vyukov-style): a pusher that flips
/// `pending` false→true pushes the one ticket; a refill that pops the
/// ticket for a page it owns clears the flag **before** draining, so a
/// racing pusher either gets its slot drained or sees the cleared flag
/// and issues a fresh ticket. A ticket popped for a page owned by
/// someone else (or mid-adoption) is re-pushed untouched — the flag
/// stays true, so the page never holds two tickets and the intrusive
/// `pending_next` link is never aliased.
///
/// # Safety
///
/// `slot` must be a quarantined slot of `page`: no thread may allocate
/// it concurrently, and any stale reader still probing it must do so
/// atomically (the type-stability contract).
unsafe fn remote_push(page: *mut PageHeader, slot: *mut u8) {
    // The intrusive next link lives in the slot's first word and is
    // written atomically: a stale hazard validator may concurrently
    // (and harmlessly) load this word as the node's first field.
    let link = unsafe { &*(slot as *const AtomicUsize) };
    let head = unsafe { &(*page).remote_head };
    let mut cur = head.load(Ordering::Relaxed);
    loop {
        link.store(cur, Ordering::Relaxed);
        match head.compare_exchange_weak(cur, slot as usize, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
    if !unsafe { &(*page).pending }.swap(true, Ordering::SeqCst) {
        unsafe { &*(*page).pool }.push_pending(page);
    }
}

/// Claims `page`'s remote-free stack as its local free list (one
/// pointer move — the intrusive encodings are identical).
///
/// # Safety
///
/// Caller must own `page` (be its `owner`, or hold it exclusively
/// before publication), so no other thread drains concurrently, and the
/// page's local list must be empty.
unsafe fn remote_splice(page: *mut PageHeader) -> bool {
    let batch = unsafe { (*page).remote_head.swap(0, Ordering::SeqCst) };
    if batch == 0 {
        return false;
    }
    debug_assert_eq!(unsafe { (*page).local_head.load(Ordering::Relaxed) }, 0);
    unsafe { (*page).local_head.store(batch, Ordering::Relaxed) };
    true
}

// ---------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------

/// Registry of every pool that has allocated at least once, indexed by
/// pool id — the aggregation surface for the global census.
static POOLS: [AtomicPtr<NodePool>; MAX_POOLS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_POOLS];

/// A fixed-slot-size, type-stable page-pool allocator.
///
/// One static instance per node type; see the module docs for the
/// design. `alloc`/`dealloc` are the whole hot-path API — everything
/// else is census.
pub struct NodePool {
    /// Short name for census/debug output.
    name: &'static str,
    /// Slot stride: node size rounded up to node alignment.
    stride: usize,
    /// Index into the TLS cache array and [`POOLS`]; assigned on first
    /// allocation.
    id: AtomicUsize,
    /// All-pages registry head (push-only Treiber stack).
    registry: AtomicUsize,
    /// Pages with un-drained remote frees (ticketed; see [`remote_push`]).
    pending: AtomicUsize,
    /// Orphaned-pages stack head.
    orphans: AtomicUsize,
    /// Pages ever allocated. Monotonic: pages are immortal, so this is
    /// also the pages high-water mark.
    pages: AtomicU64,
    allocs: Striped,
    frees: Striped,
    remote: Striped,
}

// SAFETY: the raw page pointers inside are only ever dereferenced
// through the atomics in their headers or under the ownership protocol
// described in the module docs.
unsafe impl Sync for NodePool {}

impl NodePool {
    /// Creates a pool for slots of `size` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Const-panics unless `8 ≤ align ≤ 128`, both are powers of two
    /// constraints the deque node types all satisfy, and a page fits at
    /// least one slot.
    pub const fn new(name: &'static str, size: usize, align: usize) -> Self {
        assert!(align.is_power_of_two() && align >= 8 && align <= HEADER_RESERVED);
        // Round the stride up so consecutive slots stay aligned; the
        // first word of a slot doubles as the remote-stack link, hence
        // the ≥ 8 floor.
        let stride = size.div_ceil(align) * align;
        assert!(stride >= 8 && stride <= PAGE_SIZE - HEADER_RESERVED);
        NodePool {
            name,
            stride,
            id: AtomicUsize::new(UNASSIGNED),
            registry: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            orphans: AtomicUsize::new(0),
            pages: AtomicU64::new(0),
            allocs: Striped::new(),
            frees: Striped::new(),
            remote: Striped::new(),
        }
    }

    /// Pool name (census/debug).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Slots carved from each page after the header.
    pub fn nodes_per_page(&self) -> u64 {
        ((PAGE_SIZE - HEADER_RESERVED) / self.stride) as u64
    }

    /// Slot stride in bytes: the node size rounded up to its alignment.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Pages this pool has ever allocated. Pages are immortal, so this
    /// is simultaneously the current count and the high-water mark.
    pub fn pages_allocated(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Slots currently allocated out of this pool (racy snapshot).
    pub fn nodes_outstanding(&self) -> u64 {
        self.allocs.sum().saturating_sub(self.frees.sum())
    }

    /// Frees that landed on a remote page's return stack instead of the
    /// freeing thread's local list.
    pub fn remote_frees(&self) -> u64 {
        self.remote.sum()
    }

    /// Allocates one slot.
    ///
    /// The returned memory is **not** fresh: it is zeroed on the page's
    /// first grab and thereafter retains whatever the previous occupant
    /// left (minus the first word, which the remote-return path may
    /// have overwritten). Callers must reinitialize every field, and —
    /// per the module-level quarantine contract — must do so through
    /// the node's atomic fields for any word a stale validator could
    /// probe.
    pub fn alloc(&'static self) -> *mut u8 {
        self.allocs.inc();
        CACHES
            .try_with(|c| match c.try_borrow_mut() {
                Ok(mut caches) => Some(self.alloc_cached(&mut caches)),
                Err(_) => None,
            })
            .unwrap_or(None)
            // TLS gone (thread teardown) or re-entered: take the
            // orphan-page slow path, which needs no thread identity.
            .unwrap_or_else(|| self.alloc_orphan_slow())
    }

    fn alloc_cached(&'static self, caches: &mut LocalCaches) -> *mut u8 {
        let thread_id = caches.thread_id;
        let cache = &mut caches.caches[self.id()];
        if cache.pool.is_null() {
            cache.pool = self;
        }
        debug_assert!(std::ptr::eq(cache.pool, self));
        // Fast path 1: recycled slots, one page at a time (most recently
        // refilled page first — its slots are the warmest).
        while let Some(&page) = cache.partial.last() {
            let slot = unsafe { (*page).local_head.load(Ordering::Relaxed) };
            if slot != 0 {
                let next = unsafe { (*(slot as *const AtomicUsize)).load(Ordering::Relaxed) };
                unsafe { (*page).local_head.store(next, Ordering::Relaxed) };
                return slot as *mut u8;
            }
            unsafe { (*page).in_partial = false };
            cache.partial.pop();
        }
        // Fast path 2: bump-carve the current fresh page.
        if cache.carve < cache.carve_end {
            let slot = cache.carve;
            cache.carve = unsafe { cache.carve.add(self.stride) };
            return slot;
        }
        // Refill 1: drain the pages whose remote stacks were ticketed
        // non-empty — exactly those, never a scan of everything owned.
        let mut ticket = self.pending.swap(0, Ordering::SeqCst);
        while ticket != 0 {
            let page = ticket as *mut PageHeader;
            ticket = unsafe { (*page).pending_next.load(Ordering::Relaxed) };
            if unsafe { (*page).owner.load(Ordering::Relaxed) } == thread_id {
                // Clear before draining: a pusher racing the drain
                // either lands in the batch or re-tickets the page.
                unsafe { (*page).pending.store(false, Ordering::SeqCst) };
                if unsafe { remote_splice(page) } && !unsafe { (*page).in_partial } {
                    unsafe { (*page).in_partial = true };
                    cache.partial.push(page);
                }
            } else {
                // Someone else's notification (another owner, or a page
                // awaiting adoption): pass the ticket along untouched.
                self.push_pending(page);
            }
        }
        if let Some(&page) = cache.partial.last() {
            let slot = unsafe { (*page).local_head.load(Ordering::Relaxed) };
            debug_assert_ne!(slot, 0, "ticketed page spliced an empty batch");
            let next = unsafe { (*(slot as *const AtomicUsize)).load(Ordering::Relaxed) };
            unsafe { (*page).local_head.store(next, Ordering::Relaxed) };
            return slot as *mut u8;
        }
        // Refill 2: adopt orphaned pages (their remote stacks hold the
        // free slots their dead owner parked there). The orphan's
        // pending ticket, if any, keeps circulating until it reaches
        // us — adoption drains without touching the flag.
        while let Some(page) = self.pop_orphan() {
            unsafe { (*page).owner.store(thread_id, Ordering::Release) };
            cache.owned.push(page);
            if unsafe { remote_splice(page) } {
                unsafe { (*page).in_partial = true };
                cache.partial.push(page);
                let slot = unsafe { (*page).local_head.load(Ordering::Relaxed) };
                let next = unsafe { (*(slot as *const AtomicUsize)).load(Ordering::Relaxed) };
                unsafe { (*page).local_head.store(next, Ordering::Relaxed) };
                return slot as *mut u8;
            }
        }
        // Refill 3: a fresh page, carved by the bump cursor.
        let page = self.new_page(thread_id);
        cache.owned.push(page);
        let base = (page as usize + HEADER_RESERVED) as *mut u8;
        cache.carve = unsafe { base.add(self.stride) };
        cache.carve_end = unsafe { base.add(self.nodes_per_page() as usize * self.stride) };
        base
    }

    /// Allocation without thread identity: carve a fresh page, keep one
    /// slot, park the rest on the page's own remote stack, and orphan
    /// the page so a live thread adopts it later. Only reached during
    /// thread teardown, so the page-per-call cost cannot recur hotly.
    fn alloc_orphan_slow(&'static self) -> *mut u8 {
        let page = self.new_page(ORPHAN);
        let mut keep: *mut u8 = std::ptr::null_mut();
        self.for_each_slot(page, |slot| {
            if keep.is_null() {
                keep = slot;
            } else {
                unsafe { remote_push(page, slot) };
            }
        });
        self.push_orphan(page);
        keep
    }

    /// Frees a slot previously returned by [`Self::alloc`] on any pool.
    ///
    /// An associated function, not a method: the owning pool is
    /// recovered from the pointer itself (page-mask → header), so this
    /// fits the `Reclaimer` dtor shape `unsafe fn(*mut u8)`.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Self::alloc`], must not be freed
    /// twice, and must be quarantined: no thread may still acquire new
    /// references to it (stale atomic probes are fine — that is the
    /// type-stability contract).
    pub unsafe fn dealloc(ptr: *mut u8) {
        let page = page_of(ptr);
        let pool = unsafe { &*(*page).pool };
        pool.frees.inc();
        let owner = unsafe { (*page).owner.load(Ordering::Relaxed) };
        let local = CACHES
            .try_with(|c| match c.try_borrow_mut() {
                Ok(mut caches) if owner == caches.thread_id => {
                    // Owner check is stable: only this thread (or its
                    // TLS destructor, which is not concurrent with us)
                    // can change the owner of a page it owns. Push the
                    // slot back onto its own page's free list so
                    // recycling stays page-clustered.
                    let cache = &mut caches.caches[pool.id()];
                    let head = unsafe { (*page).local_head.load(Ordering::Relaxed) };
                    unsafe { (*(ptr as *const AtomicUsize)).store(head, Ordering::Relaxed) };
                    unsafe { (*page).local_head.store(ptr as usize, Ordering::Relaxed) };
                    if !unsafe { (*page).in_partial } {
                        unsafe { (*page).in_partial = true };
                        cache.partial.push(page);
                    }
                    true
                }
                _ => false,
            })
            .unwrap_or(false);
        if !local {
            unsafe { remote_push(page, ptr) };
            pool.remote.inc();
        }
    }

    /// This pool's id, assigning (and registering the pool) on first use.
    fn id(&'static self) -> usize {
        let id = self.id.load(Ordering::Acquire);
        if id < MAX_POOLS {
            return id;
        }
        self.assign_id()
    }

    #[cold]
    fn assign_id(&'static self) -> usize {
        static NEXT_POOL: AtomicUsize = AtomicUsize::new(0);
        if self
            .id
            .compare_exchange(UNASSIGNED, CLAIMING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let id = NEXT_POOL.fetch_add(1, Ordering::Relaxed);
            assert!(id < MAX_POOLS, "more than {MAX_POOLS} node pools created");
            POOLS[id].store(self as *const _ as *mut NodePool, Ordering::Release);
            self.id.store(id, Ordering::Release);
            return id;
        }
        // Another thread is assigning; wait for the real id.
        loop {
            let id = self.id.load(Ordering::Acquire);
            if id < MAX_POOLS {
                return id;
            }
            std::hint::spin_loop();
        }
    }

    fn new_page(&'static self, owner: u64) -> *mut PageHeader {
        // PAGE_SIZE alignment so slot pointers mask back to the header.
        let layout = Layout::from_size_align(PAGE_SIZE, PAGE_SIZE).expect("static page layout");
        // Zeroed: every slot word must be a valid atomic value from the
        // moment the page can be probed (type stability).
        let mem = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!mem.is_null(), "page-pool page allocation failed");
        let page = mem.cast::<PageHeader>();
        unsafe {
            page.write(PageHeader {
                pool: self,
                owner: AtomicU64::new(owner),
                remote_head: AtomicUsize::new(0),
                local_head: AtomicUsize::new(0),
                in_partial: false,
                pending: AtomicBool::new(false),
                pending_next: AtomicUsize::new(0),
                registry_next: AtomicUsize::new(0),
                orphan_next: AtomicUsize::new(0),
            });
        }
        // Publish into the all-pages registry (push-only).
        let mut head = self.registry.load(Ordering::Relaxed);
        loop {
            unsafe { (*page).registry_next.store(head, Ordering::Relaxed) };
            match self.registry.compare_exchange_weak(
                head,
                page as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        self.pages.fetch_add(1, Ordering::Relaxed);
        page
    }

    fn for_each_slot(&self, page: *mut PageHeader, mut f: impl FnMut(*mut u8)) {
        let base = page as usize + HEADER_RESERVED;
        for i in 0..self.nodes_per_page() as usize {
            f((base + i * self.stride) as *mut u8);
        }
    }

    /// Pushes a ticketed page onto the pending stack. Caller must hold
    /// the page's single ticket (it flipped `pending` false→true, or it
    /// popped the page off this stack and is passing the ticket along).
    fn push_pending(&self, page: *mut PageHeader) {
        let mut head = self.pending.load(Ordering::Relaxed);
        loop {
            unsafe { (*page).pending_next.store(head, Ordering::Relaxed) };
            match self.pending.compare_exchange_weak(
                head,
                page as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    fn push_orphan(&self, page: *mut PageHeader) {
        let mut head = self.orphans.load(Ordering::Relaxed);
        loop {
            unsafe { (*page).orphan_next.store(head, Ordering::Relaxed) };
            match self.orphans.compare_exchange_weak(
                head,
                page as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Pops one orphan. Swap-pop (take the whole stack, keep the head,
    /// reattach the tail with one CAS) rather than a head CAS: a page
    /// can be orphaned more than once in its life, so the classic
    /// Treiber pop would be ABA-prone here.
    fn pop_orphan(&self) -> Option<*mut PageHeader> {
        let head = self.orphans.swap(0, Ordering::Acquire);
        if head == 0 {
            return None;
        }
        let page = head as *mut PageHeader;
        let rest = unsafe { (*page).orphan_next.load(Ordering::Relaxed) };
        if rest != 0 {
            // Find the detached chain's tail, then splice the chain
            // back under whatever was pushed meanwhile.
            let mut tail = rest as *mut PageHeader;
            loop {
                let next = unsafe { (*tail).orphan_next.load(Ordering::Relaxed) };
                if next == 0 {
                    break;
                }
                tail = next as *mut PageHeader;
            }
            let mut cur = self.orphans.load(Ordering::Relaxed);
            loop {
                unsafe { (*tail).orphan_next.store(cur, Ordering::Relaxed) };
                match self.orphans.compare_exchange_weak(
                    cur,
                    rest,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        Some(page)
    }
}

// ---------------------------------------------------------------------
// Global census (aggregated over every registered pool).
// ---------------------------------------------------------------------

fn pools() -> impl Iterator<Item = &'static NodePool> {
    POOLS.iter().filter_map(|p| {
        let ptr = p.load(Ordering::Acquire);
        (!ptr.is_null()).then(|| unsafe { &*ptr })
    })
}

/// Pages allocated across every pool in the process (also the combined
/// high-water mark — pages are immortal).
pub fn pages_allocated() -> u64 {
    pools().map(NodePool::pages_allocated).sum()
}

/// Slots currently allocated across every pool (racy snapshot).
pub fn nodes_outstanding() -> u64 {
    pools().map(NodePool::nodes_outstanding).sum()
}

/// Cross-thread frees across every pool.
pub fn remote_frees() -> u64 {
    pools().map(NodePool::remote_frees).sum()
}

/// Per-pool census rows `(name, pages, outstanding, remote_frees)`,
/// for reports that want the breakdown behind the aggregate gauges.
pub fn census() -> Vec<(&'static str, u64, u64, u64)> {
    pools()
        .map(|p| {
            (
                p.name(),
                p.pages_allocated(),
                p.nodes_outstanding(),
                p.remote_frees(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// The per-deque handle.
// ---------------------------------------------------------------------

/// Per-deque-instance node-allocation mode: the pool (default) or the
/// seed-compatible `Box` arm kept for the stress matrix and for the
/// E17 pooled-vs-boxed comparison.
///
/// Copied into every pending-node/chain helper a deque creates, so both
/// arms can coexist in one binary; the `box-nodes` cargo feature on the
/// deque crate flips only the *default* a plain constructor picks.
#[derive(Clone, Copy)]
pub struct NodeAlloc {
    pool: &'static NodePool,
    pooled: bool,
}

impl std::fmt::Debug for NodeAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeAlloc")
            .field("pool", &self.pool.name)
            .field("pooled", &self.pooled)
            .finish()
    }
}

impl NodeAlloc {
    /// Handle that allocates from `pool`.
    pub const fn pooled(pool: &'static NodePool) -> Self {
        NodeAlloc { pool, pooled: true }
    }

    /// Handle that round-trips the global heap (seed-compat arm).
    pub const fn boxed(pool: &'static NodePool) -> Self {
        NodeAlloc {
            pool,
            pooled: false,
        }
    }

    /// Whether this handle uses the page pool.
    pub fn is_pooled(&self) -> bool {
        self.pooled
    }

    /// The pool behind this handle (meaningful even for the boxed arm,
    /// which reports census zeros through it).
    pub fn pool(&self) -> &'static NodePool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    // Each test gets its own static pool: census assertions stay exact
    // even though the deque pools churn concurrently in other tests.

    #[test]
    fn same_thread_reuse_is_page_bounded_and_balanced() {
        static P: NodePool = NodePool::new("t-reuse", 32, 16);
        let per_page = P.nodes_per_page();
        assert_eq!(per_page, (PAGE_SIZE as u64 - 128) / 32);

        let n = (2 * per_page + 3) as usize; // forces exactly 3 pages
        let first: Vec<*mut u8> = (0..n).map(|_| P.alloc()).collect();
        let distinct: HashSet<usize> = first.iter().map(|p| *p as usize).collect();
        assert_eq!(distinct.len(), n, "pool handed out a slot twice");
        assert_eq!(P.pages_allocated(), 3);
        assert_eq!(P.nodes_outstanding(), n as u64);

        for &p in &first {
            unsafe { NodePool::dealloc(p) };
        }
        assert_eq!(P.nodes_outstanding(), 0, "leak: alloc/free did not balance");

        // Churn many times the page capacity: every slot is recycled
        // from the free list, no new page is ever needed.
        for _ in 0..10 * per_page {
            let p = P.alloc();
            assert!(
                distinct.contains(&(p as usize)),
                "churn alloc left the original pages"
            );
            unsafe { NodePool::dealloc(p) };
        }
        assert_eq!(P.pages_allocated(), 3, "churn allocated fresh pages");
        assert_eq!(P.nodes_outstanding(), 0);
    }

    #[test]
    fn alignment_and_header_mask() {
        static P: NodePool = NodePool::new("t-align", 40, 16);
        let slots: Vec<*mut u8> = (0..5).map(|_| P.alloc()).collect();
        for &s in &slots {
            assert_eq!(s as usize % 16, 0, "slot violates node alignment");
            assert_ne!(s as usize % PAGE_SIZE, 0, "slot landed on the header");
            let page = page_of(s);
            assert!(std::ptr::eq(unsafe { (*page).pool }, &P));
        }
        for s in slots {
            unsafe { NodePool::dealloc(s) };
        }
    }

    #[test]
    fn cross_thread_free_lands_remote_and_is_drained() {
        static P: NodePool = NodePool::new("t-remote", 32, 16);
        let n = 64usize;
        let slots: Vec<*mut u8> = (0..n).map(|_| P.alloc()).collect();
        let addrs: HashSet<usize> = slots.iter().map(|p| *p as usize).collect();
        let pages_before = P.pages_allocated();

        // Free on another thread: every free must take the remote path
        // (the pages' owner is this thread, which stays alive).
        let sent: Vec<usize> = slots.iter().map(|p| *p as usize).collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                for a in sent {
                    unsafe { NodePool::dealloc(a as *mut u8) };
                }
            });
        });
        assert_eq!(P.remote_frees(), n as u64);
        assert_eq!(P.nodes_outstanding(), 0);

        // The owner's refill drains the remote stacks: allocating a
        // full page's worth again must recycle every remote-freed slot
        // without touching a fresh page.
        let per_page = P.nodes_per_page() as usize;
        let again: Vec<*mut u8> = (0..per_page).map(|_| P.alloc()).collect();
        let again_addrs: HashSet<usize> = again.iter().map(|p| *p as usize).collect();
        assert!(
            addrs.is_subset(&again_addrs),
            "remote-freed slots were not recycled"
        );
        assert_eq!(P.pages_allocated(), pages_before);
        for p in again {
            unsafe { NodePool::dealloc(p) };
        }
    }

    #[test]
    fn dead_threads_pages_are_adopted() {
        static P: NodePool = NodePool::new("t-orphan", 32, 16);
        // A worker allocates (forcing a page it owns), frees locally,
        // and exits — its TLS destructor orphans the page.
        let addr = std::thread::spawn(|| {
            let slots: Vec<*mut u8> = (0..10).map(|_| P.alloc()).collect();
            for &p in &slots {
                unsafe { NodePool::dealloc(p) };
            }
            slots[0] as usize
        })
        .join()
        .unwrap();
        let pages_before = P.pages_allocated();
        assert!(pages_before >= 1);
        assert_eq!(P.nodes_outstanding(), 0);

        // This thread's first refill must adopt the orphan rather than
        // allocate fresh, and the dead thread's slots come back.
        let per_page = P.nodes_per_page() as usize;
        let slots: Vec<*mut u8> = (0..per_page).map(|_| P.alloc()).collect();
        assert_eq!(
            P.pages_allocated(),
            pages_before,
            "orphan page was not adopted"
        );
        assert!(slots.iter().any(|&p| p as usize == addr));
        for p in slots {
            unsafe { NodePool::dealloc(p) };
        }
    }

    #[test]
    fn concurrent_churn_keeps_pages_bounded() {
        static P: NodePool = NodePool::new("t-churn", 32, 16);
        const THREADS: usize = 4;
        const HOLD: usize = 32;
        const ROUNDS: usize = 2_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut held: Vec<*mut u8> = Vec::new();
                    for _ in 0..ROUNDS {
                        for _ in 0..HOLD {
                            held.push(P.alloc());
                        }
                        for p in held.drain(..) {
                            unsafe { NodePool::dealloc(p) };
                        }
                    }
                });
            }
        });
        assert_eq!(P.nodes_outstanding(), 0);
        // Outstanding never exceeds THREADS × HOLD, so pages stay under
        // a static bound regardless of the 256k churn allocations:
        // one page of live slots per thread plus one private free page
        // per thread, with slack for cross-thread imbalance.
        let bound = 4 * THREADS as u64 + 2;
        assert!(
            P.pages_allocated() <= bound,
            "churn leaked pages: {} > {bound}",
            P.pages_allocated()
        );
    }

    #[test]
    fn node_alloc_handle_modes() {
        static P: NodePool = NodePool::new("t-handle", 32, 16);
        let pooled = NodeAlloc::pooled(&P);
        let boxed = NodeAlloc::boxed(&P);
        assert!(pooled.is_pooled() && !boxed.is_pooled());
        assert!(std::ptr::eq(pooled.pool(), boxed.pool()));
        assert!(census().iter().any(|&(name, ..)| name == "t-handle") || P.pages_allocated() == 0);
    }
}
