//! Adaptive contention backoff shared by the DCAS strategies and the
//! baseline deques.
//!
//! Retry loops in lock-free (and spin-lock) code waste cycles and — far
//! worse — memory bandwidth when every contender hammers the same cache
//! line. Sundell & Tsigas observe that naive retry storms are one of the
//! two dominant costs of software-emulated multi-word CAS (the other
//! being per-operation allocation; see `pool`). The fix is classical
//! exponential backoff: spin a doubling number of `spin_loop` hints,
//! and once the spin budget is exhausted, yield the OS scheduler so a
//! preempted lease-holder (or, for [`HarrisMcas`](crate::HarrisMcas),
//! the operation we just helped) can run.
//!
//! One [`Backoff`] value lives on the stack of one retry loop; it is
//! deliberately `!Sync` (plain `Cell`-free `&mut` use) and costs nothing
//! when the loop exits on the first attempt.

/// Exponential spin-then-yield backoff for retry loops.
///
/// Mirrors the shape of `crossbeam_utils::Backoff`: the first
/// [`SPIN_LIMIT`](Backoff::SPIN_LIMIT) steps spin `2^step` cpu-relax
/// hints; later steps yield to the OS scheduler. [`Backoff::snooze`]
/// never blocks, so using it inside a lock-free retry loop preserves
/// lock-freedom (it only bounds how *often* a contender re-attempts, not
/// whether it can).
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps that spin (step `k` spins `2^k` relax hints).
    pub const SPIN_LIMIT: u32 = 6;

    /// Steps after which the backoff stops growing (a `snooze` beyond
    /// this is a single yield).
    pub const YIELD_LIMIT: u32 = 10;

    /// A fresh backoff (first wait is a single relax hint).
    #[inline]
    pub const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the initial state (call after a successful attempt if
    /// the value is reused).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Busy-spins without ever yielding; for very short expected waits
    /// (e.g. a test-and-test-and-set lock holder in its critical
    /// section). Grows exponentially up to `2^SPIN_LIMIT` hints.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(Self::SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off once: spins while the budget lasts, then yields the OS
    /// scheduler. The method of choice for DCAS retry and helping loops.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// `true` once backoff has reached the yielding regime — callers
    /// that have an alternative to spinning (e.g. parking) can switch
    /// strategies here.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_to_completion() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_caps_at_spin_limit() {
        let mut b = Backoff::new();
        for _ in 0..64 {
            b.spin(); // must terminate quickly even after many calls
        }
        assert!(!b.is_completed()); // spin() never enters the yield regime
    }

    #[test]
    fn snooze_under_contention_makes_progress() {
        // Two threads increment a shared counter through a CAS loop with
        // backoff; the loop must complete (sanity check that snooze
        // never deadlocks or sleeps unboundedly).
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let mut b = Backoff::new();
                        loop {
                            let v = n.load(Ordering::Relaxed);
                            if n.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
                                break;
                            }
                            b.snooze();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 20_000);
    }
}
