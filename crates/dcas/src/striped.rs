//! Striped-lock DCAS emulation: disjoint pairs proceed in parallel.

use std::sync::atomic::Ordering;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::strategy::{validate_args, validate_casn};
use crate::{CasnEntry, DcasStrategy, DcasWord};

/// Floor for the stripe count: collision probability for a DCAS pair is
/// ~`2/stripes`, so even a single-core host gets a table big enough
/// that unrelated pairs rarely serialize.
const MIN_STRIPES: usize = 64;

/// Ceiling, to keep the padded table's footprint bounded (1024 stripes
/// × 128 B = 128 KiB).
const MAX_STRIPES: usize = 1024;

/// Stripe count for this host: `16 × available_parallelism`, rounded up
/// to a power of two (so the address hash reduces by shift/mask) and
/// clamped to `[MIN_STRIPES, MAX_STRIPES]`. Oversubscribing the core
/// count by 16× keeps the expected number of *threads* contending a
/// stripe well below one even when every core runs in the lock.
fn stripe_count() -> usize {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    (threads * 16).next_power_of_two().clamp(MIN_STRIPES, MAX_STRIPES)
}

/// Blocking DCAS emulation that hashes each word's address to one of a
/// table of stripe mutexes and acquires the (one or two) stripes
/// covering a DCAS in ascending index order.
///
/// Ordered acquisition makes the emulation deadlock-free; hashing distinct
/// addresses to distinct stripes lets DCAS operations on disjoint parts of
/// a structure (e.g. the two ends of a long deque) run concurrently, which
/// is exactly the concurrency the paper's algorithms are designed to
/// exploit. Loads and stores lock the single stripe of their word so that
/// they serialize against in-flight DCAS writes.
///
/// The table is sized from [`std::thread::available_parallelism`] at
/// construction (not a compile-time constant), and each stripe is
/// cache-line-padded: a `parking_lot` mutex is a single byte, so an
/// unpadded table would pack ~64 stripes into one cache line and every
/// "disjoint" acquisition would still ping-pong the same line — the
/// striping would buy concurrency at the lock level and give it back at
/// the coherence level.
pub struct StripedLock {
    stripes: Box<[CachePadded<Mutex<()>>]>,
    /// Right-shift that reduces the Fibonacci hash to a stripe index
    /// (`64 - log2(stripes.len())`).
    shift: u32,
}

impl Default for StripedLock {
    fn default() -> Self {
        let n = stripe_count();
        StripedLock {
            stripes: (0..n).map(|_| CachePadded::new(Mutex::new(()))).collect(),
            shift: 64 - n.trailing_zeros(),
        }
    }
}

impl StripedLock {
    /// Creates a fresh emulation instance.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn stripe_of(&self, w: &DcasWord) -> usize {
        // Fibonacci hashing of the word address; words are 8-byte aligned
        // so we discard the low 3 bits first. The multiply spreads the
        // address bits into the high word and the shift keeps exactly
        // log2(stripes) of them.
        let a = (w.addr() >> 3) as u64;
        (a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize & (self.stripes.len() - 1)
    }
}

impl DcasStrategy for StripedLock {
    type Reclaimer = crate::reclaim::EpochReclaimer;
    const IS_LOCK_FREE: bool = false;
    const HAS_CHEAP_STRONG: bool = true;
    const NAME: &'static str = "striped-lock";

    #[inline]
    fn load(&self, w: &DcasWord) -> u64 {
        let _g = self.stripes[self.stripe_of(w)].lock();
        w.raw_load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, w: &DcasWord, v: u64) {
        debug_assert!(crate::is_valid_payload(v));
        let _g = self.stripes[self.stripe_of(w)].lock();
        w.raw_store(v, Ordering::SeqCst);
    }

    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool {
        debug_assert!(crate::is_valid_payload(old) && crate::is_valid_payload(new));
        let _g = self.stripes[self.stripe_of(w)].lock();
        if w.raw_load(Ordering::SeqCst) == old {
            w.raw_store(new, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool {
        validate_args(a1, a2, &[o1, o2, n1, n2]);
        let (s1, s2) = (self.stripe_of(a1), self.stripe_of(a2));
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        let _g1 = self.stripes[lo].lock();
        let _g2 = (lo != hi).then(|| self.stripes[hi].lock());
        if a1.raw_load(Ordering::SeqCst) == o1 && a2.raw_load(Ordering::SeqCst) == o2 {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool {
        validate_args(a1, a2, &[*o1, *o2, n1, n2]);
        let (s1, s2) = (self.stripe_of(a1), self.stripe_of(a2));
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        let _g1 = self.stripes[lo].lock();
        let _g2 = (lo != hi).then(|| self.stripes[hi].lock());
        let v1 = a1.raw_load(Ordering::SeqCst);
        let v2 = a2.raw_load(Ordering::SeqCst);
        if v1 == *o1 && v2 == *o2 {
            a1.raw_store(n1, Ordering::SeqCst);
            a2.raw_store(n2, Ordering::SeqCst);
            true
        } else {
            *o1 = v1;
            *o2 = v2;
            false
        }
    }

    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool {
        validate_casn(entries);
        // Lock the deduplicated stripe set of all target words in
        // ascending index order (the same deadlock-freedom argument as
        // the two-word case, extended to n).
        let mut stripes: [usize; crate::MAX_CASN_WORDS] = [0; crate::MAX_CASN_WORDS];
        for (i, e) in entries.iter().enumerate() {
            stripes[i] = self.stripe_of(e.word);
        }
        let stripes = &mut stripes[..entries.len()];
        stripes.sort_unstable();
        let mut guards = Vec::with_capacity(stripes.len());
        let mut last = usize::MAX;
        for &s in stripes.iter() {
            if s != last {
                guards.push(self.stripes[s].lock());
                last = s;
            }
        }
        if entries.iter().any(|e| e.word.raw_load(Ordering::SeqCst) != e.old) {
            return false;
        }
        for e in entries.iter() {
            e.word.raw_store(e.new, Ordering::SeqCst);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_success_and_failure() {
        let s = StripedLock::new();
        let a = DcasWord::new(0);
        let b = DcasWord::new(4);
        assert!(s.dcas(&a, &b, 0, 4, 8, 12));
        assert!(!s.dcas(&a, &b, 0, 4, 16, 16));
        assert_eq!((s.load(&a), s.load(&b)), (8, 12));
    }

    #[test]
    fn table_is_pow2_padded_and_parallelism_derived() {
        let s = StripedLock::new();
        let n = s.stripes.len();
        assert!(n.is_power_of_two());
        assert!((MIN_STRIPES..=MAX_STRIPES).contains(&n));
        assert_eq!(s.shift, 64 - n.trailing_zeros());
        // Each stripe owns a full padded slot.
        assert_eq!(std::mem::size_of::<CachePadded<Mutex<()>>>(), 128);
        // Every word maps inside the table.
        let words: Vec<DcasWord> = (0..256).map(|_| DcasWord::new(0)).collect();
        for w in &words {
            assert!(s.stripe_of(w) < n);
        }
    }

    #[test]
    fn same_stripe_pair_works() {
        // Force the same-stripe path by DCAS-ing a word against itself
        // being illegal, use many words and find two mapping to one stripe.
        // (More words than stripes guarantees a collision exists.)
        let s = StripedLock::new();
        let words: Vec<DcasWord> =
            (0..2 * s.stripes.len()).map(|_| DcasWord::new(0)).collect();
        let mut by_stripe: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (i, w) in words.iter().enumerate() {
            by_stripe.entry(s.stripe_of(w)).or_default().push(i);
        }
        let (_, idxs) = by_stripe.iter().find(|(_, v)| v.len() >= 2).expect("collision");
        let (i, j) = (idxs[0], idxs[1]);
        assert!(s.dcas(&words[i], &words[j], 0, 0, 4, 8));
        assert_eq!((s.load(&words[i]), s.load(&words[j])), (4, 8));
    }

    #[test]
    fn strong_form_snapshot() {
        let s = StripedLock::new();
        let a = DcasWord::new(400);
        let b = DcasWord::new(800);
        let (mut o1, mut o2) = (0, 0);
        assert!(!s.dcas_strong(&a, &b, &mut o1, &mut o2, 4, 4));
        assert_eq!((o1, o2), (400, 800));
    }

    #[test]
    fn disjoint_pairs_no_deadlock_under_contention() {
        use std::sync::Arc;
        let s = Arc::new(StripedLock::new());
        let words: Arc<Vec<DcasWord>> = Arc::new((0..128).map(|_| DcasWord::new(0)).collect());
        let mut handles = vec![];
        for t in 0..4u64 {
            let (s, words) = (s.clone(), words.clone());
            handles.push(std::thread::spawn(move || {
                let mut x = t;
                for k in 0..20_000usize {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let i = (x as usize >> 5) % words.len();
                    let j = (x as usize >> 13) % words.len();
                    if i == j {
                        continue;
                    }
                    let o1 = s.load(&words[i]);
                    let o2 = s.load(&words[j]);
                    let _ = s.dcas(&words[i], &words[j], o1, o2, (k as u64 & !3) + 4, 4);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
