//! Hardware double-width CAS over an adjacent word pair.
//!
//! The paper assumes a DCAS over two *independent* words, which hardware
//! never shipped — but hardware did ship the adjacent special case:
//! x86-64 `lock cmpxchg16b` (and aarch64 `CASP`) atomically
//! compare-and-swap a naturally aligned 16-byte slot. This module
//! exposes that primitive:
//!
//! * [`DcasPair`] — a 16-byte-aligned cell holding two [`DcasWord`]s in
//!   one 128-bit slot, so a 2-word DCAS over them is a single
//!   instruction instead of the Harris-MCAS descriptor
//!   install/help/release protocol.
//! * An address-adjacency probe ([`adjacent_pair`]) used by
//!   [`HarrisMcas`](crate::HarrisMcas) at runtime: any `dcas` whose two
//!   targets happen to share one 16-byte slot is routed to the hardware
//!   path (when the CPU supports it), everything else falls back to the
//!   descriptor protocol unchanged.
//! * A portable seqlock fallback so the standalone [`DcasPair`] API
//!   works on every platform, merely without the single-instruction
//!   guarantee.
//!
//! # Coherence contract
//!
//! On a platform with native 128-bit CAS ([`supported`] returns `true`),
//! the hardware path and the descriptor protocol compose: both operate
//! on the same cache line with architecturally atomic instructions, and
//! the [`HarrisMcas`](crate::HarrisMcas) fast path helps any in-flight
//! descriptor it observes before retrying (see `dcas_pair_hw` in
//! `mcas.rs`), so pair CAS and CASN racing over the same words stay
//! linearizable (`crates/modelcheck` checks this exhaustively).
//!
//! Without native support, the standalone [`DcasPair`] operations
//! serialize through a striped global seqlock. That fallback is only
//! coherent with *itself*: on such platforms every access to a pair
//! must go through the `DcasPair` API (the strategies never take the
//! hardware path there, so the composition question does not arise).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::word::DcasWord;

/// Two [`DcasWord`]s packed into one naturally aligned 16-byte slot, so
/// that a DCAS over the pair is eligible for the single-instruction
/// hardware path.
///
/// The constituent words are ordinary [`DcasWord`]s: they can be passed
/// to any [`DcasStrategy`](crate::DcasStrategy) operation, individually
/// or as a pair. [`HarrisMcas`](crate::HarrisMcas) detects the adjacency
/// at runtime and upgrades `dcas(pair.lo(), pair.hi(), ..)` to one
/// `cmpxchg16b` when the CPU supports it.
///
/// The standalone [`load`](DcasPair::load) /
/// [`compare_exchange`](DcasPair::compare_exchange) methods work on
/// every platform (seqlock fallback; see the module docs for the
/// coherence contract).
#[repr(C, align(16))]
#[derive(Debug, Default)]
pub struct DcasPair {
    lo: DcasWord,
    hi: DcasWord,
}

impl DcasPair {
    /// Creates a pair holding `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if either value violates the payload contract.
    pub const fn new(lo: u64, hi: u64) -> Self {
        DcasPair { lo: DcasWord::new(lo), hi: DcasWord::new(hi) }
    }

    /// The low word (offset 0 of the 16-byte slot).
    #[inline]
    pub fn lo(&self) -> &DcasWord {
        &self.lo
    }

    /// The high word (offset 8 of the 16-byte slot).
    #[inline]
    pub fn hi(&self) -> &DcasWord {
        &self.hi
    }

    #[inline]
    fn slot(&self) -> *mut u128 {
        self as *const DcasPair as *mut u128
    }

    /// Atomic snapshot of `(lo, hi)`.
    ///
    /// Must not be used while a descriptor-based strategy operation may
    /// be in flight on either word (it would observe a tagged pointer);
    /// use strategy loads for that. Intended for pair-API-only cells.
    ///
    /// # Read-side cost
    ///
    /// On AVX-capable x86-64 (everything since ~2011) this is a plain
    /// aligned 16-byte load — a true read that leaves the cache line
    /// shared. On older CPUs it degrades to `lock cmpxchg16b`, which is
    /// a full RMW even when the comparison fails: every load then
    /// contends for the line in exclusive state and performs a (locked,
    /// value-preserving) write cycle, so on such hosts `load` is as
    /// expensive as a failed `compare_exchange` and **must not** be
    /// used on read-only mappings (the locked write faults regardless
    /// of the comparison outcome).
    pub fn load(&self) -> (u64, u64) {
        if supported() {
            // SAFETY: `slot()` is 16-byte aligned by the repr, and
            // native support was just verified.
            unpack(unsafe { load_u128(self.slot()) })
        } else {
            unpack(fallback_load(self.slot()))
        }
    }

    /// Atomically replaces `(old_lo, old_hi)` with `(new_lo, new_hi)`.
    /// On failure returns the observed pair, which was read atomically —
    /// the strong-DCAS snapshot the paper's Figure 1 asks for, free of
    /// charge on the hardware path.
    ///
    /// # Panics
    ///
    /// Panics if any value violates the payload contract.
    pub fn compare_exchange(
        &self,
        old: (u64, u64),
        new: (u64, u64),
    ) -> Result<(), (u64, u64)> {
        for v in [old.0, old.1, new.0, new.1] {
            assert!(crate::is_valid_payload(v), "DcasPair payload has reserved low bits set");
        }
        let r = if supported() {
            // SAFETY: aligned by repr; support verified.
            unsafe { cas_u128(self.slot(), pack(old.0, old.1), pack(new.0, new.1)) }
        } else {
            fallback_cas(self.slot(), pack(old.0, old.1), pack(new.0, new.1))
        };
        r.map_err(unpack)
    }
}

/// Packs `(lo, hi)` into the little-endian 128-bit slot image.
#[inline]
pub(crate) fn pack(lo: u64, hi: u64) -> u128 {
    (hi as u128) << 64 | lo as u128
}

/// Inverse of [`pack`].
#[inline]
pub(crate) fn unpack(v: u128) -> (u64, u64) {
    (v as u64, (v >> 64) as u64)
}

/// Whether this CPU can run the single-instruction pair DCAS.
///
/// Cached after the first call; `false` on non-x86-64 targets (aarch64
/// `CASP` is the natural second backend but is not implemented here).
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = unsupported, 2 = supported.
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            0 => {
                let ok = std::arch::is_x86_feature_detected!("cmpxchg16b");
                STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
            s => s == 2,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// Probes whether `a1` and `a2` occupy one naturally aligned 16-byte
/// slot (i.e. live in the same [`DcasPair`]-shaped cell). Returns the
/// slot pointer plus whether the arguments arrived `(hi, lo)` instead of
/// `(lo, hi)`.
#[inline]
pub(crate) fn adjacent_pair(a1: &DcasWord, a2: &DcasWord) -> Option<(*mut u128, bool)> {
    let (p1, p2) = (a1.addr(), a2.addr());
    if p1 % 16 == 0 && p2 == p1 + 8 {
        Some((p1 as *mut u128, false))
    } else if p2 % 16 == 0 && p1 == p2 + 8 {
        Some((p2 as *mut u128, true))
    } else {
        None
    }
}

/// 128-bit compare-exchange via `lock cmpxchg16b`. `Ok(())` on success;
/// on failure the returned value is an **atomic snapshot** of the slot
/// (the instruction loads it even when the comparison fails).
///
/// SeqCst: the `lock` prefix is a full fence on x86-64.
///
/// # Safety
///
/// `dst` must be 16-byte aligned, valid for reads and writes, and
/// [`supported`] must have returned `true`.
#[cfg(target_arch = "x86_64")]
pub(crate) unsafe fn cas_u128(dst: *mut u128, old: u128, new: u128) -> Result<(), u128> {
    debug_assert!((dst as usize).is_multiple_of(16));
    // SAFETY: alignment and validity per the caller contract; the
    // `cmpxchg16b` target feature is present per `supported()`.
    let seen = unsafe { cmpxchg16b_seqcst(dst, old, new) };
    // The instruction returns the observed slot image; an observed value
    // equal to the expected one always succeeds, so the comparison below
    // cannot misclassify.
    if seen == old { Ok(()) } else { Err(seen) }
}

/// The `core::arch` `cmpxchg16b` intrinsic pinned to SeqCst (the `lock`
/// prefix is a full fence on x86-64 anyway), in a `#[target_feature]`
/// wrapper so the compiler may assume the instruction exists. The
/// intrinsic replaces the hand-written `xchg rbx` asm dance this module
/// used to carry: LLVM now does the rbx bookkeeping itself.
///
/// # Safety
///
/// `dst` must be 16-byte aligned and valid for reads and writes, and the
/// caller must have verified the `cmpxchg16b` CPU feature (see
/// [`supported`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "cmpxchg16b")]
unsafe fn cmpxchg16b_seqcst(dst: *mut u128, old: u128, new: u128) -> u128 {
    // SAFETY: forwarded caller contract; the feature is enabled on this
    // function, satisfying the intrinsic's availability requirement.
    unsafe {
        core::arch::x86_64::cmpxchg16b(dst, old, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Whether aligned 16-byte SSE loads are architecturally atomic on this
/// CPU. Both Intel and AMD guarantee this for AVX-capable parts (and
/// LLVM's own 16-byte atomic-load lowering relies on the same
/// guarantee); pre-AVX silicon makes no such promise, so the load path
/// falls back to `cmpxchg16b` there.
#[cfg(target_arch = "x86_64")]
fn avx_atomic_load_supported() -> bool {
    // 0 = unknown, 1 = unsupported, 2 = supported.
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let ok = std::arch::is_x86_feature_detected!("avx");
            STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
        s => s == 2,
    }
}

/// Atomic 128-bit load. A plain aligned `movdqa` where AVX guarantees
/// its atomicity (a true read: shared line state, works on read-only
/// mappings); a never-storing-new `cmpxchg16b` otherwise, with the
/// locked-RMW cost documented on [`DcasPair::load`].
///
/// # Safety
///
/// `src` must be 16-byte aligned, valid for reads (and, pre-AVX, for
/// writes — the locked fallback issues a write cycle even on comparison
/// failure), and [`supported`] must have returned `true`.
#[cfg(target_arch = "x86_64")]
pub(crate) unsafe fn load_u128(src: *mut u128) -> u128 {
    debug_assert!((src as usize).is_multiple_of(16));
    if avx_atomic_load_supported() {
        let lo: u64;
        let hi: u64;
        // Inline asm keeps the 16-byte access opaque to the compiler: a
        // plain `*src` racing the locked writers would be UB in the
        // abstract machine even though the instruction itself is atomic
        // here. A plain x86 load already has acquire semantics, matching
        // the SeqCst-failure read of the CAS fallback for this purpose.
        // SAFETY: alignment per the caller contract; AVX (which implies
        // the SSE4.1 `pextrq`) verified above.
        unsafe {
            std::arch::asm!(
                "movdqa {x}, xmmword ptr [{ptr}]",
                "movq {lo}, {x}",
                "pextrq {hi}, {x}, 1",
                x = out(xmm_reg) _,
                ptr = in(reg) src,
                lo = out(reg) lo,
                hi = out(reg) hi,
                options(nostack, readonly),
            );
        }
        pack(lo, hi)
    } else {
        // Expected == new == 0: if the slot holds anything else the CAS
        // fails and hands back the atomic snapshot; if it really holds
        // (0, 0) the "successful" store writes the bytes already there.
        // SAFETY: forwarded caller contract.
        match unsafe { cas_u128(src, 0, 0) } {
            Ok(()) => 0,
            Err(seen) => seen,
        }
    }
}

// ---------------------------------------------------------------------
// Portable seqlock fallback for the standalone DcasPair API.
//
// Writers hash the slot address to one of a few global sequence locks
// (even = free, odd = held) and mutate the two words as plain atomics
// under the odd section; readers are optimistic. Same discipline as
// `GlobalSeqLock`, scoped to pair cells.
// ---------------------------------------------------------------------

const FALLBACK_LOCKS: usize = 16;

static FALLBACK_SEQ: [AtomicU64; FALLBACK_LOCKS] =
    [const { AtomicU64::new(0) }; FALLBACK_LOCKS];

#[inline]
fn fallback_lock_of(dst: *mut u128) -> &'static AtomicU64 {
    let a = (dst as usize >> 4) as u64;
    &FALLBACK_SEQ[(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (FALLBACK_LOCKS - 1)]
}

#[inline]
fn halves(dst: *mut u128) -> (&'static AtomicU64, &'static AtomicU64) {
    // SAFETY: callers pass a pointer derived from a live `DcasPair`,
    // whose halves are `AtomicU64`-layout (`DcasWord` is
    // `repr(transparent)`). The 'static lifetime is a private fiction
    // scoped to the borrow inside each fallback function.
    unsafe { (&*(dst as *const AtomicU64), &*((dst as usize + 8) as *const AtomicU64)) }
}

fn fallback_acquire(seq: &AtomicU64) -> u64 {
    let mut backoff = crate::Backoff::new();
    loop {
        let s = seq.load(Ordering::Acquire);
        if s.is_multiple_of(2)
            && seq.compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed).is_ok()
        {
            return s;
        }
        backoff.snooze();
    }
}

fn fallback_load(dst: *mut u128) -> u128 {
    let seq = fallback_lock_of(dst);
    let (lo, hi) = halves(dst);
    let mut backoff = crate::Backoff::new();
    loop {
        let s1 = seq.load(Ordering::Acquire);
        if s1.is_multiple_of(2) {
            let v_lo = lo.load(Ordering::Acquire);
            let v_hi = hi.load(Ordering::Acquire);
            if seq.load(Ordering::Acquire) == s1 {
                return pack(v_lo, v_hi);
            }
        }
        backoff.snooze();
    }
}

fn fallback_cas(dst: *mut u128, old: u128, new: u128) -> Result<(), u128> {
    let seq = fallback_lock_of(dst);
    let (lo, hi) = halves(dst);
    let s = fallback_acquire(seq);
    let seen = pack(lo.load(Ordering::Relaxed), hi.load(Ordering::Relaxed));
    let r = if seen == old {
        let (new_lo, new_hi) = unpack(new);
        lo.store(new_lo, Ordering::Relaxed);
        hi.store(new_hi, Ordering::Relaxed);
        Ok(())
    } else {
        Err(seen)
    };
    seq.store(s + 2, Ordering::Release);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_one_aligned_slot() {
        let p = DcasPair::new(8, 12);
        assert_eq!(std::mem::size_of::<DcasPair>(), 16);
        assert_eq!(p.slot() as usize % 16, 0);
        assert_eq!(p.hi().addr(), p.lo().addr() + 8);
    }

    #[test]
    fn adjacency_probe_both_orders_and_rejects_strangers() {
        let p = DcasPair::new(0, 0);
        let (slot, swapped) = adjacent_pair(p.lo(), p.hi()).expect("forward order");
        assert_eq!((slot, swapped), (p.slot(), false));
        let (slot, swapped) = adjacent_pair(p.hi(), p.lo()).expect("reverse order");
        assert_eq!((slot, swapped), (p.slot(), true));

        // Words 16 bytes apart never share a slot, whatever the base
        // alignment. (Two independent locals are *not* a valid negative
        // case: the stack may happen to co-locate them.)
        let words = [DcasWord::new(0), DcasWord::new(0), DcasWord::new(0)];
        assert!(adjacent_pair(&words[0], &words[2]).is_none());
        let q = DcasPair::new(0, 0);
        assert!(adjacent_pair(p.lo(), q.hi()).is_none(), "cross-cell words are not one slot");
    }

    #[test]
    fn compare_exchange_success_failure_snapshot() {
        let p = DcasPair::new(0, 4);
        assert_eq!(p.compare_exchange((0, 4), (8, 12)), Ok(()));
        assert_eq!(p.load(), (8, 12));
        // Failure returns the atomic snapshot.
        assert_eq!(p.compare_exchange((0, 4), (16, 16)), Err((8, 12)));
        assert_eq!(p.load(), (8, 12));
    }

    #[test]
    fn fallback_path_matches_hardware_semantics() {
        // Exercise the portable seqlock implementation directly, even on
        // hosts where `supported()` is true.
        let p = DcasPair::new(0, 4);
        assert_eq!(fallback_cas(p.slot(), pack(0, 4), pack(8, 12)), Ok(()));
        assert_eq!(unpack(fallback_load(p.slot())), (8, 12));
        assert_eq!(fallback_cas(p.slot(), pack(0, 4), pack(16, 16)), Err(pack(8, 12)));
        assert_eq!(unpack(fallback_load(p.slot())), (8, 12));
    }

    #[test]
    fn concurrent_transfers_conserve_sum() {
        // The classic conservation check, through whichever path this
        // host takes (hardware CAS or seqlock fallback).
        use std::sync::Arc;
        let p = Arc::new(DcasPair::new(1 << 20, 1 << 20));
        let total = (1u64 << 20) * 2;
        let mut handles = vec![];
        for t in 0..4u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    loop {
                        let (lo, hi) = p.load();
                        let delta = 4 * ((i + t) % 64);
                        if lo < delta {
                            break;
                        }
                        if p.compare_exchange((lo, hi), (lo - delta, hi + delta)).is_ok() {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (lo, hi) = p.load();
        assert_eq!(lo + hi, total);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn atomic_load_paths_agree() {
        if !supported() {
            return;
        }
        // Whichever branch `load_u128` takes on this host (AVX `movdqa`
        // or the `cmpxchg16b` fallback), it must see the same slot image
        // as a failed wide CAS, and `load` must unpack it.
        let p = DcasPair::new(8, 12);
        assert_eq!(unsafe { load_u128(p.slot()) }, pack(8, 12));
        assert_eq!(unsafe { cas_u128(p.slot(), pack(1, 1), pack(1, 1)) }, Err(pack(8, 12)));
        assert_eq!(p.load(), (8, 12));
        // The zero slot — the one value the CAS fallback "stores" — reads
        // back unchanged too.
        let z = DcasPair::new(0, 0);
        assert_eq!(unsafe { load_u128(z.slot()) }, 0);
        assert_eq!(z.load(), (0, 0));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_cas_detected_on_x86_64_ci() {
        // Every x86-64 CPU since ~2006 has cmpxchg16b; if this fires the
        // detection logic (not the silicon) is the likely culprit.
        assert!(supported());
    }
}
