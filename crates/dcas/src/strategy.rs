//! The strategy trait every DCAS emulation implements.

use crate::DcasWord;

/// Maximum number of target words a single [`DcasStrategy::casn`] may
/// cover. Sized for the deques' batch operations: a batch of
/// [`MAX_BATCH`](crate::elimination) elements plus the index/link/
/// terminator words each algorithm adds.
pub const MAX_CASN_WORDS: usize = 12;

/// One target word of a multi-word CAS ([`DcasStrategy::casn`]).
#[derive(Clone, Copy)]
pub struct CasnEntry<'a> {
    /// The word to compare and (on success) swap.
    pub word: &'a DcasWord,
    /// Expected current value.
    pub old: u64,
    /// Replacement value written iff every entry's comparison holds.
    pub new: u64,
}

impl<'a> CasnEntry<'a> {
    /// Convenience constructor.
    #[inline]
    pub fn new(word: &'a DcasWord, old: u64, new: u64) -> Self {
        CasnEntry { word, old, new }
    }
}

/// A software (or, hypothetically, hardware) implementation of DCAS.
///
/// A strategy instance owns whatever auxiliary state its emulation needs
/// (locks, sequence words, an epoch collector). A data structure built on
/// DCAS holds one strategy instance and routes **every** access to its
/// shared words through it — including plain loads and stores — because
/// lock-free emulations may leave tagged descriptor pointers in words
/// mid-operation, and blocking emulations may require reads to synchronize
/// with in-flight writers.
///
/// # Semantics (Figure 1 of the paper)
///
/// `dcas(a1, a2, o1, o2, n1, n2)` atomically performs
///
/// ```text
/// if *a1 == o1 && *a2 == o2 { *a1 = n1; *a2 = n2; true } else { false }
/// ```
///
/// `dcas_strong` is the second form of Figure 1: on failure it stores the
/// values of `*a1`/`*a2` — read atomically as a pair, at the linearization
/// point of the failed DCAS — through the `o1`/`o2` slots.
///
/// # Contract
///
/// * `a1` and `a2` must be **distinct** words. Implementations
///   `debug_assert` this.
/// * All payload values must satisfy [`is_valid_payload`](crate::is_valid_payload).
/// * All operations are linearizable: every `load`, `store`, `dcas` and
///   `dcas_strong` appears to take effect atomically at some instant
///   between invocation and response.
///
/// # Unwinding
///
/// A strategy call that unwinds (panics) must guarantee the operation
/// had **no effect**: no target word was modified and no value
/// ownership was transferred, so an unwinding `dcas`/`casn` is
/// indistinguishable from one that returned `false`. The deques rely on
/// this to stay linearizable and leak-free under fault injection (the
/// `fault-inject` feature's `FaultInjecting` wrapper and the
/// `fault_point!` kill hooks honor it: panics are delivered only at
/// effect-free points).
pub trait DcasStrategy: Send + Sync + Default + 'static {
    /// The memory-reclamation backend this strategy retires through.
    /// Clients that retire their own blocks (the linked deques retire
    /// nodes) pin and retire via `Self::Reclaimer` so strategy and
    /// client garbage share one scheme — and one garbage gauge — per
    /// structure. Blocking strategies never retire anything and use the
    /// epoch backend purely as the (cheap) default.
    type Reclaimer: crate::reclaim::Reclaimer;

    /// `true` if the emulation is non-blocking (a stalled thread cannot
    /// prevent others from completing operations).
    const IS_LOCK_FREE: bool;

    /// `true` if [`dcas_strong`](Self::dcas_strong) costs essentially the
    /// same as [`dcas`](Self::dcas). Clients use this to gate optimizations
    /// that the paper says need only the strong form (array deque, Figure 2
    /// lines 17–18).
    const HAS_CHEAP_STRONG: bool;

    /// Short human-readable name, used by benches and test output.
    const NAME: &'static str;

    /// Atomically reads `w`.
    fn load(&self, w: &DcasWord) -> u64;

    /// Atomically writes `v` to `w`.
    ///
    /// Unconditional stores are intended for initialization and teardown
    /// paths; the deque algorithms themselves mutate shared words only via
    /// DCAS.
    fn store(&self, w: &DcasWord, v: u64);

    /// Single-word compare-and-swap, protocol-aware (a lock-free
    /// emulation helps any in-flight DCAS at `w` before deciding).
    ///
    /// Not used by the paper's deque algorithms themselves — they
    /// synchronize exclusively through DCAS — but needed by clients such
    /// as the lock-free reference-counting transformation, whose
    /// count adjustments are single-word CASes.
    fn cas(&self, w: &DcasWord, old: u64, new: u64) -> bool;

    /// The weak DCAS of Figure 1: returns whether the double comparison
    /// succeeded (and hence whether the two writes occurred).
    fn dcas(&self, a1: &DcasWord, a2: &DcasWord, o1: u64, o2: u64, n1: u64, n2: u64) -> bool;

    /// The strong DCAS of Figure 1: like [`dcas`](Self::dcas), but on
    /// failure stores an atomic snapshot of the two locations through
    /// `o1`/`o2`.
    fn dcas_strong(
        &self,
        a1: &DcasWord,
        a2: &DcasWord,
        o1: &mut u64,
        o2: &mut u64,
        n1: u64,
        n2: u64,
    ) -> bool;

    /// Multi-word CAS over `1..=MAX_CASN_WORDS` **distinct** words: iff
    /// every entry's comparison holds simultaneously, every new value is
    /// written, all at a single linearization point.
    ///
    /// This is the primitive behind the deques' batch operations: a
    /// *k*-element push/pop is one CASN over the end index (or sentinel
    /// link) plus the *k* affected cells. `dcas` remains the specialized
    /// two-word fast path; `casn` generalizes the same protocol.
    ///
    /// Implementations may **reorder the `entries` slice** (lock-free
    /// emulations sort by address to bound mutual helping); the values
    /// are not otherwise modified.
    ///
    /// # Panics
    ///
    /// Panics (in all build profiles) if `entries` is empty, exceeds
    /// [`MAX_CASN_WORDS`], or names the same word twice — a duplicated
    /// word would make the helping protocol self-conflict.
    fn casn(&self, entries: &mut [CasnEntry<'_>]) -> bool;
}

/// Debug-mode validation shared by strategy implementations.
#[inline]
pub(crate) fn validate_args(a1: &DcasWord, a2: &DcasWord, vals: &[u64]) {
    debug_assert_ne!(
        a1.addr(),
        a2.addr(),
        "DCAS requires two distinct memory words"
    );
    for &v in vals {
        debug_assert!(
            crate::is_valid_payload(v),
            "DCAS payload {v:#x} has reserved low bits set"
        );
    }
}

/// Validation shared by `casn` implementations. The entry-count bound
/// and pairwise distinctness are hard assertions: the descriptor
/// capacity is fixed, and a duplicated word would make the sorted
/// helping protocol install the same address twice and self-conflict
/// (livelock or corrupted resolution) with no diagnostic — and at
/// `MAX_CASN_WORDS` entries the O(n²) address scan is a handful of
/// compares. The payload check stays debug-only like [`validate_args`].
#[inline]
pub(crate) fn validate_casn(entries: &[CasnEntry<'_>]) {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_CASN_WORDS,
        "CASN takes 1..={MAX_CASN_WORDS} entries, got {}",
        entries.len()
    );
    for (i, e) in entries.iter().enumerate() {
        debug_assert!(
            crate::is_valid_payload(e.old) && crate::is_valid_payload(e.new),
            "CASN payload has reserved low bits set"
        );
        for other in &entries[i + 1..] {
            assert_ne!(
                e.word.addr(),
                other.word.addr(),
                "CASN requires pairwise distinct memory words"
            );
        }
    }
}
