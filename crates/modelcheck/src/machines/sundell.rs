//! Step machine for the Sundell–Tsigas CAS-only deque
//! (`dcas-deque`'s `sundell` module): a doubly-linked list where the
//! `next` chain is authoritative, deletion is a mark bit set on the
//! *owner's* `next` word, and every structural update is a single-word
//! CAS.
//!
//! Two protocol windows make this deque interesting to interleave and
//! both are modelled as genuine multi-step regions:
//!
//! * **Two-step insert** — the publish CAS (`prev.next` swings to the
//!   new node; the push's linearization point) and the backlink repair
//!   (`next.prev` swings back) are separate steps, so any other
//!   operation can run between them and observe the lagging `prev`
//!   hint. The repair bails out when it finds the neighbour's `prev`
//!   word marked — the race with a concurrent deletion that forces
//!   `HelpInsert` in the implementation.
//! * **Logical deletion + HelpDelete** — a pop first marks the victim's
//!   `next` word (the unique mark winner owns the value; the pop's
//!   linearization point), then marks the victim's `prev` word, then
//!   splices the victim out of its predecessor's `next` chain — three
//!   separate steps. Any thread that trips over the half-deleted node
//!   performs the same mark-prev + splice sequence as a helper.
//!
//! Like ABP and Chase–Lev, `popLeft`'s linearization point is not a
//! fixed instruction: when the mark CAS succeeds on a node that a
//! concurrent `pushLeft` has since displaced from the front, the pop
//! linearizes back at its `head.next` read. The machine is therefore
//! verified through the explorer's **history mode**
//! ([`Explorer::explore_histories`](crate::Explorer::explore_histories));
//! the per-step `explore` obligations (which demand statically placed
//! linearization points) do not apply.
//!
//! Faithfulness notes (where the model folds the implementation):
//!
//! * Every CAS is one atomic step (witness read + conditional write),
//!   exactly as in the other machines; the interleaving windows live
//!   *between* program counters.
//! * Helper traversals (finding a marked node's live predecessor or the
//!   rightmost live node) are folded into the step that consumes them
//!   ([`Pc::Heal`], [`Pc::DelSplice`]). Every `Heal` step either
//!   splices out one marked node or repairs the `tail.prev` hint, and
//!   is only ever entered from a state where one of the two applies —
//!   so each retry consumes monotone progress (marks are one-way,
//!   splices are never undone) and the path DFS terminates.
//! * Spliced-out nodes stay in the arena forever and stale program
//!   counters may still read them — mirroring deferred reclamation,
//!   like the retired buffer generations kept by the Chase–Lev model.
//! * Backlink *values* of interior nodes are maintained but unused
//!   (the model finds predecessors by walking the authoritative `next`
//!   chain); their mark bits, however, carry the real protocol duty of
//!   aborting a backlink repair racing a deletion. `tail.prev` is used
//!   as the right-end hint and may lag, exercising the repair paths.
//!
//! The machine doubles as its own negative control:
//! [`SundellMachine::with_broken_splice`] makes every help-splice skip
//! one *live* successor, silently dropping an element — the history
//! checker must flag the resulting run as non-linearizable.

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

/// Arena index of the head sentinel.
const HEAD: usize = 0;
/// Arena index of the tail sentinel.
const TAIL: usize = 1;

/// A link word: `(target index, mark)`. A set mark means the word's
/// *owner* node is logically deleted.
type Link = (usize, bool);

/// One node in the arena. Nodes are never removed (deferred
/// reclamation): splicing only redirects links.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeM {
    /// Backlink hint; authoritative only for `tail.prev`.
    pub prev: Link,
    /// Authoritative forward link; mark = owner deleted.
    pub next: Link,
    /// The element (sentinel values are never observed).
    pub value: u64,
}

/// Shared state: the node arena. Index 0 is the head sentinel, 1 the
/// tail sentinel; pushes append fresh nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SdShared {
    /// All nodes ever allocated; spliced-out nodes stay in the arena.
    pub nodes: Vec<NodeM>,
}

impl SdShared {
    /// Walks the `next` chain from `head`, yielding node indices up to
    /// (not including) `TAIL`. Panics on a cycle — a model bug that
    /// must be loud.
    fn chain(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[HEAD].next.0;
        while cur != TAIL {
            out.push(cur);
            cur = self.nodes[cur].next.0;
            assert!(out.len() <= self.nodes.len(), "next chain does not terminate");
        }
        out
    }
}

/// Program counters, one step per shared-memory access. Helper
/// traversal + CAS pairs are folded per the module notes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Start,
    /// pushLeft: `head.next` read as `⟨next, F⟩`; publish CAS next.
    PushLeftCas { v: u64, next: usize },
    /// pushRight: `tail.prev` hint read as `prev`; validate-and-publish
    /// CAS on `prev.next` next.
    PushRightCas { v: u64, prev: usize },
    /// Both pushes: second insert step — swing `next.prev` to `node`.
    PushFixPrev { node: usize, next: usize },
    /// popLeft: `head.next` read as `node`; read `node.next` next.
    PopLeftRead { node: usize },
    /// popLeft: mark CAS on `node.next`, expecting `⟨nxt, F⟩`.
    PopLeftMark { node: usize, nxt: usize },
    /// popRight: `tail.prev` hint read as `node`; mark CAS (or the
    /// empty check when `node` is the head sentinel) next.
    PopRightMark { node: usize },
    /// Observed a half-deleted node or a lagging hint: perform one
    /// helping step (splice one marked node, else repair `tail.prev`),
    /// then retry the operation from scratch.
    Heal,
    /// Mark winner's cleanup, step 1: mark `node.prev`.
    DelMarkPrev { node: usize },
    /// Mark winner's cleanup, step 2: splice `node` out of its
    /// predecessor's `next` chain (no-op if a helper got there first).
    DelSplice { node: usize },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SdLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The Sundell–Tsigas machine.
pub struct SundellMachine {
    /// Operation scripts, one per thread; any thread may use any end.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially (pushed right before the run).
    pub initial_items: Vec<u64>,
    /// Negative control: help-splices skip one live successor.
    pub broken_splice: bool,
}

impl SundellMachine {
    /// Builds a machine over single-element deque operations.
    pub fn new(scripts: Vec<Vec<DequeOp>>) -> Self {
        for script in &scripts {
            for op in script {
                match op {
                    DequeOp::PushLeft(_)
                    | DequeOp::PushRight(_)
                    | DequeOp::PopLeft
                    | DequeOp::PopRight => {}
                    _ => panic!("batched ops are not modelled"),
                }
            }
        }
        SundellMachine { scripts, initial_items: Vec::new(), broken_splice: false }
    }

    /// Adds initial content (left to right).
    pub fn with_initial(mut self, items: Vec<u64>) -> Self {
        self.initial_items = items;
        self
    }

    /// Sabotages every help-splice to skip one live successor, silently
    /// unlinking an element. Used to prove the checker catches a broken
    /// `HelpDelete`.
    pub fn with_broken_splice(mut self) -> Self {
        self.broken_splice = true;
        self
    }

    /// First node at-or-after `node`'s successor whose own `next` word
    /// is unmarked (or `TAIL`) — the splice target. The broken variant
    /// skips one live node.
    fn splice_target(&self, sh: &SdShared, node: usize) -> usize {
        let skip_marked = |mut s: usize| {
            while s != TAIL && sh.nodes[s].next.1 {
                s = sh.nodes[s].next.0;
            }
            s
        };
        let mut s = skip_marked(sh.nodes[node].next.0);
        if self.broken_splice && s != TAIL {
            s = skip_marked(sh.nodes[s].next.0);
        }
        s
    }

    /// One helping step: splice out the first marked node that still
    /// has an unmarked incoming link, or failing that repair the
    /// `tail.prev` hint to the rightmost live node.
    fn heal(&self, sh: &mut SdShared) {
        let mut p = HEAD;
        loop {
            let (c, pm) = sh.nodes[p].next;
            if c == TAIL {
                break;
            }
            if !pm && sh.nodes[c].next.1 {
                // `c` is logically deleted but physically linked: mark
                // its backlink, then splice (the helper half of
                // HelpDelete).
                sh.nodes[c].prev.1 = true;
                sh.nodes[p].next = (self.splice_target(sh, c), false);
                return;
            }
            p = c;
        }
        // No splicing left to do; the chain is clean, so the rightmost
        // live node is the one whose `next` names the tail unmarked.
        let mut r = HEAD;
        for c in sh.chain() {
            if !sh.nodes[c].next.1 {
                r = c;
            }
        }
        if sh.nodes[TAIL].prev != (r, false) {
            sh.nodes[TAIL].prev = (r, false);
        }
    }
}

impl System for SundellMachine {
    type Shared = SdShared;
    type Local = SdLocal;

    fn initial_shared(&self) -> SdShared {
        let n = self.initial_items.len();
        let idx = |i: usize| 2 + i; // arena index of the i-th item
        let mut nodes = vec![
            NodeM {
                prev: (HEAD, false),
                next: (if n == 0 { TAIL } else { idx(0) }, false),
                value: 0,
            },
            NodeM {
                prev: (if n == 0 { HEAD } else { idx(n - 1) }, false),
                next: (TAIL, false),
                value: 0,
            },
        ];
        for (i, &v) in self.initial_items.iter().enumerate() {
            nodes.push(NodeM {
                prev: (if i == 0 { HEAD } else { idx(i - 1) }, false),
                next: (if i + 1 == n { TAIL } else { idx(i + 1) }, false),
                value: v,
            });
        }
        SdShared { nodes }
    }

    fn initial_locals(&self) -> Vec<SdLocal> {
        (0..self.scripts.len())
            .map(|tid| SdLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut SdShared, local: &mut SdLocal) -> Option<StepEvent> {
        // Linearization points are emitted mid-operation (at the
        // publish/mark CAS); the remaining cleanup steps run with the
        // *next* script slot already current, so cleanup program
        // counters are dispatched before the script is consulted.
        let lin = |local: &mut SdLocal, op: DequeOp, ret: DequeRet| {
            local.op_idx += 1;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            Pc::Start => {
                let op = *self.scripts[local.tid].get(local.op_idx)?;
                match op {
                    DequeOp::PushLeft(v) => {
                        local.pc = Pc::PushLeftCas { v, next: sh.nodes[HEAD].next.0 };
                        StepEvent::Internal
                    }
                    DequeOp::PushRight(v) => {
                        local.pc = Pc::PushRightCas { v, prev: sh.nodes[TAIL].prev.0 };
                        StepEvent::Internal
                    }
                    DequeOp::PopLeft => {
                        let node = sh.nodes[HEAD].next.0;
                        if node == TAIL {
                            lin(local, op, DequeRet::Empty)
                        } else {
                            local.pc = Pc::PopLeftRead { node };
                            StepEvent::Internal
                        }
                    }
                    DequeOp::PopRight => {
                        local.pc = Pc::PopRightMark { node: sh.nodes[TAIL].prev.0 };
                        StepEvent::Internal
                    }
                    _ => unreachable!("batched ops rejected in new()"),
                }
            }

            Pc::PushLeftCas { v, next } => {
                // Publish CAS on `head.next` (never marked: sentinels
                // are never deleted). Pointer recurrence is genuine ABA
                // and genuinely benign: the expected first node being
                // first *again* revalidates the install.
                if sh.nodes[HEAD].next == (next, false) {
                    let node = sh.nodes.len();
                    sh.nodes.push(NodeM {
                        prev: (HEAD, false),
                        next: (next, false),
                        value: v,
                    });
                    sh.nodes[HEAD].next = (node, false);
                    local.pc = Pc::PushFixPrev { node, next };
                    lin(local, DequeOp::PushLeft(v), DequeRet::Okay)
                } else {
                    // Lost the publish race; nothing shared, plain retry.
                    StepEvent::Internal
                }
            }

            Pc::PushRightCas { v, prev } => {
                // The hint is validated by the CAS itself: success on
                // `prev.next: ⟨tail, F⟩ → ⟨node, F⟩` atomically
                // certifies `prev` was the rightmost live node.
                if sh.nodes[prev].next == (TAIL, false) {
                    let node = sh.nodes.len();
                    sh.nodes.push(NodeM {
                        prev: (prev, false),
                        next: (TAIL, false),
                        value: v,
                    });
                    sh.nodes[prev].next = (node, false);
                    local.pc = Pc::PushFixPrev { node, next: TAIL };
                    lin(local, DequeOp::PushRight(v), DequeRet::Okay)
                } else {
                    // Deleted or lagging hint: help, then retry.
                    local.pc = Pc::Heal;
                    StepEvent::Internal
                }
            }

            Pc::PushFixPrev { node, next } => {
                // Second insert step: swing `next.prev` back to `node`.
                // Bails if `next` is being deleted (marked backlink) or
                // `node` is no longer adjacent — that repair belongs to
                // whoever moved the state on.
                let link1 = sh.nodes[next].prev;
                if !link1.1 && sh.nodes[node].next == (next, false) && link1.0 != node {
                    sh.nodes[next].prev = (node, false);
                }
                StepEvent::Internal
            }

            Pc::PopLeftRead { node } => {
                let (nxt, marked) = sh.nodes[node].next;
                if marked {
                    // Half-deleted first node: help, then retry.
                    local.pc = Pc::Heal;
                } else {
                    local.pc = Pc::PopLeftMark { node, nxt };
                }
                StepEvent::Internal
            }

            Pc::PopLeftMark { node, nxt } => {
                // Logical deletion: the unique mark winner owns the
                // value. If a pushLeft displaced `node` from the front
                // meanwhile, the op linearizes back at its `head.next`
                // read — which is inside this op's history interval, so
                // history mode absorbs it.
                if sh.nodes[node].next == (nxt, false) {
                    sh.nodes[node].next = (nxt, true);
                    let v = sh.nodes[node].value;
                    local.pc = Pc::DelMarkPrev { node };
                    lin(local, DequeOp::PopLeft, DequeRet::Value(v))
                } else {
                    // Mark race lost; retry from scratch.
                    StepEvent::Internal
                }
            }

            Pc::PopRightMark { node } => {
                if node == HEAD {
                    // Empty only if the authoritative chain agrees.
                    if sh.nodes[HEAD].next == (TAIL, false) {
                        lin(local, DequeOp::PopRight, DequeRet::Empty)
                    } else {
                        local.pc = Pc::Heal;
                        StepEvent::Internal
                    }
                } else if sh.nodes[node].next == (TAIL, false) {
                    // Static linearization: the mark CAS expecting
                    // `⟨tail, F⟩` certifies `node` was rightmost.
                    sh.nodes[node].next = (TAIL, true);
                    let v = sh.nodes[node].value;
                    local.pc = Pc::DelMarkPrev { node };
                    lin(local, DequeOp::PopRight, DequeRet::Value(v))
                } else {
                    // Deleted or lagging hint: help, then retry.
                    local.pc = Pc::Heal;
                    StepEvent::Internal
                }
            }

            Pc::Heal => {
                self.heal(sh);
                StepEvent::Internal
            }

            Pc::DelMarkPrev { node } => {
                sh.nodes[node].prev.1 = true;
                local.pc = Pc::DelSplice { node };
                StepEvent::Internal
            }

            Pc::DelSplice { node } => {
                // Splice `node` out of whichever live predecessor still
                // names it unmarked; a helper may already have done it.
                if let Some(p) = (0..sh.nodes.len())
                    .find(|&p| sh.nodes[p].next == (node, false))
                {
                    sh.nodes[p].next = (self.splice_target(sh, node), false);
                }
                StepEvent::Internal
            }
        })
    }

    /// Minimal sanity only: history mode carries the real obligation.
    fn rep_invariant(&self, sh: &SdShared) -> Result<(), String> {
        if sh.nodes[HEAD].next.1 || sh.nodes[TAIL].prev.1 {
            return Err("a sentinel link word is marked".into());
        }
        let mut cur = sh.nodes[HEAD].next.0;
        let mut hops = 0;
        while cur != TAIL {
            if cur == HEAD || cur >= sh.nodes.len() {
                return Err(format!("next chain reached bad index {cur}"));
            }
            cur = sh.nodes[cur].next.0;
            hops += 1;
            if hops > sh.nodes.len() {
                return Err("next chain does not terminate".into());
            }
        }
        Ok(())
    }

    fn abstraction(&self, sh: &SdShared) -> Vec<u64> {
        sh.chain()
            .into_iter()
            .filter(|&c| !sh.nodes[c].next.1)
            .map(|c| sh.nodes[c].value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_all_four_ops() {
        let m = SundellMachine::new(vec![vec![
            DequeOp::PushLeft(5),
            DequeOp::PushRight(6),
            DequeOp::PushLeft(4),
            DequeOp::PopRight,
            DequeOp::PopLeft,
            DequeOp::PopLeft,
            DequeOp::PopRight,
        ]]);
        let report = Explorer::default().explore_histories(&m, 100).unwrap();
        assert_eq!(report.paths, 1);
        assert_eq!(report.operations, 7);
    }

    #[test]
    fn opposite_end_pops_race_for_last() {
        // One element, a popLeft and a popRight: both mark CASes target
        // the same `next` word, so exactly one wins on every path and
        // the loser must help the winner's splice before observing
        // empty.
        let m = SundellMachine::new(vec![vec![DequeOp::PopLeft], vec![DequeOp::PopRight]])
            .with_initial(vec![7]);
        let report = Explorer::default().explore_histories(&m, 100_000).unwrap();
        assert!(report.paths > 5, "expected several interleavings, got {}", report.paths);
    }

    #[test]
    fn push_right_races_pop_right_through_the_insert_window() {
        // The two-step insert window at the right end: pops that run
        // between the publish CAS and the backlink repair see a lagging
        // `tail.prev` hint and must heal it before they can mark.
        let m = SundellMachine::new(vec![
            vec![DequeOp::PushRight(8), DequeOp::PopRight],
            vec![DequeOp::PopRight],
        ])
        .with_initial(vec![5]);
        let report = Explorer::default().explore_histories(&m, 1_000_000).unwrap();
        assert!(report.paths > 50, "insert window underexplored: {} paths", report.paths);
    }

    #[test]
    fn push_left_races_pop_left_on_the_same_node() {
        // popLeft's dynamic linearization: a concurrent pushLeft can
        // displace the observed first node before the mark lands, so
        // some paths pop a node that is no longer leftmost — all must
        // still linearize (at the earlier `head.next` read).
        let m = SundellMachine::new(vec![
            vec![DequeOp::PushLeft(9), DequeOp::PopLeft],
            vec![DequeOp::PopLeft],
        ])
        .with_initial(vec![5]);
        let report = Explorer::default().explore_histories(&m, 1_000_000).unwrap();
        assert!(report.paths > 50, "mark race underexplored: {} paths", report.paths);
    }

    #[test]
    fn mixed_ends_with_helping() {
        // Pops from both ends over a two-element deque while a push
        // lands on the left: crosses every helping path (mark-prev
        // windows, splice races, hint repairs).
        let m = SundellMachine::new(vec![
            vec![DequeOp::PopLeft],
            vec![DequeOp::PopRight],
            vec![DequeOp::PushLeft(3)],
        ])
        .with_initial(vec![5, 6]);
        Explorer::default().explore_histories(&m, 5_000_000).unwrap();
    }

    #[test]
    fn pops_race_on_empty_deque() {
        // Empty observations racing a push: each pop either sees the
        // pushed value or a legitimately empty deque.
        let m = SundellMachine::new(vec![
            vec![DequeOp::PushRight(9), DequeOp::PopLeft],
            vec![DequeOp::PopRight],
        ]);
        Explorer::default().explore_histories(&m, 1_000_000).unwrap();
    }

    #[test]
    fn broken_help_splice_is_caught() {
        // Negative control: a help-splice that skips one live successor
        // silently drops an element, so a later pop claims empty while
        // a pushed value was never returned — non-linearizable, and the
        // checker must say so. The identical healthy run passes.
        let script = vec![vec![DequeOp::PopLeft, DequeOp::PopLeft, DequeOp::PopLeft]];
        let healthy = SundellMachine::new(script.clone()).with_initial(vec![1, 2]);
        Explorer::default().explore_histories(&healthy, 100).unwrap();

        let broken = SundellMachine::new(script)
            .with_initial(vec![1, 2])
            .with_broken_splice();
        let err = Explorer::default().explore_histories(&broken, 100).unwrap_err();
        assert!(err.contains("non-linearizable"), "unexpected error: {err}");
    }

    #[test]
    fn broken_help_splice_is_caught_under_concurrency() {
        let m = SundellMachine::new(vec![vec![DequeOp::PopLeft], vec![DequeOp::PopLeft]])
            .with_initial(vec![1, 2, 3])
            .with_broken_splice();
        let err = Explorer::default().explore_histories(&m, 1_000_000).unwrap_err();
        assert!(err.contains("non-linearizable"), "unexpected error: {err}");
    }
}
