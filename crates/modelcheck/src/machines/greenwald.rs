//! Step machine for the Greenwald-style one-word-indices deque (the
//! Section 1.1 comparison baseline implemented in `dcas-baselines`).
//!
//! Every operation reads the packed `(L, R, count)` word and then DCASes
//! it together with one value cell. Model checking serves two purposes:
//!
//! 1. verify that our baseline is itself linearizable (so the E8
//!    performance comparison is apples-to-apples between *correct*
//!    implementations), and
//! 2. make the paper's critique concrete: every DCAS of every operation
//!    compares the same packed index register, so cross-end operations
//!    always conflict — the serialization the paper's algorithms remove
//!    (quantified at runtime by the `cross_end_interference` integration
//!    test and bench E8).

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

use super::array::Side;

/// Shared state: the packed index register modeled as a struct, plus the
/// cells. (Packing is an encoding detail; the model keeps the fields
/// separate but updates them in the single atomic step a real packed word
/// provides.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GreenwaldShared {
    /// Next left insertion index.
    pub l: usize,
    /// Next right insertion index.
    pub r: usize,
    /// Element count (the packed word's third field).
    pub count: usize,
    /// The circular array (0 = null).
    pub slots: Vec<u64>,
}

/// Program counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// Read the packed index word.
    Start,
    /// Pop: read the target cell, then attempt the DCAS.
    PopReadSlot { l: usize, r: usize, count: usize },
    /// Pop: the DCAS on (indices, cell).
    PopDcas { l: usize, r: usize, count: usize, old_s: u64 },
    /// Push: the DCAS on (indices, cell) expecting the cell null.
    PushDcas { l: usize, r: usize, count: usize },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GreenwaldLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The machine: capacity plus per-thread scripts.
pub struct GreenwaldMachine {
    /// Array capacity.
    pub capacity: usize,
    /// Per-thread operation scripts.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially.
    pub initial_items: Vec<u64>,
}

impl GreenwaldMachine {
    /// Builds a machine.
    pub fn new(capacity: usize, scripts: Vec<Vec<DequeOp>>) -> Self {
        GreenwaldMachine { capacity, scripts, initial_items: Vec::new() }
    }

    /// Adds initial content.
    pub fn with_initial(mut self, items: Vec<u64>) -> Self {
        assert!(items.len() <= self.capacity);
        self.initial_items = items;
        self
    }

    fn side_of(op: DequeOp) -> Side {
        match op {
            DequeOp::PushRight(_) | DequeOp::PopRight => Side::Right,
            DequeOp::PushLeft(_) | DequeOp::PopLeft => Side::Left,
            // The exhaustive machines model per-element transitions only;
            // batched chunk CASNs are covered by the linearizability
            // stress tests (scripts here never contain them).
            _ => panic!("batched ops are not modelled"),
        }
    }

    fn add1(&self, i: usize) -> usize {
        (i + 1) % self.capacity
    }

    fn sub1(&self, i: usize) -> usize {
        (i + self.capacity - 1) % self.capacity
    }
}

impl System for GreenwaldMachine {
    type Shared = GreenwaldShared;
    type Local = GreenwaldLocal;

    fn initial_shared(&self) -> GreenwaldShared {
        let mut sh = GreenwaldShared {
            l: 0,
            r: 1 % self.capacity,
            count: 0,
            slots: vec![0; self.capacity],
        };
        for &v in &self.initial_items {
            sh.slots[sh.r] = v;
            sh.r = (sh.r + 1) % self.capacity;
            sh.count += 1;
        }
        sh
    }

    fn initial_locals(&self) -> Vec<GreenwaldLocal> {
        (0..self.scripts.len())
            .map(|tid| GreenwaldLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn step(&self, sh: &mut GreenwaldShared, local: &mut GreenwaldLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;
        let side = Self::side_of(op);
        let is_pop = matches!(op, DequeOp::PopRight | DequeOp::PopLeft);

        let finish = |local: &mut GreenwaldLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            // One atomic read of the packed word decides empty/full
            // immediately — Greenwald's advantage.
            Pc::Start => {
                let (l, r, count) = (sh.l, sh.r, sh.count);
                if is_pop && count == 0 {
                    return Some(finish(local, DequeRet::Empty));
                }
                if !is_pop && count == self.capacity {
                    return Some(finish(local, DequeRet::Full));
                }
                local.pc = if is_pop {
                    Pc::PopReadSlot { l, r, count }
                } else {
                    Pc::PushDcas { l, r, count }
                };
                StepEvent::Internal
            }

            Pc::PopReadSlot { l, r, count } => {
                let slot = match side {
                    Side::Right => self.sub1(r),
                    Side::Left => self.add1(l),
                };
                let old_s = sh.slots[slot];
                local.pc = if old_s == 0 {
                    Pc::Start // torn view; retry
                } else {
                    Pc::PopDcas { l, r, count, old_s }
                };
                StepEvent::Internal
            }

            Pc::PopDcas { l, r, count, old_s } => {
                let slot = match side {
                    Side::Right => self.sub1(r),
                    Side::Left => self.add1(l),
                };
                if (sh.l, sh.r, sh.count) == (l, r, count) && sh.slots[slot] == old_s {
                    match side {
                        Side::Right => sh.r = slot,
                        Side::Left => sh.l = slot,
                    }
                    sh.count -= 1;
                    sh.slots[slot] = 0;
                    finish(local, DequeRet::Value(old_s))
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            Pc::PushDcas { l, r, count } => {
                let v = match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => v,
                    _ => unreachable!(),
                };
                let slot = match side {
                    Side::Right => r,
                    Side::Left => l,
                };
                if (sh.l, sh.r, sh.count) == (l, r, count) && sh.slots[slot] == 0 {
                    match side {
                        Side::Right => sh.r = self.add1(r),
                        Side::Left => sh.l = self.sub1(l),
                    }
                    sh.count += 1;
                    sh.slots[slot] = v;
                    finish(local, DequeRet::Okay)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }
        })
    }

    fn rep_invariant(&self, sh: &GreenwaldShared) -> Result<(), String> {
        let n = self.capacity;
        if sh.l >= n || sh.r >= n || sh.count > n {
            return Err(format!("indices out of range: {sh:?}"));
        }
        if (sh.l + 1 + sh.count) % n != sh.r && !(sh.count == n && (sh.l + 1) % n == sh.r) {
            return Err(format!("index/count mismatch: {sh:?}"));
        }
        for k in 0..n {
            let idx = (sh.l + 1 + k) % n;
            let occupied = sh.slots[idx] != 0;
            if occupied != (k < sh.count) {
                return Err(format!("occupancy not contiguous at {idx}: {sh:?}"));
            }
        }
        Ok(())
    }

    fn abstraction(&self, sh: &GreenwaldShared) -> Vec<u64> {
        (0..sh.count)
            .map(|k| sh.slots[(sh.l + 1 + k) % self.capacity])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_semantics() {
        let m = GreenwaldMachine::new(
            2,
            vec![vec![
                DequeOp::PopRight,      // empty
                DequeOp::PushRight(5),  // okay
                DequeOp::PushLeft(6),   // okay
                DequeOp::PushRight(7),  // full
                DequeOp::PopLeft,       // 6
                DequeOp::PopLeft,       // 5
            ]],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        assert_eq!(report.linearizations, 6);
    }

    #[test]
    fn concurrent_two_ends_verifies() {
        let m = GreenwaldMachine::new(
            3,
            vec![
                vec![DequeOp::PushRight(5), DequeOp::PopLeft],
                vec![DequeOp::PushLeft(6), DequeOp::PopRight],
            ],
        );
        Explorer::default().explore(&m, |_| {}).unwrap();
    }

    #[test]
    fn steal_race_verifies() {
        let m = GreenwaldMachine::new(3, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
            .with_initial(vec![7]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
    }

    #[test]
    fn random_walks_larger_config() {
        let m = GreenwaldMachine::new(
            4,
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft, DequeOp::PushRight(11)],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20), DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![5]);
        Explorer::default().random_walks(&m, 2_000, 0x6133).unwrap();
    }
}
