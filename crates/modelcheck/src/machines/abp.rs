//! Step machine for the Arora–Blumofe–Plaxton deque (`dcas-baselines`'s
//! `AbpDeque`, the paper's reference \[4\]).
//!
//! Unlike the DCAS machines, ABP's linearization points are not fixed
//! instructions — `popBottom` linearizes at different places depending on
//! how its race with the thieves resolves — so this machine is verified
//! through the explorer's **history mode**
//! ([`Explorer::explore_histories`](crate::Explorer::explore_histories)):
//! every execution path's complete history is checked for linearizability
//! against the sequential deque specification, with
//! `pushBottom = pushRight`, `popBottom = popRight`, `steal = popLeft`.
//! The `Linearize` events only *report* each operation's return value, at
//! a step that is always at-or-after the true linearization point and
//! before the response (sound for history checking).
//!
//! Thread 0 is the owner (its script may contain `PushRight`/`PopRight`);
//! all other threads are thieves (`PopLeft` only). An aborted steal
//! retries until it obtains a value or observes empty, mirroring how a
//! scheduler uses the primitive.

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

/// Shared state: the deck plus `bot` and the `(tag, top)` age word.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbpShared {
    /// The task array.
    pub deck: Vec<u64>,
    /// Next free bottom slot (owner-written only).
    pub bot: usize,
    /// Age: ABA tag.
    pub tag: u32,
    /// Age: top index.
    pub top: usize,
}

/// Program counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Start,
    /// pushBottom: the deck write happened; advance bot (publication).
    PushAdvance { v: u64 },
    /// popBottom: bot already decremented to `b`; read deck[b].
    PopReadDeck { b: usize },
    /// popBottom: read the age and branch.
    PopReadAge { b: usize, v: u64 },
    /// popBottom: bot reset to 0; attempt the age CAS / overwrite.
    PopCasAge { b: usize, v: u64, old_tag: u32, old_top: usize },
    /// popBottom: failed the race; overwrite age and report empty.
    PopSetAge { old_tag: u32 },
    /// steal: age read; read bot.
    StealReadBot { old_tag: u32, old_top: usize },
    /// steal: read deck[top].
    StealReadDeck { old_tag: u32, old_top: usize },
    /// steal: the claiming CAS.
    StealCas { old_tag: u32, old_top: usize, v: u64 },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbpLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The ABP machine.
pub struct AbpMachine {
    /// Deck capacity.
    pub capacity: usize,
    /// Thread 0: owner script; threads 1..: thief scripts (PopLeft only).
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially (owner pushes before the run).
    pub initial_items: Vec<u64>,
}

impl AbpMachine {
    /// Builds a machine; validates the owner/thief role split.
    pub fn new(capacity: usize, scripts: Vec<Vec<DequeOp>>) -> Self {
        for (tid, script) in scripts.iter().enumerate() {
            for op in script {
                match op {
                    DequeOp::PushRight(_) | DequeOp::PopRight => {
                        assert_eq!(tid, 0, "only thread 0 (the owner) may use the bottom end");
                    }
                    DequeOp::PopLeft => {
                        assert_ne!(tid, 0, "thieves are threads 1.. (owner uses popRight)");
                    }
                    DequeOp::PushLeft(_) => panic!("ABP has no pushLeft"),
                    _ => panic!("batched ops are not modelled"),
                }
            }
        }
        AbpMachine { capacity, scripts, initial_items: Vec::new() }
    }

    /// Adds initial content.
    pub fn with_initial(mut self, items: Vec<u64>) -> Self {
        assert!(items.len() <= self.capacity);
        self.initial_items = items;
        self
    }
}

impl System for AbpMachine {
    type Shared = AbpShared;
    type Local = AbpLocal;

    fn initial_shared(&self) -> AbpShared {
        let mut deck = vec![0; self.capacity];
        for (i, &v) in self.initial_items.iter().enumerate() {
            deck[i] = v;
        }
        AbpShared { deck, bot: self.initial_items.len(), tag: 0, top: 0 }
    }

    fn initial_locals(&self) -> Vec<AbpLocal> {
        (0..self.scripts.len())
            .map(|tid| AbpLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut AbpShared, local: &mut AbpLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;

        let finish = |local: &mut AbpLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            Pc::Start => match op {
                DequeOp::PushRight(v) => {
                    // Owner: write the slot (bot is owner-local knowledge;
                    // folding its read here is sound because only the
                    // owner writes it).
                    assert!(sh.bot < self.capacity, "model deck overflow");
                    sh.deck[sh.bot] = v;
                    local.pc = Pc::PushAdvance { v };
                    StepEvent::Internal
                }
                DequeOp::PopRight => {
                    if sh.bot == 0 {
                        return Some(finish(local, DequeRet::Empty));
                    }
                    // localBot-- ; bot = localBot (owner-only variable:
                    // read-modify-write is one step for everyone else).
                    sh.bot -= 1;
                    local.pc = Pc::PopReadDeck { b: sh.bot };
                    StepEvent::Internal
                }
                DequeOp::PopLeft => {
                    local.pc = Pc::StealReadBot { old_tag: sh.tag, old_top: sh.top };
                    StepEvent::Internal
                }
                DequeOp::PushLeft(_) => unreachable!(),
                _ => unreachable!("batched ops rejected in new()"),
            },

            Pc::PushAdvance { v: _ } => {
                sh.bot += 1;
                finish(local, DequeRet::Okay)
            }

            Pc::PopReadDeck { b } => {
                let v = sh.deck[b];
                local.pc = Pc::PopReadAge { b, v };
                StepEvent::Internal
            }

            Pc::PopReadAge { b, v } => {
                if b > sh.top {
                    // Secure: no thief can reach b anymore.
                    finish(local, DequeRet::Value(v))
                } else {
                    let (old_tag, old_top) = (sh.tag, sh.top);
                    sh.bot = 0;
                    local.pc = Pc::PopCasAge { b, v, old_tag, old_top };
                    StepEvent::Internal
                }
            }

            Pc::PopCasAge { b, v, old_tag, old_top } => {
                if b == old_top && sh.tag == old_tag && sh.top == old_top {
                    // Won the race for the last element.
                    sh.tag = old_tag.wrapping_add(1);
                    sh.top = 0;
                    finish(local, DequeRet::Value(v))
                } else if b == old_top {
                    // Lost the CAS: a thief took it; reset and report
                    // empty.
                    local.pc = Pc::PopSetAge { old_tag };
                    StepEvent::Internal
                } else {
                    // b < old_top: the element was already stolen.
                    local.pc = Pc::PopSetAge { old_tag };
                    StepEvent::Internal
                }
            }

            Pc::PopSetAge { old_tag } => {
                sh.tag = old_tag.wrapping_add(1);
                sh.top = 0;
                finish(local, DequeRet::Empty)
            }

            Pc::StealReadBot { old_tag, old_top } => {
                if sh.bot <= old_top {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::StealReadDeck { old_tag, old_top };
                    StepEvent::Internal
                }
            }

            Pc::StealReadDeck { old_tag, old_top } => {
                let v = sh.deck[old_top];
                local.pc = Pc::StealCas { old_tag, old_top, v };
                StepEvent::Internal
            }

            Pc::StealCas { old_tag, old_top, v } => {
                if sh.tag == old_tag && sh.top == old_top {
                    sh.top = old_top + 1;
                    finish(local, DequeRet::Value(v))
                } else {
                    // Abort: retry the steal from scratch.
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }
        })
    }

    /// Minimal sanity only: history mode does not use linearization-point
    /// obligations, and ABP's representation has no simple per-state
    /// characterization of the abstract deque (that is exactly why it is
    /// checked through histories).
    fn rep_invariant(&self, sh: &AbpShared) -> Result<(), String> {
        if sh.bot > self.capacity || sh.top > self.capacity {
            return Err(format!("indices out of range: bot={} top={}", sh.bot, sh.top));
        }
        Ok(())
    }

    fn abstraction(&self, sh: &AbpShared) -> Vec<u64> {
        sh.deck[sh.top.min(sh.bot)..sh.bot].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn owner_only_sequential() {
        let m = AbpMachine::new(
            8,
            vec![vec![
                DequeOp::PushRight(5),
                DequeOp::PushRight(6),
                DequeOp::PopRight,
                DequeOp::PopRight,
                DequeOp::PopRight,
            ]],
        );
        let report = Explorer::default().explore_histories(&m, 10).unwrap();
        assert_eq!(report.paths, 1);
        assert_eq!(report.operations, 5);
    }

    #[test]
    fn owner_vs_one_thief_race_for_last() {
        // The classic corner: one element, owner pops bottom while a
        // thief steals. Every path must be linearizable.
        let m = AbpMachine::new(4, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
            .with_initial(vec![7]);
        let report = Explorer::default().explore_histories(&m, 100_000).unwrap();
        assert!(report.paths > 5, "expected several interleavings, got {}", report.paths);
    }

    #[test]
    fn push_pop_steal_interleavings() {
        let m = AbpMachine::new(
            4,
            vec![
                vec![DequeOp::PushRight(5), DequeOp::PopRight],
                vec![DequeOp::PopLeft],
            ],
        );
        Explorer::default().explore_histories(&m, 1_000_000).unwrap();
    }

    #[test]
    fn two_thieves_and_owner() {
        let m = AbpMachine::new(
            4,
            vec![
                vec![DequeOp::PopRight],
                vec![DequeOp::PopLeft],
                vec![DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![5, 6]);
        Explorer::default().explore_histories(&m, 5_000_000).unwrap();
    }

    #[test]
    fn reset_epoch_reuse() {
        // Drain to empty (tag bump), then push and take again: the tag
        // must protect against ABA across the reset.
        let m = AbpMachine::new(
            4,
            vec![
                vec![DequeOp::PopRight, DequeOp::PushRight(8), DequeOp::PopRight],
                vec![DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![7]);
        Explorer::default().explore_histories(&m, 5_000_000).unwrap();
    }
}
