//! Step machine for the **dummy-node** variant of the linked-list deque
//! (the paper's footnote 4 / Figure 10).
//!
//! The paper only sketches this variant in a footnote; the concrete
//! algorithm in `dcas-deque`'s `list_dummy` module is our realization of
//! that sketch (fresh dummy per logical deletion, retired at physical
//! deletion). Because the design is an *interpretation* rather than a
//! transcription, exhaustively model checking it matters even more than
//! for the published listings: this machine mirrors `list_dummy`
//! step-for-step and runs under the same proof obligations.
//!
//! Modeling notes (beyond those of the [`list`](super::list) machine):
//!
//! * Pointer words carry no deleted bit; "deleted" is represented by the
//!   word targeting a *dummy* node whose value field holds the
//!   distinguished `DUMMY` constant and whose `l` field holds the real
//!   target.
//! * Resolving a sentinel word therefore takes an extra shared read (the
//!   candidate's value field), modeled as its own step; the subsequent
//!   read of a dummy's target field is folded into that step because a
//!   dummy's fields are immutable once published.
//! * Each pop operation owns a preassigned dummy arena slot (it may
//!   allocate one dummy per *successful* logical deletion).

use std::collections::HashMap;

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

use super::array::Side;
use super::list::{NodeM, NodeState};

const SL: usize = 0;
const SR: usize = 1;
const SENTL_VAL: u64 = 1;
const SENTR_VAL: u64 = 2;
/// The distinguished dummy marker value.
const DUMMY_VAL: u64 = 3;

/// Shared state: the node arena (sentinels, regular nodes, dummies).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DummyShared {
    /// The arena; indices are the model's pointers.
    pub nodes: Vec<NodeM>,
}

impl DummyShared {
    /// Resolves a sentinel word: `(real target, via-dummy?)`.
    fn resolve(&self, w: usize) -> (usize, bool) {
        if self.nodes[w].value == DUMMY_VAL {
            (self.nodes[w].l.0, true)
        } else {
            (w, false)
        }
    }

    /// The interior chain of *real* nodes, left to right.
    pub fn chain(&self) -> Result<Vec<usize>, String> {
        let (start, _) = self.resolve(self.nodes[SL].r.0);
        let mut out = Vec::new();
        let mut cur = start;
        let mut hops = 0;
        while cur != SR {
            if cur == SL {
                return Err("chain loops back to SL".into());
            }
            if hops > self.nodes.len() {
                return Err("chain does not terminate".into());
            }
            out.push(cur);
            cur = self.nodes[cur].r.0;
            hops += 1;
        }
        Ok(out)
    }

    /// Whether the right sentinel indirects through a dummy.
    pub fn right_deleted(&self) -> bool {
        self.resolve(self.nodes[SR].l.0).1
    }

    /// Whether the left sentinel indirects through a dummy.
    pub fn left_deleted(&self) -> bool {
        self.resolve(self.nodes[SL].r.0).1
    }
}

/// Program counters; registers inline. `w` is the raw sentinel word read,
/// `real`/`del` its resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Start,
    /// Read the candidate's value field to resolve dummy-ness, then
    /// dispatch (pop path).
    PopResolve { w: usize },
    /// As `PopResolve`, for push.
    PushResolve { w: usize },
    /// Pop: the sentinel pointed (directly) at the opposite sentinel —
    /// already linearized empty at the read; verify stability.
    PopSentinelConfirm { w: usize },
    /// Pop: read the real node's value (when resolution was direct, this
    /// is the same read; when via dummy, the victim's value).
    PopReadVal { w: usize, real: usize, del: bool },
    /// Pop: identity DCAS confirming emptiness.
    PopEmptyDcas { w: usize, real: usize },
    /// Pop: install a fresh dummy + null the value.
    PopMarkDcas { w: usize, real: usize, v: u64 },
    /// Push: splice-in DCAS.
    PushDcas { w: usize, real: usize },
    /// Delete: re-read sentinel word.
    DelReadSent,
    /// Delete: resolve the sentinel word.
    DelResolve { w: usize },
    /// Delete: read victim's outward pointer.
    DelReadNbr { w: usize, victim: usize },
    /// Delete: read neighbor's value.
    DelReadNbrVal { w: usize, victim: usize, nbr: usize },
    /// Delete: read neighbor's inward pointer, compare.
    DelReadNbrInward { w: usize, victim: usize, nbr: usize },
    /// Delete: splice-out DCAS.
    DelSpliceDcas { w: usize, victim: usize, nbr: usize, nbr_inward: usize },
    /// Delete: read the other sentinel word (two-null candidate).
    DelReadOtherSent { w: usize, victim: usize },
    /// Delete: resolve the other sentinel word.
    DelResolveOther { w: usize, victim: usize, ow: usize },
    /// Delete: two-null double splice.
    DelTwoNullDcas { w: usize, victim: usize, ow: usize, ovictim: usize },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DummyLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The dummy-node deque step machine.
pub struct DummyMachine {
    /// Per-thread operation scripts.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially.
    pub initial_items: Vec<u64>,
    node_for_push: HashMap<(usize, usize), usize>,
    dummy_for_pop: HashMap<(usize, usize), usize>,
    total_nodes: usize,
}

impl DummyMachine {
    /// Builds a machine (push values must be `>= 4` here — `3` is the
    /// dummy marker).
    pub fn new(scripts: Vec<Vec<DequeOp>>) -> Self {
        Self::with_initial(scripts, Vec::new())
    }

    /// Builds a machine with initial deque content.
    pub fn with_initial(scripts: Vec<Vec<DequeOp>>, initial_items: Vec<u64>) -> Self {
        let mut node_for_push = HashMap::new();
        let mut dummy_for_pop = HashMap::new();
        let mut next = 2 + initial_items.len();
        for (tid, script) in scripts.iter().enumerate() {
            for (op_idx, op) in script.iter().enumerate() {
                match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => {
                        assert!(*v >= 4, "push values must be >= 4 in the dummy model");
                        node_for_push.insert((tid, op_idx), next);
                        next += 1;
                    }
                    DequeOp::PopRight | DequeOp::PopLeft => {
                        dummy_for_pop.insert((tid, op_idx), next);
                        next += 1;
                    }
                    _ => panic!("batched ops are not modelled"),
                }
            }
        }
        for v in &initial_items {
            assert!(*v >= 4);
        }
        DummyMachine { scripts, initial_items, node_for_push, dummy_for_pop, total_nodes: next }
    }

    fn side_of(op: DequeOp) -> Side {
        match op {
            DequeOp::PushRight(_) | DequeOp::PopRight => Side::Right,
            DequeOp::PushLeft(_) | DequeOp::PopLeft => Side::Left,
            // The exhaustive machines model per-element transitions only;
            // batched chunk CASNs are covered by the linearizability
            // stress tests (scripts here never contain them).
            _ => panic!("batched ops are not modelled"),
        }
    }

    fn sent(side: Side) -> usize {
        match side {
            Side::Right => SR,
            Side::Left => SL,
        }
    }

    fn other_sent(side: Side) -> usize {
        match side {
            Side::Right => SL,
            Side::Left => SR,
        }
    }

    fn sent_inward(sh: &DummyShared, side: Side) -> usize {
        match side {
            Side::Right => sh.nodes[SR].l.0,
            Side::Left => sh.nodes[SL].r.0,
        }
    }

    fn set_sent_inward(sh: &mut DummyShared, side: Side, w: usize) {
        match side {
            Side::Right => sh.nodes[SR].l = (w, false),
            Side::Left => sh.nodes[SL].r = (w, false),
        }
    }

    fn outward(sh: &DummyShared, node: usize, side: Side) -> usize {
        match side {
            Side::Right => sh.nodes[node].l.0,
            Side::Left => sh.nodes[node].r.0,
        }
    }

    fn inward(sh: &DummyShared, node: usize, side: Side) -> usize {
        match side {
            Side::Right => sh.nodes[node].r.0,
            Side::Left => sh.nodes[node].l.0,
        }
    }

    fn set_inward(sh: &mut DummyShared, node: usize, side: Side, w: usize) {
        match side {
            Side::Right => sh.nodes[node].r = (w, false),
            Side::Left => sh.nodes[node].l = (w, false),
        }
    }
}

impl System for DummyMachine {
    type Shared = DummyShared;
    type Local = DummyLocal;

    fn initial_shared(&self) -> DummyShared {
        let blank = NodeM { l: (0, false), r: (0, false), value: 0, state: NodeState::Unallocated };
        let mut nodes = vec![blank; self.total_nodes];
        nodes[SL] = NodeM { l: (SL, false), r: (SR, false), value: SENTL_VAL, state: NodeState::Live };
        nodes[SR] = NodeM { l: (SL, false), r: (SR, false), value: SENTR_VAL, state: NodeState::Live };
        let k = self.initial_items.len();
        for (i, &v) in self.initial_items.iter().enumerate() {
            let id = 2 + i;
            let left = if i == 0 { SL } else { id - 1 };
            let right = if i == k - 1 { SR } else { id + 1 };
            nodes[id] = NodeM { l: (left, false), r: (right, false), value: v, state: NodeState::Live };
        }
        if k > 0 {
            nodes[SL].r = (2, false);
            nodes[SR].l = (2 + k - 1, false);
        }
        DummyShared { nodes }
    }

    fn initial_locals(&self) -> Vec<DummyLocal> {
        (0..self.scripts.len())
            .map(|tid| DummyLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut DummyShared, local: &mut DummyLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;
        let side = Self::side_of(op);
        let is_pop = matches!(op, DequeOp::PopRight | DequeOp::PopLeft);
        let sent = Self::sent(side);
        let other = Self::other_sent(side);

        let finish = |local: &mut DummyLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            // Read the sentinel inward word.
            Pc::Start => {
                let w = Self::sent_inward(sh, side);
                if is_pop && w == other {
                    // Directly at the opposite sentinel: linearize empty
                    // at this read (same argument as the bit variant).
                    local.pc = Pc::PopSentinelConfirm { w };
                    StepEvent::Linearize(op, DequeRet::Empty)
                } else {
                    local.pc = if is_pop { Pc::PopResolve { w } } else { Pc::PushResolve { w } };
                    StepEvent::Internal
                }
            }

            Pc::PopSentinelConfirm { w } => {
                let v = sh.nodes[w].value;
                let expect = if side == Side::Right { SENTL_VAL } else { SENTR_VAL };
                assert_eq!(v, expect, "sentinel-stability claim violated in dummy variant");
                local.op_idx += 1;
                local.pc = Pc::Start;
                StepEvent::Internal
            }

            // Read the candidate's value field: dummy or real?
            Pc::PopResolve { w } => {
                let val = sh.nodes[w].value;
                if val == DUMMY_VAL {
                    // Dummy fields are immutable once published: fold the
                    // target read.
                    let real = sh.nodes[w].l.0;
                    local.pc = Pc::PopReadVal { w, real, del: true };
                } else {
                    local.pc = Pc::PopReadVal { w, real: w, del: false };
                }
                StepEvent::Internal
            }

            Pc::PushResolve { w } => {
                let val = sh.nodes[w].value;
                if val == DUMMY_VAL {
                    local.pc = Pc::DelReadSent;
                } else {
                    local.pc = Pc::PushDcas { w, real: w };
                }
                StepEvent::Internal
            }

            Pc::PopReadVal { w, real, del } => {
                let v = sh.nodes[real].value;
                if del {
                    local.pc = Pc::DelReadSent;
                } else if v == if side == Side::Right { SENTL_VAL } else { SENTR_VAL } {
                    // Raced: the word resolved to the opposite sentinel
                    // after an intermediate state change; cannot happen
                    // when resolution was direct (Start handled it), but
                    // a dummy can never target a sentinel either.
                    unreachable!("dummy resolution led to a sentinel value");
                } else if v == 0 {
                    local.pc = Pc::PopEmptyDcas { w, real };
                } else {
                    local.pc = Pc::PopMarkDcas { w, real, v };
                }
                StepEvent::Internal
            }

            Pc::PopEmptyDcas { w, real } => {
                if Self::sent_inward(sh, side) == w && sh.nodes[real].value == 0 {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Install a fresh dummy targeting `real`, null the value.
            Pc::PopMarkDcas { w, real, v } => {
                if Self::sent_inward(sh, side) == w && sh.nodes[real].value == v {
                    let dummy = self.dummy_for_pop[&(local.tid, local.op_idx)];
                    debug_assert_eq!(sh.nodes[dummy].state, NodeState::Unallocated);
                    sh.nodes[dummy] = NodeM {
                        l: (real, false),
                        r: (0, false),
                        value: DUMMY_VAL,
                        state: NodeState::Live,
                    };
                    Self::set_sent_inward(sh, side, dummy);
                    sh.nodes[real].value = 0;
                    finish(local, DequeRet::Value(v))
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            Pc::PushDcas { w, real } => {
                let v = match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => v,
                    _ => unreachable!(),
                };
                let node = self.node_for_push[&(local.tid, local.op_idx)];
                if Self::sent_inward(sh, side) == w && Self::inward(sh, real, side) == sent {
                    debug_assert_eq!(sh.nodes[node].state, NodeState::Unallocated);
                    sh.nodes[node].value = v;
                    sh.nodes[node].state = NodeState::Live;
                    match side {
                        Side::Right => {
                            sh.nodes[node].l = (real, false);
                            sh.nodes[node].r = (SR, false);
                        }
                        Side::Left => {
                            sh.nodes[node].r = (real, false);
                            sh.nodes[node].l = (SL, false);
                        }
                    }
                    Self::set_sent_inward(sh, side, node);
                    Self::set_inward(sh, real, side, node);
                    finish(local, DequeRet::Okay)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            Pc::DelReadSent => {
                let w = Self::sent_inward(sh, side);
                local.pc = Pc::DelResolve { w };
                StepEvent::Internal
            }

            Pc::DelResolve { w } => {
                if sh.nodes[w].value == DUMMY_VAL {
                    let victim = sh.nodes[w].l.0;
                    local.pc = Pc::DelReadNbr { w, victim };
                } else {
                    local.pc = Pc::Start; // deletion already completed
                }
                StepEvent::Internal
            }

            Pc::DelReadNbr { w, victim } => {
                let nbr = Self::outward(sh, victim, side);
                local.pc = Pc::DelReadNbrVal { w, victim, nbr };
                StepEvent::Internal
            }

            Pc::DelReadNbrVal { w, victim, nbr } => {
                let v = sh.nodes[nbr].value;
                // The neighbor is reached via the victim's *own* link
                // field, never via a sentinel word, so it cannot be a
                // dummy.
                debug_assert_ne!(v, DUMMY_VAL);
                local.pc = if v != 0 {
                    Pc::DelReadNbrInward { w, victim, nbr }
                } else {
                    Pc::DelReadOtherSent { w, victim }
                };
                StepEvent::Internal
            }

            Pc::DelReadNbrInward { w, victim, nbr } => {
                let nbr_inward = Self::inward(sh, nbr, side);
                local.pc = if nbr_inward == victim {
                    Pc::DelSpliceDcas { w, victim, nbr, nbr_inward }
                } else {
                    Pc::DelReadSent
                };
                StepEvent::Internal
            }

            Pc::DelSpliceDcas { w, victim, nbr, nbr_inward } => {
                if Self::sent_inward(sh, side) == w && Self::inward(sh, nbr, side) == nbr_inward
                {
                    Self::set_sent_inward(sh, side, nbr);
                    Self::set_inward(sh, nbr, side, sent);
                    sh.nodes[victim].state = NodeState::Freed;
                    sh.nodes[w].state = NodeState::Freed; // the dummy
                    local.pc = Pc::Start;
                } else {
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }

            Pc::DelReadOtherSent { w, victim } => {
                let other_side = if side == Side::Right { Side::Left } else { Side::Right };
                let ow = Self::sent_inward(sh, other_side);
                local.pc = Pc::DelResolveOther { w, victim, ow };
                StepEvent::Internal
            }

            Pc::DelResolveOther { w, victim, ow } => {
                if sh.nodes[ow].value == DUMMY_VAL {
                    let ovictim = sh.nodes[ow].l.0;
                    local.pc = Pc::DelTwoNullDcas { w, victim, ow, ovictim };
                } else {
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }

            Pc::DelTwoNullDcas { w, victim, ow, ovictim } => {
                let other_side = if side == Side::Right { Side::Left } else { Side::Right };
                if Self::sent_inward(sh, side) == w
                    && Self::sent_inward(sh, other_side) == ow
                {
                    Self::set_sent_inward(sh, side, other);
                    Self::set_sent_inward(sh, other_side, sent);
                    assert_ne!(victim, ovictim, "two-null splice on a single node");
                    sh.nodes[victim].state = NodeState::Freed;
                    sh.nodes[ovictim].state = NodeState::Freed;
                    sh.nodes[w].state = NodeState::Freed;
                    sh.nodes[ow].state = NodeState::Freed;
                    local.pc = Pc::Start;
                } else {
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }
        })
    }

    fn rep_invariant(&self, sh: &DummyShared) -> Result<(), String> {
        if sh.nodes[SL].value != SENTL_VAL || sh.nodes[SR].value != SENTR_VAL {
            return Err("sentinel values corrupted".into());
        }
        let chain = sh.chain()?;

        // Sentinel words resolve into the chain.
        let (right_real, right_del) = sh.resolve(sh.nodes[SR].l.0);
        let (left_real, left_del) = sh.resolve(sh.nodes[SL].r.0);
        let rightmost = chain.last().copied().unwrap_or(SL);
        let leftmost = chain.first().copied().unwrap_or(SR);
        if right_real != rightmost {
            return Err(format!("SR->L resolves to {right_real}, rightmost is {rightmost}"));
        }
        if left_real != leftmost {
            return Err(format!("SL->R resolves to {left_real}, leftmost is {leftmost}"));
        }

        // Chain nodes: live, doubly linked, non-sentinel non-dummy values.
        for (i, &id) in chain.iter().enumerate() {
            let node = &sh.nodes[id];
            if node.state != NodeState::Live {
                return Err(format!("chain node {id} is {:?}", node.state));
            }
            if node.value == SENTL_VAL || node.value == SENTR_VAL || node.value == DUMMY_VAL {
                return Err(format!("interior node {id} holds a reserved value"));
            }
            let left_expect = if i == 0 { SL } else { chain[i - 1] };
            let right_expect = if i == chain.len() - 1 { SR } else { chain[i + 1] };
            if node.l.0 != left_expect || node.r.0 != right_expect {
                return Err(format!("node {id} links are inconsistent"));
            }
        }

        // Deleted-marking rules, as in the bit variant.
        if right_del {
            if chain.is_empty() {
                return Err("right dummy with empty chain".into());
            }
            if sh.nodes[rightmost].value != 0 {
                return Err("right dummy but rightmost non-null".into());
            }
        }
        if left_del {
            if chain.is_empty() {
                return Err("left dummy with empty chain".into());
            }
            if sh.nodes[leftmost].value != 0 {
                return Err("left dummy but leftmost non-null".into());
            }
        }
        for (i, &id) in chain.iter().enumerate() {
            if sh.nodes[id].value == 0 {
                let first_ok = i == 0 && left_del;
                let last_ok = i == chain.len() - 1 && right_del;
                if !first_ok && !last_ok {
                    return Err(format!("null node {id} without adjacent dummy marking"));
                }
            }
        }

        // Dummy census: live dummies are exactly those the sentinel words
        // go through.
        for (id, node) in sh.nodes.iter().enumerate().skip(2) {
            if node.state == NodeState::Live && node.value == DUMMY_VAL {
                let is_right = sh.nodes[SR].l.0 == id;
                let is_left = sh.nodes[SL].r.0 == id;
                if !is_right && !is_left {
                    return Err(format!("orphaned live dummy {id}"));
                }
            }
            if node.state == NodeState::Live
                && node.value != DUMMY_VAL
                && !chain.contains(&id)
            {
                return Err(format!("live node {id} is not linked"));
            }
            if node.state == NodeState::Freed && chain.contains(&id) {
                return Err(format!("freed node {id} still linked"));
            }
        }
        Ok(())
    }

    fn abstraction(&self, sh: &DummyShared) -> Vec<u64> {
        sh.chain()
            .expect("abstraction called on state violating R")
            .into_iter()
            .map(|id| sh.nodes[id].value)
            .filter(|&v| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_ops() {
        let m = DummyMachine::new(vec![vec![
            DequeOp::PushRight(5),
            DequeOp::PushLeft(6),
            DequeOp::PopRight,
            DequeOp::PopRight,
            DequeOp::PopRight,
            DequeOp::PopLeft,
        ]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        assert_eq!(report.linearizations, 6);
    }

    #[test]
    fn fig10_state_reachable() {
        // "Empty deque with one deleted cell marked by a right dummy node".
        let m = DummyMachine::with_initial(vec![vec![DequeOp::PopRight]], vec![5]);
        let mut seen = false;
        Explorer::default()
            .explore(&m, |sh: &DummyShared| {
                let chain = sh.chain().unwrap();
                if chain.len() == 1
                    && sh.nodes[chain[0]].value == 0
                    && sh.right_deleted()
                    && !sh.left_deleted()
                {
                    seen = true;
                }
            })
            .unwrap();
        assert!(seen, "Figure 10 state not reached");
    }

    #[test]
    fn two_thread_mixed() {
        let m = DummyMachine::new(vec![
            vec![DequeOp::PushRight(5), DequeOp::PopLeft],
            vec![DequeOp::PushLeft(6), DequeOp::PopRight],
        ]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert!(report.states > 30);
    }

    #[test]
    fn contending_deletes_both_outcomes() {
        // The Figure 16 race, dummy-variant edition.
        let m = DummyMachine::with_initial(
            vec![
                vec![DequeOp::PopRight, DequeOp::PopRight],
                vec![DequeOp::PopLeft, DequeOp::PopLeft],
            ],
            vec![5, 6],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
    }

    #[test]
    fn random_walks_larger_config() {
        let m = DummyMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft, DequeOp::PopRight],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20), DequeOp::PopLeft],
            ],
            vec![5, 6],
        );
        Explorer::default().random_walks(&m, 2_000, 0xD117).unwrap();
    }
}
