//! Step-machine encodings of the paper's algorithms.
//!
//! Each machine re-expresses one algorithm with explicit program counters
//! at the granularity of **shared-memory accesses**: every atomic read of
//! a shared word and every DCAS is one step (local computation rides along
//! with the access that feeds it, exactly as in the paper's model, where
//! only `Read`, `Write` and `DCAS` are machine operations). Program
//! counters are named after the line numbers of the paper's figures so
//! the encodings can be audited against the listings.

pub mod abp;
pub mod array;
pub mod chaselev;
pub mod dummy;
pub mod greenwald;
pub mod lfrc;
pub mod list;
pub mod sundell;

pub use abp::AbpMachine;
pub use array::{ArrayMachine, Side};
pub use chaselev::ChaseLevMachine;
pub use dummy::DummyMachine;
pub use greenwald::GreenwaldMachine;
pub use lfrc::LfrcMachine;
pub use list::ListMachine;
pub use sundell::SundellMachine;
