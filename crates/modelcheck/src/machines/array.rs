//! Step machine for the array-based deque (Figures 2, 3, 30, 31).

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

/// Which end an operation works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The right end (`R`).
    Right,
    /// The left end (`L`).
    Left,
}

/// Shared state: the two indices and the circular array (`0` is the
/// distinguished null).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayShared {
    /// The left index `L`.
    pub l: usize,
    /// The right index `R`.
    pub r: usize,
    /// The circular array `S`.
    pub slots: Vec<u64>,
}

/// Program counters, named for the figure lines they model. Registers
/// (the paper's `oldR`/`oldL`, `oldS`, `saveR`/`saveL`) are carried in
/// the variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// About to start the current op (line 2/3 loop head).
    Start,
    /// Pop line 5: read `S[newIdx]`, having read the index as `old_i`.
    PopReadSlot { old_i: usize },
    /// Pop line 7: optional re-read of the index.
    PopRevalidate { old_i: usize },
    /// Pop lines 8-10: the empty-confirming identity DCAS.
    PopEmptyDcas { old_i: usize },
    /// Pop lines 14-18: the main DCAS (strong or weak form).
    PopMainDcas { old_i: usize, old_s: u64 },
    /// Push line 5: read `S[old_i]`.
    PushReadSlot { old_i: usize },
    /// Push line 7: optional re-read of the index.
    PushRevalidate { old_i: usize, old_s: u64 },
    /// Push lines 8-10: the full-confirming identity DCAS.
    PushFullDcas { old_i: usize, old_s: u64 },
    /// Push lines 14-18: the main DCAS.
    PushMainDcas { old_i: usize },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The array-deque step machine: a capacity, the optional-fragment
/// configuration (Section 3), and one operation script per thread.
pub struct ArrayMachine {
    /// `length_S`.
    pub capacity: usize,
    /// Include line 7 (index revalidation before boundary DCAS).
    pub revalidate_index: bool,
    /// Include lines 17-18 (strong-DCAS failure analysis).
    pub strong_failure_check: bool,
    /// **Unsound variant** for demonstrating the checker: report "empty"
    /// directly from the line-5 slot read instead of confirming with the
    /// identity DCAS of lines 8-10. The paper's central point is that the
    /// boundary cases need an *instantaneous* view of the index and the
    /// adjacent cell; this flag removes that and the explorer finds the
    /// resulting non-linearizable execution.
    pub naive_empty_check: bool,
    /// Per-thread operation scripts.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially (pushed from the right before the run).
    pub initial_items: Vec<u64>,
}

impl ArrayMachine {
    /// Machine with the paper's published configuration.
    pub fn new(capacity: usize, scripts: Vec<Vec<DequeOp>>) -> Self {
        ArrayMachine {
            capacity,
            revalidate_index: true,
            strong_failure_check: true,
            naive_empty_check: false,
            scripts,
            initial_items: Vec::new(),
        }
    }

    /// Adds initial content.
    pub fn with_initial(mut self, items: Vec<u64>) -> Self {
        assert!(items.len() <= self.capacity);
        self.initial_items = items;
        self
    }

    /// Disables both optional fragments (the weak-DCAS-only variant).
    pub fn minimal(mut self) -> Self {
        self.revalidate_index = false;
        self.strong_failure_check = false;
        self
    }

    fn side_of(op: DequeOp) -> Side {
        match op {
            DequeOp::PushRight(_) | DequeOp::PopRight => Side::Right,
            DequeOp::PushLeft(_) | DequeOp::PopLeft => Side::Left,
            // The exhaustive machines model per-element transitions only;
            // batched chunk CASNs are covered by the linearizability
            // stress tests (scripts here never contain them).
            _ => panic!("batched ops are not modelled"),
        }
    }

    fn idx(&self, sh: &ArrayShared, side: Side) -> usize {
        match side {
            Side::Right => sh.r,
            Side::Left => sh.l,
        }
    }

    fn set_idx(&self, sh: &mut ArrayShared, side: Side, v: usize) {
        match side {
            Side::Right => sh.r = v,
            Side::Left => sh.l = v,
        }
    }

    /// The slot a pop reads (`R-1` / `L+1`), which is also the new index.
    fn pop_target(&self, side: Side, old_i: usize) -> usize {
        match side {
            Side::Right => (old_i + self.capacity - 1) % self.capacity,
            Side::Left => (old_i + 1) % self.capacity,
        }
    }

    /// The index a successful push advances to (`R+1` / `L-1`).
    fn push_new_idx(&self, side: Side, old_i: usize) -> usize {
        match side {
            Side::Right => (old_i + 1) % self.capacity,
            Side::Left => (old_i + self.capacity - 1) % self.capacity,
        }
    }

    /// Element count implied by the indices, resolving the empty/full
    /// ambiguity by occupancy (the paper's key observation is precisely
    /// that the indices alone cannot distinguish these two cases).
    fn count(&self, sh: &ArrayShared) -> usize {
        let n = self.capacity;
        let c = (sh.r + n - sh.l - 1) % n;
        if c == 0 {
            // r == l+1: empty or full.
            if sh.slots.iter().all(|&s| s != 0) {
                n
            } else {
                0
            }
        } else {
            c
        }
    }
}

impl System for ArrayMachine {
    type Shared = ArrayShared;
    type Local = ArrayLocal;

    fn initial_shared(&self) -> ArrayShared {
        let mut sh =
            ArrayShared { l: 0, r: 1 % self.capacity, slots: vec![0; self.capacity] };
        for &v in &self.initial_items {
            sh.slots[sh.r] = v;
            sh.r = (sh.r + 1) % self.capacity;
        }
        sh
    }

    fn initial_locals(&self) -> Vec<ArrayLocal> {
        (0..self.scripts.len())
            .map(|tid| ArrayLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn step(&self, sh: &mut ArrayShared, local: &mut ArrayLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;
        let side = Self::side_of(op);
        let is_pop = matches!(op, DequeOp::PopRight | DequeOp::PopLeft);

        let finish = |local: &mut ArrayLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            // Line 3: read the end index.
            Pc::Start => {
                let old_i = self.idx(sh, side);
                local.pc = if is_pop {
                    Pc::PopReadSlot { old_i }
                } else {
                    Pc::PushReadSlot { old_i }
                };
                StepEvent::Internal
            }

            // Pop line 5: read S[newIdx].
            Pc::PopReadSlot { old_i } => {
                let target = self.pop_target(side, old_i);
                let old_s = sh.slots[target];
                if old_s == 0 && self.naive_empty_check {
                    // Unsound shortcut: conclude emptiness from the bare
                    // slot read. The explorer exhibits the interleaving
                    // that falsifies this (see tests).
                    return Some(finish(local, DequeRet::Empty));
                }
                local.pc = if old_s == 0 {
                    if self.revalidate_index {
                        Pc::PopRevalidate { old_i }
                    } else {
                        Pc::PopEmptyDcas { old_i }
                    }
                } else {
                    Pc::PopMainDcas { old_i, old_s }
                };
                StepEvent::Internal
            }

            // Pop line 7: re-read the index; if moved, retry the loop.
            Pc::PopRevalidate { old_i } => {
                local.pc = if self.idx(sh, side) == old_i {
                    Pc::PopEmptyDcas { old_i }
                } else {
                    Pc::Start
                };
                StepEvent::Internal
            }

            // Pop lines 8-10: identity DCAS confirming emptiness.
            Pc::PopEmptyDcas { old_i } => {
                let target = self.pop_target(side, old_i);
                if self.idx(sh, side) == old_i && sh.slots[target] == 0 {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Pop lines 14-18: the main DCAS.
            Pc::PopMainDcas { old_i, old_s } => {
                let target = self.pop_target(side, old_i);
                let cur_i = self.idx(sh, side);
                let cur_s = sh.slots[target];
                if cur_i == old_i && cur_s == old_s {
                    self.set_idx(sh, side, target);
                    sh.slots[target] = 0;
                    finish(local, DequeRet::Value(old_s))
                } else if self.strong_failure_check && cur_i == old_i && cur_s == 0 {
                    // Lines 17-18: the strong DCAS's atomic failure view
                    // shows the index unmoved and the slot null — a
                    // competing pop on the other side stole the last item
                    // (Figure 6). Linearize "empty" at this failed DCAS.
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Push line 5: read S[old_i].
            Pc::PushReadSlot { old_i } => {
                let old_s = sh.slots[old_i];
                local.pc = if old_s != 0 {
                    if self.revalidate_index {
                        Pc::PushRevalidate { old_i, old_s }
                    } else {
                        Pc::PushFullDcas { old_i, old_s }
                    }
                } else {
                    Pc::PushMainDcas { old_i }
                };
                StepEvent::Internal
            }

            // Push line 7.
            Pc::PushRevalidate { old_i, old_s } => {
                local.pc = if self.idx(sh, side) == old_i {
                    Pc::PushFullDcas { old_i, old_s }
                } else {
                    Pc::Start
                };
                StepEvent::Internal
            }

            // Push lines 8-10: identity DCAS confirming fullness.
            Pc::PushFullDcas { old_i, old_s } => {
                if self.idx(sh, side) == old_i && sh.slots[old_i] == old_s {
                    finish(local, DequeRet::Full)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Push lines 14-18: the main DCAS.
            Pc::PushMainDcas { old_i } => {
                let v = match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => v,
                    _ => unreachable!(),
                };
                let cur_i = self.idx(sh, side);
                if cur_i == old_i && sh.slots[old_i] == 0 {
                    sh.slots[old_i] = v;
                    self.set_idx(sh, side, self.push_new_idx(side, old_i));
                    finish(local, DequeRet::Okay)
                } else if self.strong_failure_check && cur_i == old_i {
                    // Lines 17-18: index unmoved, so the cell is occupied:
                    // the deque is full at this instant.
                    finish(local, DequeRet::Full)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }
        })
    }

    /// Figure 18: indices in range and the non-null cells form the
    /// contiguous circular segment `(L+1 ..= R-1)`, with the `r == l+1`
    /// case split into all-null (empty) and all-non-null (full).
    fn rep_invariant(&self, sh: &ArrayShared) -> Result<(), String> {
        let n = self.capacity;
        if n == 0 {
            return Err("PhysQueueSize: capacity is zero".into());
        }
        if sh.l >= n || sh.r >= n {
            return Err(format!("RInRange/LInRange: l={} r={} n={}", sh.l, sh.r, n));
        }
        let c = self.count(sh);
        for k in 0..n {
            let idx = (sh.l + 1 + k) % n;
            let occupied = sh.slots[idx] != 0;
            if occupied != (k < c) {
                return Err(format!(
                    "occupancy not contiguous: l={} r={} count={c} slot[{idx}]={} \
                     (slots={:?})",
                    sh.l, sh.r, sh.slots[idx], sh.slots
                ));
            }
        }
        if (sh.l + 1 + c) % n != sh.r && c != n {
            return Err(format!(
                "index/count mismatch: l={} r={} count={c}",
                sh.l, sh.r
            ));
        }
        Ok(())
    }

    /// Figures 19-20: the sequence of values from `L+1` through `R-1`.
    fn abstraction(&self, sh: &ArrayShared) -> Vec<u64> {
        let c = self.count(sh);
        (0..c).map(|k| sh.slots[(sh.l + 1 + k) % self.capacity]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_push_pop() {
        let m = ArrayMachine::new(
            3,
            vec![vec![
                DequeOp::PushRight(5),
                DequeOp::PushLeft(6),
                DequeOp::PopRight,
                DequeOp::PopLeft,
                DequeOp::PopLeft,
            ]],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        assert_eq!(report.linearizations, 5);
    }

    #[test]
    fn sequential_full_and_empty() {
        let m = ArrayMachine::new(
            1,
            vec![vec![
                DequeOp::PopRight,          // empty
                DequeOp::PushRight(5),      // okay
                DequeOp::PushLeft(6),       // full
                DequeOp::PopLeft,           // 5
            ]],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
    }

    #[test]
    fn two_thread_push_race() {
        let m = ArrayMachine::new(
            4,
            vec![vec![DequeOp::PushRight(5)], vec![DequeOp::PushRight(6)]],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        let mut finals = report.final_abstracts.clone();
        finals.sort();
        assert_eq!(finals, vec![vec![5, 6], vec![6, 5]]);
    }

    #[test]
    fn initial_items_are_represented() {
        let m = ArrayMachine::new(4, vec![]).with_initial(vec![7, 8, 9]);
        let sh = m.initial_shared();
        assert_eq!(m.abstraction(&sh), vec![7, 8, 9]);
        m.rep_invariant(&sh).unwrap();
    }

    #[test]
    fn minimal_config_also_checks() {
        let m = ArrayMachine::new(
            2,
            vec![vec![DequeOp::PushRight(5), DequeOp::PopLeft], vec![DequeOp::PopRight]],
        )
        .minimal();
        Explorer::default().explore(&m, |_| {}).unwrap();
    }
}
