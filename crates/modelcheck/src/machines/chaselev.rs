//! Step machine for the growable Chase–Lev deque
//! (`dcas-workstealing`'s `ChaseLev`, used as the stealable private
//! tier of `TieredChaseLevWorkDeque`).
//!
//! Like ABP, Chase–Lev's linearization points are not fixed
//! instructions — the owner's `pop` linearizes at different places
//! depending on how the last-element race resolves — so the machine is
//! verified through the explorer's **history mode**
//! ([`Explorer::explore_histories`](crate::Explorer::explore_histories)),
//! with `push = pushRight`, `pop = popRight`, `steal = popLeft`.
//!
//! The model keeps **every buffer generation ever published**, not just
//! the current one, because that is the property worth checking: a
//! thief snapshots the buffer pointer *before* its claiming CAS, so a
//! concurrent `grow` can leave it reading its value out of a retired
//! buffer. The implementation argues this stale read is harmless —
//! the copy at grow time preserved every live slot, and the CAS on
//! `top` fails if the slot was consumed — and here the explorer checks
//! exactly that: each thief records which generation it read from, and
//! every interleaving's history (including ones where the read
//! generation is stale by the time the CAS succeeds) must remain
//! linearizable.
//!
//! Thread 0 is the owner (`PushRight`/`PopRight`); all other threads
//! are thieves (`PopLeft` only). An aborted steal retries from scratch,
//! mirroring how the tiered deque's `steal` loops on `Steal::Retry`.

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

/// One published buffer generation: a circular array of `cap` slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gen {
    /// Slot count (power of two in the implementation; the model only
    /// needs it nonzero).
    pub cap: usize,
    /// The slots, indexed circularly by `index % cap`.
    pub slots: Vec<u64>,
}

impl Gen {
    fn slot(&self, i: i64) -> u64 {
        self.slots[(i as usize) % self.cap]
    }
}

/// Shared state: all generations (last = current) plus the two indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClShared {
    /// Every buffer ever published, oldest first. Retired generations
    /// are retained verbatim — exactly like the implementation, which
    /// defers freeing them so racing thieves can still read stale slots.
    pub gens: Vec<Gen>,
    /// Owner's end (next free slot). Goes to `top - 1` transiently
    /// during an empty pop.
    pub bottom: i64,
    /// Thieves' end, advanced only by successful CASes.
    pub top: i64,
}

impl ClShared {
    fn current(&self) -> &Gen {
        self.gens.last().expect("at least one generation")
    }
}

/// Program counters, one step per shared-memory access.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Start,
    /// push: over-full; allocate, copy `[t, b)`, publish the new buffer.
    PushGrow { v: u64, t: i64 },
    /// push: write the slot at `bottom % cap` in the current buffer.
    PushWrite { v: u64 },
    /// push: release-publish `bottom + 1`.
    PushAdvance,
    /// pop: `bottom` already decremented to `b`; fence, then read `top`.
    PopFence { b: i64 },
    /// pop: last-element race; CAS `top: t -> t + 1`.
    PopCas { b: i64, v: u64 },
    /// pop: restore `bottom = b + 1` and report the CAS outcome.
    PopRestore { b: i64, won: bool, v: u64 },
    /// steal: `top` read as `t`; fence, then read `bottom`.
    StealReadBot { t: i64 },
    /// steal: acquire-read the buffer pointer (snapshot a generation).
    StealSnapshot { t: i64 },
    /// steal: speculative slot read from the snapshotted generation.
    StealReadSlot { t: i64, gen: usize },
    /// steal: the claiming CAS on `top`.
    StealCas { t: i64, v: u64 },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The Chase–Lev machine.
pub struct ChaseLevMachine {
    /// Initial buffer capacity (kept tiny — 2 — to force growth).
    pub initial_capacity: usize,
    /// Thread 0: owner script; threads 1..: thief scripts (PopLeft only).
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially (owner pushed before the run).
    pub initial_items: Vec<u64>,
}

impl ChaseLevMachine {
    /// Builds a machine; validates the owner/thief role split.
    pub fn new(initial_capacity: usize, scripts: Vec<Vec<DequeOp>>) -> Self {
        assert!(initial_capacity >= 1);
        for (tid, script) in scripts.iter().enumerate() {
            for op in script {
                match op {
                    DequeOp::PushRight(_) | DequeOp::PopRight => {
                        assert_eq!(tid, 0, "only thread 0 (the owner) may use the bottom end");
                    }
                    DequeOp::PopLeft => {
                        assert_ne!(tid, 0, "thieves are threads 1.. (owner uses popRight)");
                    }
                    DequeOp::PushLeft(_) => panic!("Chase-Lev has no pushLeft"),
                    _ => panic!("batched ops are not modelled"),
                }
            }
        }
        ChaseLevMachine { initial_capacity, scripts, initial_items: Vec::new() }
    }

    /// Adds initial content (must fit without triggering a grow).
    pub fn with_initial(mut self, items: Vec<u64>) -> Self {
        assert!(
            items.len() < self.initial_capacity,
            "initial items must leave the one-slot growth margin"
        );
        self.initial_items = items;
        self
    }
}

impl System for ChaseLevMachine {
    type Shared = ClShared;
    type Local = ClLocal;

    fn initial_shared(&self) -> ClShared {
        let mut slots = vec![0; self.initial_capacity];
        for (i, &v) in self.initial_items.iter().enumerate() {
            slots[i] = v;
        }
        ClShared {
            gens: vec![Gen { cap: self.initial_capacity, slots }],
            bottom: self.initial_items.len() as i64,
            top: 0,
        }
    }

    fn initial_locals(&self) -> Vec<ClLocal> {
        (0..self.scripts.len())
            .map(|tid| ClLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut ClShared, local: &mut ClLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;

        let finish = |local: &mut ClLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            Pc::Start => match op {
                DequeOp::PushRight(v) => {
                    // Owner: read top (Acquire; bottom is owner-local
                    // knowledge, folding its read here is sound because
                    // only the owner writes it) and branch on fullness.
                    let t = sh.top;
                    if sh.bottom - t >= sh.current().cap as i64 - 1 {
                        local.pc = Pc::PushGrow { v, t };
                    } else {
                        local.pc = Pc::PushWrite { v };
                    }
                    StepEvent::Internal
                }
                DequeOp::PopRight => {
                    // localBot-- ; relaxed store (owner-only variable:
                    // read-modify-write is one step for everyone else).
                    sh.bottom -= 1;
                    local.pc = Pc::PopFence { b: sh.bottom };
                    StepEvent::Internal
                }
                DequeOp::PopLeft => {
                    local.pc = Pc::StealReadBot { t: sh.top };
                    StepEvent::Internal
                }
                DequeOp::PushLeft(_) => unreachable!(),
                _ => unreachable!("batched ops rejected in new()"),
            },

            Pc::PushGrow { v, t } => {
                // Allocate double, copy the live window [t, b) using the
                // *earlier* top read (the implementation passes the
                // caller's values into grow), publish with Release. The
                // old generation stays in `gens`: retired, not freed.
                let old = sh.current().clone();
                let cap = old.cap * 2;
                let mut next = Gen { cap, slots: vec![0; cap] };
                let mut i = t;
                while i < sh.bottom {
                    next.slots[(i as usize) % cap] = old.slot(i);
                    i += 1;
                }
                sh.gens.push(next);
                local.pc = Pc::PushWrite { v };
                StepEvent::Internal
            }

            Pc::PushWrite { v } => {
                let b = sh.bottom;
                let gen = sh.gens.last_mut().expect("at least one generation");
                let cap = gen.cap;
                gen.slots[(b as usize) % cap] = v;
                local.pc = Pc::PushAdvance;
                StepEvent::Internal
            }

            Pc::PushAdvance => {
                // fence(Release); bottom = b + 1 — the publication point.
                sh.bottom += 1;
                finish(local, DequeRet::Okay)
            }

            Pc::PopFence { b } => {
                // fence(SeqCst); read top.
                let t = sh.top;
                if t < b {
                    // More than one element left: no thief can reach
                    // index b (top is monotonic and a successful steal
                    // of index i requires top == i), so the slot read
                    // folds in and the pop is already secure.
                    let v = sh.current().slot(b);
                    finish(local, DequeRet::Value(v))
                } else if t == b {
                    // Last element: race the thieves via CAS on top.
                    let v = sh.current().slot(b);
                    local.pc = Pc::PopCas { b, v };
                    StepEvent::Internal
                } else {
                    // Deque was empty; restore bottom and report.
                    sh.bottom = b + 1;
                    finish(local, DequeRet::Empty)
                }
            }

            Pc::PopCas { b, v } => {
                let won = sh.top == b;
                if won {
                    sh.top = b + 1;
                }
                local.pc = Pc::PopRestore { b, won, v };
                StepEvent::Internal
            }

            Pc::PopRestore { b, won, v } => {
                sh.bottom = b + 1;
                if won {
                    finish(local, DequeRet::Value(v))
                } else {
                    finish(local, DequeRet::Empty)
                }
            }

            Pc::StealReadBot { t } => {
                // fence(SeqCst); read bottom (Acquire).
                if sh.bottom - t <= 0 {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::StealSnapshot { t };
                    StepEvent::Internal
                }
            }

            Pc::StealSnapshot { t } => {
                // Acquire-read of the buffer pointer: remember *which*
                // generation, so a grow between here and the CAS makes
                // the later slot read demonstrably stale.
                local.pc = Pc::StealReadSlot { t, gen: sh.gens.len() - 1 };
                StepEvent::Internal
            }

            Pc::StealReadSlot { t, gen } => {
                // Speculative read — possibly from a retired generation.
                let v = sh.gens[gen].slot(t);
                local.pc = Pc::StealCas { t, v };
                StepEvent::Internal
            }

            Pc::StealCas { t, v } => {
                if sh.top == t {
                    sh.top = t + 1;
                    finish(local, DequeRet::Value(v))
                } else {
                    // Lost the race: retry the steal from scratch.
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }
        })
    }

    /// Minimal sanity only: history mode carries the real obligation.
    /// `bottom` may dip to `top - 1` transiently (empty pop) but never
    /// below, and capacities must be monotone (each grow doubles).
    fn rep_invariant(&self, sh: &ClShared) -> Result<(), String> {
        if sh.bottom < sh.top - 1 {
            return Err(format!("bottom {} below top {} - 1", sh.bottom, sh.top));
        }
        for pair in sh.gens.windows(2) {
            if pair[1].cap <= pair[0].cap {
                return Err(format!(
                    "generation capacities not increasing: {} then {}",
                    pair[0].cap, pair[1].cap
                ));
            }
        }
        Ok(())
    }

    fn abstraction(&self, sh: &ClShared) -> Vec<u64> {
        let gen = sh.current();
        (sh.top.max(0)..sh.bottom.max(sh.top)).map(|i| gen.slot(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn owner_only_with_growth() {
        // Capacity 2 grows on the third push; pops must drain in LIFO
        // order across the growth boundary.
        let m = ChaseLevMachine::new(
            2,
            vec![vec![
                DequeOp::PushRight(5),
                DequeOp::PushRight(6),
                DequeOp::PushRight(7),
                DequeOp::PopRight,
                DequeOp::PopRight,
                DequeOp::PopRight,
                DequeOp::PopRight,
            ]],
        );
        let report = Explorer::default().explore_histories(&m, 100).unwrap();
        assert_eq!(report.paths, 1);
        assert_eq!(report.operations, 7);
    }

    #[test]
    fn owner_vs_one_thief_race_for_last() {
        // The classic corner: one element, owner pops bottom while a
        // thief steals the top. Exactly one of them gets the value on
        // every path, and every path must be linearizable.
        let m = ChaseLevMachine::new(4, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
            .with_initial(vec![7]);
        let report = Explorer::default().explore_histories(&m, 100_000).unwrap();
        assert!(report.paths > 5, "expected several interleavings, got {}", report.paths);
    }

    #[test]
    fn steal_spans_growth() {
        // Capacity 2 with one resident element: the owner's two pushes
        // force a grow while the thief's steal is in flight, so some
        // interleavings have the thief's slot read hit the retired
        // generation after the CAS point moved to the new one. All must
        // linearize.
        let m = ChaseLevMachine::new(
            2,
            vec![
                vec![DequeOp::PushRight(6), DequeOp::PushRight(8), DequeOp::PopRight],
                vec![DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![5]);
        let report = Explorer::default().explore_histories(&m, 1_000_000).unwrap();
        assert!(report.paths > 50, "growth race underexplored: {} paths", report.paths);
    }

    #[test]
    fn two_thieves_and_owner() {
        let m = ChaseLevMachine::new(
            4,
            vec![
                vec![DequeOp::PopRight],
                vec![DequeOp::PopLeft],
                vec![DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![5, 6]);
        Explorer::default().explore_histories(&m, 5_000_000).unwrap();
    }

    #[test]
    fn push_races_thief_on_empty() {
        // Push racing a steal on an initially empty deque: the thief
        // either observes empty or takes the pushed value, never a
        // garbage slot.
        let m = ChaseLevMachine::new(
            2,
            vec![vec![DequeOp::PushRight(9), DequeOp::PopRight], vec![DequeOp::PopLeft]],
        );
        Explorer::default().explore_histories(&m, 1_000_000).unwrap();
    }
}
