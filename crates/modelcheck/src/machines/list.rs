//! Step machine for the linked-list deque (Figures 11, 13, 17, 32, 33,
//! 34).
//!
//! # Modeling choices
//!
//! * Nodes live in a fixed arena: index 0 is `SL`, index 1 is `SR`,
//!   index `2..2+k` hold the initial items, and each push operation of
//!   each thread owns one **preassigned** arena slot. Preassignment makes
//!   node identity deterministic across interleavings, which keeps the
//!   visited-state deduplication effective.
//! * Pointer words are `(node index, deleted bit)` pairs; values are
//!   `0 = null`, `1 = sentL`, `2 = sentR`, `>= 3` = user values.
//! * Physical deletion marks a node `Freed` but **retains its fields**:
//!   this is precisely the garbage-collection semantics the paper assumes
//!   (a processor that still holds a reference can keep reading a node
//!   that has been unlinked; the memory is not recycled). Freed nodes are
//!   never reused, so there is no ABA on node identity — again matching
//!   the GC assumption.
//! * The linearization point of a pop that returns "empty" after seeing
//!   the opposite sentinel (line 5 of Figures 11/32) is the **read at
//!   line 3**, exactly as assigned in Section 5.2; the machine then
//!   *verifies* the paper's supporting claim — that the value read at
//!   line 4 is necessarily the sentinel value — instead of assuming it.

use std::collections::HashMap;

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

use super::array::Side;

/// A pointer word: (arena index, deleted bit).
pub type PtrW = (usize, bool);

/// Allocation state of an arena slot (models the GC'd heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Not yet allocated by its owning push.
    Unallocated,
    /// Linked (or at least published) in the structure.
    Live,
    /// Physically deleted; fields frozen, never reused.
    Freed,
}

/// One modeled node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeM {
    /// Left pointer word.
    pub l: PtrW,
    /// Right pointer word.
    pub r: PtrW,
    /// Value word (0 null, 1 sentL, 2 sentR, >= 3 user).
    pub value: u64,
    /// Heap state.
    pub state: NodeState,
}

const SL: usize = 0;
const SR: usize = 1;
const SENTL_VAL: u64 = 1;
const SENTR_VAL: u64 = 2;

/// Shared state: the node arena (sentinels included).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ListShared {
    /// The arena; indices are the model's pointers.
    pub nodes: Vec<NodeM>,
}

impl ListShared {
    /// The interior chain (node indices) from left to right, if
    /// well-formed.
    pub fn chain(&self) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        let mut cur = self.nodes[SL].r.0;
        let mut hops = 0;
        while cur != SR {
            if cur == SL {
                return Err("chain loops back to SL".into());
            }
            if hops > self.nodes.len() {
                return Err("chain does not terminate".into());
            }
            out.push(cur);
            cur = self.nodes[cur].r.0;
            hops += 1;
        }
        Ok(out)
    }

    /// The deleted bit of the right sentinel's inward pointer.
    pub fn right_deleted(&self) -> bool {
        self.nodes[SR].l.1
    }

    /// The deleted bit of the left sentinel's inward pointer.
    pub fn left_deleted(&self) -> bool {
        self.nodes[SL].r.1
    }
}

/// Program counters (registers inline), shared by both sides; the side is
/// recovered from the current operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// Op loop head: read the operating sentinel's inward pointer
    /// (pop line 3 / push line 6 / nothing pending).
    Start,
    /// Pop line 4 after the line-3 read already linearized "empty":
    /// verify the stability claim and return.
    PopSentinelConfirm { old_p: PtrW },
    /// Pop line 4: read the victim's value.
    PopReadVal { old_p: PtrW },
    /// Pop lines 9-11: identity DCAS confirming emptiness.
    PopEmptyDcas { old_p: PtrW },
    /// Pop lines 14-18: the logical-deletion DCAS.
    PopMarkDcas { old_p: PtrW, v: u64 },
    /// Push lines 10-18: initialize the unpublished node and attempt the
    /// splice-in DCAS.
    PushDcas { old_p: PtrW },
    /// Delete line 3: (re)read the sentinel inward pointer.
    DelReadSent,
    /// Delete line 5: read the victim's outward pointer.
    DelReadNbr { old_p: PtrW },
    /// Delete line 6: read the neighbor's value.
    DelReadNbrVal { old_p: PtrW, nbr: usize },
    /// Delete lines 7-8: read the neighbor's inward pointer and compare.
    DelReadNbrInward { old_p: PtrW, nbr: usize },
    /// Delete lines 9-13: the splice-out DCAS.
    DelSpliceDcas { old_p: PtrW, nbr: usize, nbr_inward: PtrW },
    /// Delete line 17(-18/22): read the *other* sentinel's inward pointer.
    DelReadOtherSent { old_p: PtrW },
    /// Delete lines 19-25: the two-null double-splice DCAS (Figure 16).
    DelTwoNullDcas { old_p: PtrW, other: PtrW },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ListLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
}

/// The linked-list deque step machine.
pub struct ListMachine {
    /// Per-thread operation scripts.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially.
    pub initial_items: Vec<u64>,
    /// Arena slot owned by each push op.
    node_for_push: HashMap<(usize, usize), usize>,
    total_nodes: usize,
}

impl ListMachine {
    /// Builds a machine for the given scripts (all push values must be
    /// `>= 3` and, for meaningful checking, distinct).
    pub fn new(scripts: Vec<Vec<DequeOp>>) -> Self {
        Self::with_initial(scripts, Vec::new())
    }

    /// Builds a machine with initial deque content.
    pub fn with_initial(scripts: Vec<Vec<DequeOp>>, initial_items: Vec<u64>) -> Self {
        let mut node_for_push = HashMap::new();
        let mut next = 2 + initial_items.len();
        for (tid, script) in scripts.iter().enumerate() {
            for (op_idx, op) in script.iter().enumerate() {
                match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => {
                        assert!(*v >= 3, "push values must be >= 3 in the model");
                        node_for_push.insert((tid, op_idx), next);
                        next += 1;
                    }
                    _ => {}
                }
            }
        }
        for v in &initial_items {
            assert!(*v >= 3);
        }
        ListMachine { scripts, initial_items, node_for_push, total_nodes: next }
    }

    fn side_of(op: DequeOp) -> Side {
        match op {
            DequeOp::PushRight(_) | DequeOp::PopRight => Side::Right,
            DequeOp::PushLeft(_) | DequeOp::PopLeft => Side::Left,
            // The exhaustive machines model per-element transitions only;
            // batched chunk CASNs are covered by the linearizability
            // stress tests (scripts here never contain them).
            _ => panic!("batched ops are not modelled"),
        }
    }

    /// The sentinel a `side` operation works at (`SR` for right ops).
    fn sent(side: Side) -> usize {
        match side {
            Side::Right => SR,
            Side::Left => SL,
        }
    }

    fn other_sent(side: Side) -> usize {
        match side {
            Side::Right => SL,
            Side::Left => SR,
        }
    }

    /// Reads the operating sentinel's inward pointer (`SR->L` / `SL->R`).
    fn sent_inward(sh: &ListShared, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[SR].l,
            Side::Left => sh.nodes[SL].r,
        }
    }

    fn set_sent_inward(sh: &mut ListShared, side: Side, w: PtrW) {
        match side {
            Side::Right => sh.nodes[SR].l = w,
            Side::Left => sh.nodes[SL].r = w,
        }
    }

    /// A node's pointer *away from* the operating sentinel (the victim's
    /// left pointer for a right-side delete).
    fn outward(sh: &ListShared, node: usize, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[node].l,
            Side::Left => sh.nodes[node].r,
        }
    }

    /// A node's pointer *toward* the operating sentinel.
    fn inward(sh: &ListShared, node: usize, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[node].r,
            Side::Left => sh.nodes[node].l,
        }
    }

    fn set_inward(sh: &mut ListShared, node: usize, side: Side, w: PtrW) {
        match side {
            Side::Right => sh.nodes[node].r = w,
            Side::Left => sh.nodes[node].l = w,
        }
    }
}

impl System for ListMachine {
    type Shared = ListShared;
    type Local = ListLocal;

    fn initial_shared(&self) -> ListShared {
        let blank = NodeM { l: (0, false), r: (0, false), value: 0, state: NodeState::Unallocated };
        let mut nodes = vec![blank; self.total_nodes];
        nodes[SL] = NodeM {
            l: (SL, false), // unused, per the paper
            r: (SR, false),
            value: SENTL_VAL,
            state: NodeState::Live,
        };
        nodes[SR] = NodeM {
            l: (SL, false),
            r: (SR, false), // unused
            value: SENTR_VAL,
            state: NodeState::Live,
        };
        // Wire the initial chain SL <-> 2 <-> 3 <-> ... <-> SR.
        let k = self.initial_items.len();
        for (i, &v) in self.initial_items.iter().enumerate() {
            let id = 2 + i;
            let left = if i == 0 { SL } else { id - 1 };
            let right = if i == k - 1 { SR } else { id + 1 };
            nodes[id] = NodeM {
                l: (left, false),
                r: (right, false),
                value: v,
                state: NodeState::Live,
            };
        }
        if k > 0 {
            nodes[SL].r = (2, false);
            nodes[SR].l = (2 + k - 1, false);
        }
        ListShared { nodes }
    }

    fn initial_locals(&self) -> Vec<ListLocal> {
        (0..self.scripts.len())
            .map(|tid| ListLocal { tid, op_idx: 0, pc: Pc::Start })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut ListShared, local: &mut ListLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;
        let side = Self::side_of(op);
        let is_pop = matches!(op, DequeOp::PopRight | DequeOp::PopLeft);
        let sent = Self::sent(side);
        let other = Self::other_sent(side);

        let finish = |local: &mut ListLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            // Pop line 3 / push line 6: read the sentinel inward pointer.
            Pc::Start => {
                let old_p = Self::sent_inward(sh, side);
                if is_pop {
                    if old_p.0 == other && !old_p.1 {
                        // The read that observes "sentinel points to
                        // sentinel" is the linearization point of the
                        // empty pop (Section 5.2, Figure 28).
                        local.pc = Pc::PopSentinelConfirm { old_p };
                        StepEvent::Linearize(op, DequeRet::Empty)
                    } else {
                        local.pc = Pc::PopReadVal { old_p };
                        StepEvent::Internal
                    }
                } else if old_p.1 {
                    // Push line 7: complete the pending deletion first.
                    local.pc = Pc::DelReadSent;
                    StepEvent::Internal
                } else {
                    local.pc = Pc::PushDcas { old_p };
                    StepEvent::Internal
                }
            }

            // Pop line 4, on the already-linearized empty path: the paper
            // argues the value must still be the (stable) sentinel value.
            Pc::PopSentinelConfirm { old_p } => {
                let v = sh.nodes[old_p.0].value;
                let expect = if side == Side::Right { SENTL_VAL } else { SENTR_VAL };
                assert_eq!(
                    v, expect,
                    "paper's sentinel-stability claim violated: the value read at \
                     line 4 after observing the opposite sentinel at line 3 was {v}"
                );
                local.op_idx += 1;
                local.pc = Pc::Start;
                StepEvent::Internal
            }

            // Pop line 4: read the victim's value.
            Pc::PopReadVal { old_p } => {
                let v = sh.nodes[old_p.0].value;
                assert_ne!(v, if side == Side::Right { SENTL_VAL } else { SENTR_VAL },
                    "non-sentinel pointer led to a sentinel value");
                if old_p.1 {
                    // Line 6: pending deletion on this side.
                    local.pc = Pc::DelReadSent;
                } else if v == 0 {
                    local.pc = Pc::PopEmptyDcas { old_p };
                } else {
                    local.pc = Pc::PopMarkDcas { old_p, v };
                }
                StepEvent::Internal
            }

            // Pop lines 9-11: identity DCAS on (sentinel word, value).
            Pc::PopEmptyDcas { old_p } => {
                if Self::sent_inward(sh, side) == old_p && sh.nodes[old_p.0].value == 0 {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Pop lines 14-18: the logical deletion (Figure 12).
            Pc::PopMarkDcas { old_p, v } => {
                if Self::sent_inward(sh, side) == old_p && sh.nodes[old_p.0].value == v {
                    Self::set_sent_inward(sh, side, (old_p.0, true));
                    sh.nodes[old_p.0].value = 0;
                    finish(local, DequeRet::Value(v))
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Push lines 10-18: initialize the unpublished node (local
            // writes, folded into this step per the paper's footnote 7)
            // and attempt the two-pointer splice-in (Figure 14).
            Pc::PushDcas { old_p } => {
                let v = match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => v,
                    _ => unreachable!(),
                };
                let node = self.node_for_push[&(local.tid, local.op_idx)];
                if Self::sent_inward(sh, side) == old_p
                    && Self::inward(sh, old_p.0, side) == (sent, false)
                {
                    debug_assert_eq!(sh.nodes[node].state, NodeState::Unallocated);
                    sh.nodes[node].value = v;
                    sh.nodes[node].state = NodeState::Live;
                    match side {
                        Side::Right => {
                            sh.nodes[node].l = old_p;
                            sh.nodes[node].r = (SR, false);
                        }
                        Side::Left => {
                            sh.nodes[node].r = old_p;
                            sh.nodes[node].l = (SL, false);
                        }
                    }
                    Self::set_sent_inward(sh, side, (node, false));
                    Self::set_inward(sh, old_p.0, side, (node, false));
                    finish(local, DequeRet::Okay)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Delete line 3.
            Pc::DelReadSent => {
                let old_p = Self::sent_inward(sh, side);
                local.pc = if !old_p.1 {
                    Pc::Start // line 4: deletion already completed
                } else {
                    Pc::DelReadNbr { old_p }
                };
                StepEvent::Internal
            }

            // Delete line 5: read the victim's outward pointer. (The
            // victim may already be Freed — reading its frozen fields is
            // exactly what the GC assumption permits.)
            Pc::DelReadNbr { old_p } => {
                let nbr = Self::outward(sh, old_p.0, side).0;
                local.pc = Pc::DelReadNbrVal { old_p, nbr };
                StepEvent::Internal
            }

            // Delete line 6.
            Pc::DelReadNbrVal { old_p, nbr } => {
                let v = sh.nodes[nbr].value;
                local.pc = if v != 0 {
                    Pc::DelReadNbrInward { old_p, nbr }
                } else {
                    Pc::DelReadOtherSent { old_p }
                };
                StepEvent::Internal
            }

            // Delete lines 7-8.
            Pc::DelReadNbrInward { old_p, nbr } => {
                let nbr_inward = Self::inward(sh, nbr, side);
                local.pc = if nbr_inward.0 == old_p.0 {
                    Pc::DelSpliceDcas { old_p, nbr, nbr_inward }
                } else {
                    Pc::DelReadSent
                };
                StepEvent::Internal
            }

            // Delete lines 9-13: splice the null node out (Figure 15).
            // Not a linearization point: the explorer checks A unchanged
            // (the paper's Figure 29 verification condition).
            Pc::DelSpliceDcas { old_p, nbr, nbr_inward } => {
                if Self::sent_inward(sh, side) == old_p
                    && Self::inward(sh, nbr, side) == nbr_inward
                {
                    Self::set_sent_inward(sh, side, (nbr, false));
                    Self::set_inward(sh, nbr, side, (sent, false));
                    sh.nodes[old_p.0].state = NodeState::Freed;
                    local.pc = Pc::Start;
                } else {
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }

            // Delete line 17 (+ the deleted-bit test).
            Pc::DelReadOtherSent { old_p } => {
                let other_w = Self::sent_inward(
                    sh,
                    if side == Side::Right { Side::Left } else { Side::Right },
                );
                local.pc = if other_w.1 {
                    Pc::DelTwoNullDcas { old_p, other: other_w }
                } else {
                    Pc::DelReadSent
                };
                StepEvent::Internal
            }

            // Delete lines 19-25: both remaining nodes are null; point the
            // sentinels at each other (the Figure 16 race).
            Pc::DelTwoNullDcas { old_p, other: other_w } => {
                let other_side = if side == Side::Right { Side::Left } else { Side::Right };
                if Self::sent_inward(sh, side) == old_p
                    && Self::sent_inward(sh, other_side) == other_w
                {
                    Self::set_sent_inward(sh, side, (other, false));
                    Self::set_sent_inward(sh, other_side, (sent, false));
                    assert_ne!(old_p.0, other_w.0, "two-null splice on a single node");
                    sh.nodes[old_p.0].state = NodeState::Freed;
                    sh.nodes[other_w.0].state = NodeState::Freed;
                    local.pc = Pc::Start;
                } else {
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }
        })
    }

    /// The representation invariant of Figures 24-25, recast over the
    /// arena model.
    fn rep_invariant(&self, sh: &ListShared) -> Result<(), String> {
        // Sentinels are fixed and hold their distinguished values.
        if sh.nodes[SL].value != SENTL_VAL || sh.nodes[SR].value != SENTR_VAL {
            return Err("LeftSent/RightSent: sentinel values corrupted".into());
        }
        if sh.nodes[SL].state != NodeState::Live || sh.nodes[SR].state != NodeState::Live {
            return Err("sentinels must stay live".into());
        }

        // The chain is finite and acyclic (DistinctNodes / SeqLength).
        let chain = sh.chain()?;

        // Interior nodes are live; doubly-linked pointers agree
        // (RightPointers / LeftPointers); no deleted bits on interior
        // words.
        for (i, &id) in chain.iter().enumerate() {
            let node = &sh.nodes[id];
            if node.state != NodeState::Live {
                return Err(format!("chain node {id} is {:?}", node.state));
            }
            let left_expect = if i == 0 { SL } else { chain[i - 1] };
            let right_expect = if i == chain.len() - 1 { SR } else { chain[i + 1] };
            if node.l != (left_expect, false) {
                return Err(format!(
                    "LeftPointers: node {id} has l={:?}, expected ({left_expect}, false)",
                    node.l
                ));
            }
            if node.r != (right_expect, false) {
                return Err(format!(
                    "RightPointers: node {id} has r={:?}, expected ({right_expect}, false)",
                    node.r
                ));
            }
            // Interior values are null or real (never sentinels).
            if node.value == SENTL_VAL || node.value == SENTR_VAL {
                return Err(format!("interior node {id} holds a sentinel value"));
            }
        }

        // Sentinel inward words close the chain.
        let sr_l = sh.nodes[SR].l;
        let sl_r = sh.nodes[SL].r;
        let rightmost = chain.last().copied().unwrap_or(SL);
        let leftmost = chain.first().copied().unwrap_or(SR);
        if sr_l.0 != rightmost {
            return Err(format!("SR->L points to {} but rightmost is {rightmost}", sr_l.0));
        }
        if sl_r.0 != leftmost {
            return Err(format!("SL->R points to {} but leftmost is {leftmost}", sl_r.0));
        }

        // Deleted bits imply an adjacent null node (and vice versa):
        // the four NonDelNonSentNodesHaveRealVals conjuncts of Figure 25.
        if sr_l.1 {
            if chain.is_empty() {
                return Err("SR->L deleted but the chain is empty".into());
            }
            if sh.nodes[rightmost].value != 0 {
                return Err("SR->L deleted but the rightmost node is non-null".into());
            }
        }
        if sl_r.1 {
            if chain.is_empty() {
                return Err("SL->R deleted but the chain is empty".into());
            }
            if sh.nodes[leftmost].value != 0 {
                return Err("SL->R deleted but the leftmost node is non-null".into());
            }
        }
        for (i, &id) in chain.iter().enumerate() {
            if sh.nodes[id].value == 0 {
                let first_ok = i == 0 && sl_r.1;
                let last_ok = i == chain.len() - 1 && sr_l.1;
                if !first_ok && !last_ok {
                    return Err(format!(
                        "null node {id} is not adjacent to a deleted-marked sentinel \
                         (chain {chain:?}, sl_r={sl_r:?}, sr_l={sr_l:?})"
                    ));
                }
            }
        }

        // Freed and unallocated nodes are outside the chain and hold no
        // live value.
        for (id, node) in sh.nodes.iter().enumerate().skip(2) {
            match node.state {
                NodeState::Unallocated => {
                    if node.value != 0 {
                        return Err(format!("unallocated node {id} has a value"));
                    }
                }
                NodeState::Freed => {
                    if chain.contains(&id) {
                        return Err(format!("freed node {id} is still linked"));
                    }
                    if node.value != 0 {
                        return Err(format!(
                            "freed node {id} still holds value {} (only null nodes are \
                             physically deleted)",
                            node.value
                        ));
                    }
                }
                NodeState::Live => {
                    if !chain.contains(&id) {
                        return Err(format!("live node {id} is not linked"));
                    }
                }
            }
        }
        Ok(())
    }

    /// The abstraction function: the non-null interior values, left to
    /// right.
    fn abstraction(&self, sh: &ListShared) -> Vec<u64> {
        sh.chain()
            .expect("abstraction called on state violating R")
            .into_iter()
            .map(|id| sh.nodes[id].value)
            .filter(|&v| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_ops() {
        let m = ListMachine::new(vec![vec![
            DequeOp::PushRight(5),
            DequeOp::PushLeft(6),
            DequeOp::PopRight,
            DequeOp::PopRight,
            DequeOp::PopRight,
            DequeOp::PopLeft,
        ]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        assert_eq!(report.linearizations, 6);
    }

    #[test]
    fn initial_items_abstraction() {
        let m = ListMachine::with_initial(vec![], vec![7, 8, 9]);
        let sh = m.initial_shared();
        m.rep_invariant(&sh).unwrap();
        assert_eq!(m.abstraction(&sh), vec![7, 8, 9]);
    }

    #[test]
    fn two_thread_opposite_pushes() {
        let m = ListMachine::new(vec![vec![DequeOp::PushRight(5)], vec![DequeOp::PushLeft(6)]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![6, 5]]);
    }

    #[test]
    fn pop_after_remote_mark_sees_empty() {
        // Push then pop right leaves a right-deleted null node; a popLeft
        // script must linearize Empty through the identity DCAS.
        let m = ListMachine::new(vec![vec![
            DequeOp::PushRight(5),
            DequeOp::PopRight,
            DequeOp::PopLeft,
        ]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
    }

    #[test]
    fn two_null_cleanup_runs() {
        // One element popped from each side leaves two nulls; the next op
        // must double-splice (sequentially deterministic).
        let m = ListMachine::new(vec![vec![
            DequeOp::PushLeft(5),
            DequeOp::PushRight(6),
            DequeOp::PopRight,
            DequeOp::PopLeft,
            DequeOp::PopRight,
        ]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        // All four non-sentinel nodes end up freed.
        for sh in &report.final_shared {
            for node in sh.nodes.iter().skip(2) {
                assert_eq!(node.state, NodeState::Freed);
            }
        }
    }
}
