//! Step machine for the **LFRC (GC-free) list deque** — an exhaustive
//! audit of the reference-counting transformation in
//! `dcas-deque::list_lfrc`.
//!
//! # What is modeled, and at what granularity
//!
//! The LFRC primitives are modeled at *primitive* granularity rather than
//! word granularity:
//!
//! * `load_ptr` (LFRCLoad) is one atomic step. This is a sound
//!   abstraction: the implementation's `DCAS(slot, &target.rc, w, rc, w,
//!   rc+1)` succeeds only when the slot is unchanged, so a successful
//!   `load_ptr` is observationally an atomic "read slot + increment its
//!   target's count", and failures are pure internal retries.
//! * `add_ref` / `release` are one atomic step each (single-word CAS
//!   loops whose failures have no external effect). A `release` that
//!   drops the last reference performs the reclamation cascade within
//!   the step — the cascade only touches nodes that have no other
//!   references, so no interleaving is hidden.
//! * The algorithm's DCASes are one step each, as in the other machines.
//!
//! # The audited invariant
//!
//! The machine tracks a **ghost count** per node: every step that
//! acquires or drops a *local* reference also updates the ghost, so the
//! representation invariant can check, in every reachable state,
//!
//! ```text
//! rc(n) == #{ live pointer slots targeting n } + ghost_local_refs(n)
//! ```
//!
//! exactly — plus: `Freed ⇒ rc == 0`, freed exactly once, values only
//! dying on null nodes, and no dead two-node cycle surviving (the
//! explicit cycle-break is modeled too). Any accounting slip — a missed
//! increment, a double release, a leak, a premature free — fails the
//! invariant at the first state where it occurs, with a replayable
//! schedule.

use std::collections::HashMap;

use dcas_linearize::{DequeOp, DequeRet};

use crate::explore::{StepEvent, System};

use super::array::Side;

const SL: usize = 0;
const SR: usize = 1;
const SENTL_VAL: u64 = 1;
const SENTR_VAL: u64 = 2;

/// Pointer word: (node index, deleted bit).
pub type PtrW = (usize, bool);

/// Node lifecycle in the type-stable pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Life {
    /// Owned by its future push op; untouched.
    Unallocated,
    /// Allocated (published or about to be).
    Live,
    /// Count reached zero; recycled to the pool. Fields cleared.
    Freed,
}

/// One modeled node, with its reference count and the ghost tally of
/// local references (updated in lockstep by the machine itself).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeL {
    /// Left pointer word.
    pub l: PtrW,
    /// Right pointer word.
    pub r: PtrW,
    /// Value word (0 null, 1 sentL, 2 sentR, >= 3 user).
    pub value: u64,
    /// The implementation-visible reference count.
    pub rc: u32,
    /// Ghost: local references currently held by in-flight operations.
    pub ghost_local: u32,
    /// Lifecycle.
    pub life: Life,
}

/// Shared state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LfrcShared {
    /// Arena: 0 = SL, 1 = SR, then initial items, then per-push slots.
    pub nodes: Vec<NodeL>,
}

impl LfrcShared {
    /// The interior chain.
    pub fn chain(&self) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        let mut cur = self.nodes[SL].r.0;
        let mut hops = 0;
        while cur != SR {
            if cur == SL || hops > self.nodes.len() {
                return Err("malformed chain".into());
            }
            out.push(cur);
            cur = self.nodes[cur].r.0;
            hops += 1;
        }
        Ok(out)
    }
}

/// Program counters; each variant names the LFRC-transformed step it
/// models. Words held in registers carry counted local references that
/// the machine releases (and un-ghosts) on every exit path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Start,
    /// Pop: the pointer read observed the opposite sentinel and already
    /// linearized "empty"; verify the stability claim and retire the op.
    PopSentinelConfirm { w: PtrW },
    PopReadVal { w: PtrW },
    PopEmptyDcas { w: PtrW },
    PopMarkDcas { w: PtrW, v: u64 },
    PushPrepare { w: PtrW },
    PushDcas { w: PtrW },
    DelReadSent,
    DelReadNbr { w: PtrW },
    DelReadNbrVal { w: PtrW, nbr_w: PtrW },
    DelReadNbrInward { w: PtrW, nbr_w: PtrW },
    DelSpliceDcas { w: PtrW, nbr_w: PtrW, nbr_inward: PtrW },
    DelReadOtherSent { w: PtrW, nbr_w: PtrW },
    DelTwoNullDcas { w: PtrW, nbr_w: PtrW, ow: PtrW },
}

/// Per-thread control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LfrcLocal {
    tid: usize,
    op_idx: usize,
    pc: Pc,
    /// Whether this thread's pending push has taken its creator ref yet.
    push_initialized: bool,
}

/// The LFRC deque step machine.
pub struct LfrcMachine {
    /// Per-thread operation scripts.
    pub scripts: Vec<Vec<DequeOp>>,
    /// Values present initially.
    pub initial_items: Vec<u64>,
    /// Disable the two-null cycle break to demonstrate (in the negative
    /// tests) the dead-cycle leak that plain reference counting cannot
    /// collect.
    pub break_cycle_enabled: bool,
    node_for_push: HashMap<(usize, usize), usize>,
    total_nodes: usize,
}

impl LfrcMachine {
    /// Builds a machine (push values `>= 3`).
    pub fn new(scripts: Vec<Vec<DequeOp>>) -> Self {
        Self::with_initial(scripts, Vec::new())
    }

    /// Builds a machine with initial content.
    pub fn with_initial(scripts: Vec<Vec<DequeOp>>, initial_items: Vec<u64>) -> Self {
        let mut node_for_push = HashMap::new();
        let mut next = 2 + initial_items.len();
        for (tid, script) in scripts.iter().enumerate() {
            for (op_idx, op) in script.iter().enumerate() {
                if let DequeOp::PushRight(v) | DequeOp::PushLeft(v) = op {
                    assert!(*v >= 3);
                    node_for_push.insert((tid, op_idx), next);
                    next += 1;
                }
            }
        }
        LfrcMachine { scripts, initial_items, break_cycle_enabled: true, node_for_push, total_nodes: next }
    }

    fn side_of(op: DequeOp) -> Side {
        match op {
            DequeOp::PushRight(_) | DequeOp::PopRight => Side::Right,
            DequeOp::PushLeft(_) | DequeOp::PopLeft => Side::Left,
            // The exhaustive machines model per-element transitions only;
            // batched chunk CASNs are covered by the linearizability
            // stress tests (scripts here never contain them).
            _ => panic!("batched ops are not modelled"),
        }
    }

    fn sent(side: Side) -> usize {
        match side {
            Side::Right => SR,
            Side::Left => SL,
        }
    }

    fn other_sent(side: Side) -> usize {
        match side {
            Side::Right => SL,
            Side::Left => SR,
        }
    }

    fn sent_inward(sh: &LfrcShared, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[SR].l,
            Side::Left => sh.nodes[SL].r,
        }
    }

    fn set_sent_inward(sh: &mut LfrcShared, side: Side, w: PtrW) {
        match side {
            Side::Right => sh.nodes[SR].l = w,
            Side::Left => sh.nodes[SL].r = w,
        }
    }

    fn outward(sh: &LfrcShared, n: usize, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[n].l,
            Side::Left => sh.nodes[n].r,
        }
    }

    fn inward(sh: &LfrcShared, n: usize, side: Side) -> PtrW {
        match side {
            Side::Right => sh.nodes[n].r,
            Side::Left => sh.nodes[n].l,
        }
    }

    fn set_inward(sh: &mut LfrcShared, n: usize, side: Side, w: PtrW) {
        match side {
            Side::Right => sh.nodes[n].r = w,
            Side::Left => sh.nodes[n].l = w,
        }
    }

    fn is_sentinel(n: usize) -> bool {
        n == SL || n == SR
    }

    /// Acquire one local reference (LFRCLoad's increment / addToRC) and
    /// record it in the ghost.
    fn acquire_local(sh: &mut LfrcShared, n: usize) {
        if Self::is_sentinel(n) {
            return;
        }
        assert_eq!(sh.nodes[n].life, Life::Live, "acquiring a ref to node {n} that is {:?}", sh.nodes[n].life);
        sh.nodes[n].rc += 1;
        sh.nodes[n].ghost_local += 1;
    }

    /// Drop one local reference; reclaim on zero. A dying node's
    /// outgoing links are *slot* references and cascade as such.
    fn release_local(sh: &mut LfrcShared, w: PtrW) {
        let n = w.0;
        if Self::is_sentinel(n) {
            return;
        }
        assert!(sh.nodes[n].rc >= 1, "rc underflow on node {n}");
        assert!(sh.nodes[n].ghost_local >= 1, "ghost underflow on node {n}");
        sh.nodes[n].rc -= 1;
        sh.nodes[n].ghost_local -= 1;
        if sh.nodes[n].rc == 0 {
            let mut children = Vec::new();
            Self::reclaim(sh, n, &mut children);
            Self::cascade_slot_releases(sh, children);
        }
    }

    /// Drop one *slot* reference (an overwritten pointer slot's count).
    fn release_slot(sh: &mut LfrcShared, n: usize) {
        Self::cascade_slot_releases(sh, vec![n]);
    }

    /// Releases a batch of slot references, reclaiming and cascading.
    fn cascade_slot_releases(sh: &mut LfrcShared, seed: Vec<usize>) {
        let mut stack = seed;
        while let Some(c) = stack.pop() {
            if Self::is_sentinel(c) {
                continue;
            }
            assert!(sh.nodes[c].rc >= 1, "slot rc underflow on node {c}");
            sh.nodes[c].rc -= 1;
            if sh.nodes[c].rc == 0 {
                Self::reclaim(sh, c, &mut stack);
            }
        }
    }

    fn reclaim(sh: &mut LfrcShared, n: usize, children: &mut Vec<usize>) {
        assert_eq!(sh.nodes[n].ghost_local, 0, "node {n} freed while locals outstanding");
        assert_eq!(sh.nodes[n].value, 0, "node {n} freed holding a value");
        assert_eq!(sh.nodes[n].life, Life::Live, "double free of node {n}");
        children.push(sh.nodes[n].l.0);
        children.push(sh.nodes[n].r.0);
        sh.nodes[n].life = Life::Freed;
        sh.nodes[n].l = (SL, false);
        sh.nodes[n].r = (SL, false);
    }

    /// The post-double-splice cycle break (mirrors
    /// `RawLfrcListDeque::break_cycle`).
    fn break_cycle(sh: &mut LfrcShared, right: usize, left: usize) {
        if sh.nodes[right].l.0 == left {
            sh.nodes[right].l = (SL, false);
            Self::release_slot(sh, left);
        }
        if sh.nodes[left].r.0 == right {
            sh.nodes[left].r = (SR, false);
            Self::release_slot(sh, right);
        }
    }
}

impl System for LfrcMachine {
    type Shared = LfrcShared;
    type Local = LfrcLocal;

    fn initial_shared(&self) -> LfrcShared {
        let blank = NodeL {
            l: (SL, false),
            r: (SL, false),
            value: 0,
            rc: 0,
            ghost_local: 0,
            life: Life::Unallocated,
        };
        let mut nodes = vec![blank.clone(); self.total_nodes];
        nodes[SL] = NodeL {
            l: (SL, false),
            r: (SR, false),
            value: SENTL_VAL,
            rc: 0,
            ghost_local: 0,
            life: Life::Live,
        };
        nodes[SR] = NodeL {
            l: (SL, false),
            r: (SR, false),
            value: SENTR_VAL,
            rc: 0,
            ghost_local: 0,
            life: Life::Live,
        };
        let k = self.initial_items.len();
        for (i, &v) in self.initial_items.iter().enumerate() {
            let id = 2 + i;
            let left = if i == 0 { SL } else { id - 1 };
            let right = if i == k - 1 { SR } else { id + 1 };
            // Slot references: one from each neighbor's link (sentinel
            // slots included — slot refs are counted regardless of who
            // holds the slot; only *sentinel targets* are uncounted).
            nodes[id] = NodeL {
                l: (left, false),
                r: (right, false),
                value: v,
                rc: 2,
                ghost_local: 0,
                life: Life::Live,
            };
        }
        if k > 0 {
            nodes[SL].r = (2, false);
            nodes[SR].l = (2 + k - 1, false);
        }
        LfrcShared { nodes }
    }

    fn initial_locals(&self) -> Vec<LfrcLocal> {
        (0..self.scripts.len())
            .map(|tid| LfrcLocal { tid, op_idx: 0, pc: Pc::Start, push_initialized: false })
            .collect()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn step(&self, sh: &mut LfrcShared, local: &mut LfrcLocal) -> Option<StepEvent> {
        let op = *self.scripts[local.tid].get(local.op_idx)?;
        let side = Self::side_of(op);
        let is_pop = matches!(op, DequeOp::PopRight | DequeOp::PopLeft);
        let sent = Self::sent(side);
        let other = Self::other_sent(side);

        let finish = |local: &mut LfrcLocal, ret: DequeRet| {
            local.op_idx += 1;
            local.pc = Pc::Start;
            local.push_initialized = false;
            StepEvent::Linearize(op, ret)
        };

        Some(match std::mem::replace(&mut local.pc, Pc::Start) {
            // load_ptr of the sentinel inward word: atomic read+acquire.
            Pc::Start => {
                let w = Self::sent_inward(sh, side);
                Self::acquire_local(sh, w.0);
                if is_pop && w.0 == other && !w.1 {
                    // The pointer read observing the opposite sentinel is
                    // the linearization point of the empty pop (the same
                    // Section 5.2 argument as the published algorithm).
                    local.pc = Pc::PopSentinelConfirm { w };
                    StepEvent::Linearize(op, DequeRet::Empty)
                } else {
                    local.pc =
                        if is_pop { Pc::PopReadVal { w } } else { Pc::PushPrepare { w } };
                    StepEvent::Internal
                }
            }

            Pc::PopSentinelConfirm { w } => {
                let v = sh.nodes[w.0].value;
                let expect = if side == Side::Right { SENTL_VAL } else { SENTR_VAL };
                assert_eq!(v, expect, "sentinel-stability claim violated in the LFRC variant");
                Self::release_local(sh, w);
                local.op_idx += 1;
                local.pc = Pc::Start;
                local.push_initialized = false;
                StepEvent::Internal
            }

            Pc::PopReadVal { w } => {
                let v = sh.nodes[w.0].value;
                assert_ne!(
                    v,
                    if side == Side::Right { SENTL_VAL } else { SENTR_VAL },
                    "non-sentinel pointer led to a sentinel value"
                );
                if w.1 {
                    // Deleted: run the delete subroutine, then retry.
                    Self::release_local(sh, w);
                    local.pc = Pc::DelReadSent;
                    StepEvent::Internal
                } else if v == 0 {
                    local.pc = Pc::PopEmptyDcas { w };
                    StepEvent::Internal
                } else {
                    local.pc = Pc::PopMarkDcas { w, v };
                    StepEvent::Internal
                }
            }

            Pc::PopEmptyDcas { w } => {
                let ok = Self::sent_inward(sh, side) == w && sh.nodes[w.0].value == 0;
                Self::release_local(sh, w);
                if ok {
                    finish(local, DequeRet::Empty)
                } else {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            Pc::PopMarkDcas { w, v } => {
                if Self::sent_inward(sh, side) == w && sh.nodes[w.0].value == v {
                    // Pointer target unchanged; only the bit flips. No
                    // count adjustments.
                    Self::set_sent_inward(sh, side, (w.0, true));
                    sh.nodes[w.0].value = 0;
                    Self::release_local(sh, w);
                    finish(local, DequeRet::Value(v))
                } else {
                    Self::release_local(sh, w);
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            // Push: after the sentinel load, check deleted and stage the
            // node (creator ref + field init folded into the DCAS step's
            // predecessor, as unpublished-node writes are local).
            Pc::PushPrepare { w } => {
                if w.1 {
                    Self::release_local(sh, w);
                    local.pc = Pc::DelReadSent;
                } else {
                    local.pc = Pc::PushDcas { w };
                }
                StepEvent::Internal
            }

            Pc::PushDcas { w } => {
                let v = match op {
                    DequeOp::PushRight(v) | DequeOp::PushLeft(v) => v,
                    _ => unreachable!(),
                };
                let node = self.node_for_push[&(local.tid, local.op_idx)];
                // Stage the node on first arrival: creator's local ref.
                if !local.push_initialized {
                    assert_eq!(sh.nodes[node].life, Life::Unallocated);
                    sh.nodes[node].life = Life::Live;
                    sh.nodes[node].rc = 1;
                    sh.nodes[node].ghost_local = 1;
                    local.push_initialized = true;
                }
                if Self::sent_inward(sh, side) == w && Self::inward(sh, w.0, side) == (sent, false)
                {
                    // Initialize fields (unpublished), pre-count the two
                    // slot refs to the node and one to w.0 (node's
                    // outward link), then the DCAS resolves them into
                    // real slots.
                    sh.nodes[node].value = v;
                    match side {
                        Side::Right => {
                            sh.nodes[node].l = w;
                            sh.nodes[node].r = (SR, false);
                        }
                        Side::Left => {
                            sh.nodes[node].r = w;
                            sh.nodes[node].l = (SL, false);
                        }
                    }
                    // Two new slots target `node`.
                    sh.nodes[node].rc += 2;
                    // node's outward link is a new slot targeting w.0.
                    if !Self::is_sentinel(w.0) {
                        sh.nodes[w.0].rc += 1;
                    }
                    Self::set_sent_inward(sh, side, (node, false));
                    Self::set_inward(sh, w.0, side, (node, false));
                    // Overwritten: the sentinel's slot ref to w.0.
                    Self::release_slot(sh, w.0);
                    // Creator's local ref.
                    sh.nodes[node].rc -= 1;
                    sh.nodes[node].ghost_local -= 1;
                    Self::release_local(sh, w);
                    finish(local, DequeRet::Okay)
                } else {
                    Self::release_local(sh, w);
                    local.pc = Pc::Start;
                    StepEvent::Internal
                }
            }

            Pc::DelReadSent => {
                let w = Self::sent_inward(sh, side);
                if !w.1 {
                    local.pc = Pc::Start;
                    StepEvent::Internal
                } else {
                    Self::acquire_local(sh, w.0);
                    local.pc = Pc::DelReadNbr { w };
                    StepEvent::Internal
                }
            }

            Pc::DelReadNbr { w } => {
                let nbr_w = Self::outward(sh, w.0, side);
                Self::acquire_local(sh, nbr_w.0);
                local.pc = Pc::DelReadNbrVal { w, nbr_w };
                StepEvent::Internal
            }

            Pc::DelReadNbrVal { w, nbr_w } => {
                let v = sh.nodes[nbr_w.0].value;
                local.pc = if v != 0 || Self::is_sentinel(nbr_w.0) {
                    Pc::DelReadNbrInward { w, nbr_w }
                } else {
                    Pc::DelReadOtherSent { w, nbr_w }
                };
                StepEvent::Internal
            }

            Pc::DelReadNbrInward { w, nbr_w } => {
                let nbr_inward = Self::inward(sh, nbr_w.0, side);
                Self::acquire_local(sh, nbr_inward.0);
                local.pc = if nbr_inward.0 == w.0 {
                    Pc::DelSpliceDcas { w, nbr_w, nbr_inward }
                } else {
                    Self::release_local(sh, nbr_inward);
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    Pc::DelReadSent
                };
                StepEvent::Internal
            }

            Pc::DelSpliceDcas { w, nbr_w, nbr_inward } => {
                if Self::sent_inward(sh, side) == w
                    && Self::inward(sh, nbr_w.0, side) == nbr_inward
                {
                    // New slot: sentinel -> nbr.
                    if !Self::is_sentinel(nbr_w.0) {
                        sh.nodes[nbr_w.0].rc += 1;
                    }
                    Self::set_sent_inward(sh, side, (nbr_w.0, false));
                    Self::set_inward(sh, nbr_w.0, side, (sent, false));
                    // Overwritten slots both targeted w.0.
                    Self::release_slot(sh, w.0);
                    Self::release_slot(sh, w.0);
                    Self::release_local(sh, nbr_inward); // t == w.0
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    local.pc = Pc::Start;
                } else {
                    Self::release_local(sh, nbr_inward);
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }

            Pc::DelReadOtherSent { w, nbr_w } => {
                let other_side = if side == Side::Right { Side::Left } else { Side::Right };
                let ow = Self::sent_inward(sh, other_side);
                Self::acquire_local(sh, ow.0);
                local.pc = if ow.1 {
                    Pc::DelTwoNullDcas { w, nbr_w, ow }
                } else {
                    Self::release_local(sh, ow);
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    Pc::DelReadSent
                };
                StepEvent::Internal
            }

            Pc::DelTwoNullDcas { w, nbr_w, ow } => {
                let other_side = if side == Side::Right { Side::Left } else { Side::Right };
                if Self::sent_inward(sh, side) == w && Self::sent_inward(sh, other_side) == ow {
                    Self::set_sent_inward(sh, side, (other, false));
                    Self::set_sent_inward(sh, other_side, (sent, false));
                    // Break the two-node dead cycle, as the
                    // implementation does.
                    if self.break_cycle_enabled {
                        let (right, left) =
                            if side == Side::Right { (w.0, ow.0) } else { (ow.0, w.0) };
                        Self::break_cycle(sh, right, left);
                    }
                    // Overwritten sentinel slots.
                    Self::release_slot(sh, w.0);
                    Self::release_slot(sh, ow.0);
                    Self::release_local(sh, ow);
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    local.pc = Pc::Start;
                } else {
                    Self::release_local(sh, ow);
                    Self::release_local(sh, nbr_w);
                    Self::release_local(sh, w);
                    local.pc = Pc::DelReadSent;
                }
                StepEvent::Internal
            }
        })
    }

    /// The audited invariant: exact reference-count accounting, plus the
    /// structural invariant of the underlying algorithm.
    fn rep_invariant(&self, sh: &LfrcShared) -> Result<(), String> {
        // Count slot references per node: sentinel inward words + link
        // fields of live non-sentinel nodes.
        let mut slot_refs = vec![0u32; sh.nodes.len()];
        let mut count_slot = |w: PtrW| {
            if !Self::is_sentinel(w.0) {
                slot_refs[w.0] += 1;
            }
        };
        count_slot(sh.nodes[SL].r);
        count_slot(sh.nodes[SR].l);
        for (id, n) in sh.nodes.iter().enumerate().skip(2) {
            if n.life == Life::Live {
                if !Self::is_sentinel(n.l.0) {
                    slot_refs[n.l.0] += 1;
                }
                if !Self::is_sentinel(n.r.0) {
                    slot_refs[n.r.0] += 1;
                }
            }
            let _ = id;
        }

        for (id, n) in sh.nodes.iter().enumerate().skip(2) {
            match n.life {
                Life::Unallocated => {
                    if n.rc != 0 || n.ghost_local != 0 {
                        return Err(format!("unallocated node {id} has counts: {n:?}"));
                    }
                }
                Life::Freed => {
                    if n.rc != 0 {
                        return Err(format!("freed node {id} has rc {}", n.rc));
                    }
                    if n.ghost_local != 0 {
                        return Err(format!("freed node {id} has outstanding locals"));
                    }
                    if slot_refs[id] != 0 {
                        return Err(format!("freed node {id} still targeted by a slot"));
                    }
                }
                Life::Live => {
                    let expect = slot_refs[id] + n.ghost_local;
                    if n.rc != expect {
                        return Err(format!(
                            "COUNT AUDIT FAILED on node {id}: rc={} but slots={} + \
                             locals={} (nodes: {:?})",
                            n.rc, slot_refs[id], n.ghost_local, sh.nodes
                        ));
                    }
                }
            }
        }

        // Structural invariant of the chain (as in the bit-variant
        // machine, minus interior-pointer strictness relaxed to what the
        // LFRC variant maintains — which is the same).
        let chain = sh.chain()?;
        for (i, &id) in chain.iter().enumerate() {
            let node = &sh.nodes[id];
            if node.life != Life::Live {
                return Err(format!("chain node {id} is {:?}", node.life));
            }
            let left_expect = if i == 0 { SL } else { chain[i - 1] };
            let right_expect = if i == chain.len() - 1 { SR } else { chain[i + 1] };
            if node.l != (left_expect, false) || node.r != (right_expect, false) {
                return Err(format!("node {id} links inconsistent"));
            }
            if node.value == SENTL_VAL || node.value == SENTR_VAL {
                return Err(format!("interior node {id} holds a sentinel value"));
            }
        }
        let sr_l = sh.nodes[SR].l;
        let sl_r = sh.nodes[SL].r;
        let rightmost = chain.last().copied().unwrap_or(SL);
        let leftmost = chain.first().copied().unwrap_or(SR);
        if sr_l.0 != rightmost || sl_r.0 != leftmost {
            return Err("sentinel words do not close the chain".into());
        }
        if sr_l.1 && (chain.is_empty() || sh.nodes[rightmost].value != 0) {
            return Err("right deleted bit inconsistent".into());
        }
        if sl_r.1 && (chain.is_empty() || sh.nodes[leftmost].value != 0) {
            return Err("left deleted bit inconsistent".into());
        }
        for (i, &id) in chain.iter().enumerate() {
            if sh.nodes[id].value == 0 {
                let first_ok = i == 0 && sl_r.1;
                let last_ok = i == chain.len() - 1 && sr_l.1;
                if !first_ok && !last_ok {
                    return Err(format!("null node {id} without adjacent deleted mark"));
                }
            }
        }
        Ok(())
    }

    fn abstraction(&self, sh: &LfrcShared) -> Vec<u64> {
        sh.chain()
            .expect("abstraction on state violating R")
            .into_iter()
            .map(|id| sh.nodes[id].value)
            .filter(|&v| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn sequential_ops_and_full_recycling() {
        let m = LfrcMachine::new(vec![vec![
            DequeOp::PushRight(5),
            DequeOp::PushLeft(6),
            DequeOp::PopRight,
            DequeOp::PopLeft,
            DequeOp::PopRight,
            DequeOp::PopLeft,
        ]]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        for sh in &report.final_shared {
            for (id, n) in sh.nodes.iter().enumerate().skip(2) {
                assert_eq!(n.life, Life::Freed, "node {id} not recycled: {n:?}");
            }
        }
    }

    #[test]
    fn two_null_cycle_fully_reclaimed() {
        // The dead-cycle scenario: one pop from each side, then a
        // cleanup op. Terminal states must show both nodes Freed (the
        // audit invariant would already have caught any leak mid-way).
        let m = LfrcMachine::with_initial(
            vec![
                vec![DequeOp::PopRight, DequeOp::PopRight],
                vec![DequeOp::PopLeft, DequeOp::PopLeft],
            ],
            vec![5, 6],
        );
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert_eq!(report.final_abstracts, vec![vec![]]);
        // In every terminal state, all interior nodes whose physical
        // delete completed are Freed with zero counts; at worst a node is
        // still linked (logically deleted) awaiting cleanup.
        for sh in &report.final_shared {
            for n in sh.nodes.iter().skip(2) {
                match n.life {
                    Life::Freed => assert_eq!(n.rc, 0),
                    Life::Live => assert_eq!(n.value, 0, "live terminal node must be null"),
                    Life::Unallocated => {}
                }
            }
        }
    }

    #[test]
    fn concurrent_push_pop_audit() {
        let m = LfrcMachine::new(vec![
            vec![DequeOp::PushRight(5), DequeOp::PopLeft],
            vec![DequeOp::PushLeft(6), DequeOp::PopRight],
        ]);
        let report = Explorer::default().explore(&m, |_| {}).unwrap();
        assert!(report.states > 30);
    }

    #[test]
    fn steal_race_audit() {
        let m = LfrcMachine::with_initial(
            vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
            vec![7],
        );
        Explorer::default().explore(&m, |_| {}).unwrap();
    }

    #[test]
    fn random_walks_audit_larger_config() {
        let m = LfrcMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft, DequeOp::PopRight],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20), DequeOp::PopLeft],
            ],
            vec![5, 6],
        );
        Explorer::default().random_walks(&m, 2_000, 0x1F2C).unwrap();
    }
}
