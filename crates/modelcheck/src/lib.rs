//! Bounded model checking of the paper's two deque algorithms.
//!
//! Section 5 of the paper proves Theorems 3.1 and 4.1 (both algorithms
//! are non-blocking linearizable deque implementations) with the Simplify
//! first-order prover: it states a **representation invariant** `R` over
//! the shared state (Figures 18, 24, 25), an **abstraction function** `A`
//! mapping implementation states to abstract deque values (Figures 19,
//! 20), assigns every operation a **linearization point**, and discharges
//! one verification condition per shared-memory transition (Figures 21,
//! 22, 23, 26, 27, 28, 29).
//!
//! This crate reproduces that proof structure as machine-checked runtime
//! artifacts:
//!
//! * [`machines`] re-expresses the algorithms as *step machines* whose
//!   atomic steps are exactly the shared-memory accesses of the paper's
//!   line-numbered listings (one step per read, one per DCAS). Six
//!   machines are provided: the array deque, the linked-list deque, the
//!   dummy-node variant, the LFRC (GC-free) variant with an exact
//!   reference-count audit, the Greenwald one-word-indices baseline, and
//!   the Arora-Blumofe-Plaxton CAS deque;
//! * [`explore`] exhaustively enumerates every interleaving of a small
//!   configuration (a few threads, a few operations each), and at **every
//!   transition of every reachable state** checks the paper's proof
//!   obligations:
//!   - `R` holds in the post-state (invariant preservation — the paper's
//!     `RepInvPreserved` labels),
//!   - a non-linearization step leaves `A` unchanged (the paper's
//!     `AbsValPreserved`, e.g. Figure 29 for `deleteRight`),
//!   - a linearization step transforms `A` exactly as the sequential
//!     specification dictates and returns the matching value (the
//!     paper's `ProperTransition`, e.g. Figure 27);
//! * [`progress`] checks the **non-blocking** property on the explored
//!   state graph: no reachable cycle exists in which threads keep taking
//!   steps but no operation ever completes (the Section 5.2 lock-freedom
//!   argument, mechanized as livelock detection);
//! * three exploration modes: exhaustive state-based
//!   ([`Explorer::explore`]), randomized walks for larger configurations
//!   ([`Explorer::random_walks`]), and per-path history checking against
//!   the Wing & Gong oracle ([`Explorer::explore_histories`]) for
//!   algorithms whose linearization points are race-dependent.
//!
//! Exhaustive checking of small configurations is a bounded substitute
//! for the paper's unbounded proof — and a strict, executable one: the
//! very kind of tool that later found bugs in this algorithm family's
//! successors (the "Snark" deque was proven, published, and subsequently
//! falsified by exactly this style of analysis).

#![warn(missing_docs)]

pub mod explore;
pub mod machines;
pub mod progress;

pub use explore::{ExploreConfig, Explorer, HistoryReport, Report, StepEvent, System, WalkReport};
pub use progress::check_lockfree;
