//! The exhaustive interleaving explorer.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use dcas_linearize::{DequeOp, DequeRet, SeqDeque};

/// What a single atomic step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The step is not a linearization point; it must leave the abstract
    /// deque value unchanged.
    Internal,
    /// The step is the linearization point of the given operation with
    /// the given response; the abstract value must transition accordingly.
    Linearize(DequeOp, DequeRet),
}

/// A system of threads over shared state, stepped at the granularity of
/// individual shared-memory accesses (the paper's atomic machine
/// operations: reads and DCASes).
pub trait System {
    /// Shared-memory state (plus any auxiliary modeling state).
    type Shared: Clone + Eq + Hash + Debug;
    /// Per-thread control state: program counter, registers, remaining
    /// operation script.
    type Local: Clone + Eq + Hash + Debug;

    /// The initial shared state.
    fn initial_shared(&self) -> Self::Shared;

    /// One initial local state per thread.
    fn initial_locals(&self) -> Vec<Self::Local>;

    /// Executes one atomic step of the thread owning `local`. Returns
    /// `None` iff the thread has completed its entire script (in which
    /// case neither state may be modified).
    fn step(&self, shared: &mut Self::Shared, local: &mut Self::Local) -> Option<StepEvent>;

    /// The representation invariant `R` (Figures 18 / 24-25).
    fn rep_invariant(&self, shared: &Self::Shared) -> Result<(), String>;

    /// The abstraction function `A` (Figures 19-20): the abstract deque
    /// value represented by `shared`. Only called on states satisfying
    /// `R`.
    fn abstraction(&self, shared: &Self::Shared) -> Vec<u64>;

    /// Capacity of the abstract deque (`None` = unbounded), used to apply
    /// the sequential specification at linearization points.
    fn capacity(&self) -> Option<usize>;
}

/// Explorer limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Abort (fail) if more than this many distinct states are reached.
    pub max_states: usize,
    /// Record the state graph for [lock-freedom
    /// checking](crate::progress::check_lockfree).
    pub track_graph: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { max_states: 20_000_000, track_graph: false }
    }
}

/// Result of an exhaustive exploration.
#[derive(Debug)]
pub struct Report<Sh> {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Number of linearization points checked.
    pub linearizations: usize,
    /// Distinct abstract deque values observed in terminal states (all
    /// threads done).
    pub final_abstracts: Vec<Vec<u64>>,
    /// Terminal shared states (deduplicated).
    pub final_shared: Vec<Sh>,
    /// State graph edges `(from, to, completing)` when
    /// [`ExploreConfig::track_graph`] is set; indices into the visit
    /// order.
    pub graph: Vec<(usize, usize, bool)>,
}

/// Exhaustive DFS over all interleavings of a [`System`].
pub struct Explorer {
    config: ExploreConfig,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new(ExploreConfig::default())
    }
}

impl Explorer {
    /// Creates an explorer with the given limits.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// Explores every reachable interleaving of `sys`, checking the
    /// paper's proof obligations at every transition. `observer` is
    /// called once per distinct reachable shared state (for reachability
    /// assertions such as the Figure 6 / Figure 16 scenarios).
    ///
    /// # Errors
    ///
    /// Returns a description of the first proof-obligation violation
    /// encountered (invariant breakage, abstract-value drift on an
    /// internal step, or an illegal linearization).
    pub fn explore<S: System>(
        &self,
        sys: &S,
        observer: impl FnMut(&S::Shared),
    ) -> Result<Report<S::Shared>, String> {
        self.explore_full(sys, observer, |_, _, _| {})
    }

    /// Like [`explore`](Self::explore), additionally reporting every
    /// linearization event as `(thread, op, return)` — used by the
    /// figure-reproduction tests to assert that specific outcomes (e.g.
    /// both winners of the Figure 16 race) are reachable.
    pub fn explore_full<S: System>(
        &self,
        sys: &S,
        mut observer: impl FnMut(&S::Shared),
        mut event_observer: impl FnMut(usize, DequeOp, DequeRet),
    ) -> Result<Report<S::Shared>, String> {
        type StateKey<S> = (<S as System>::Shared, Vec<<S as System>::Local>);

        let shared0 = sys.initial_shared();
        sys.rep_invariant(&shared0)
            .map_err(|e| format!("initial state violates R: {e}"))?;
        let locals0 = sys.initial_locals();

        let mut ids: HashMap<StateKey<S>, usize> = HashMap::new();
        // parents[id] = (predecessor id, thread that stepped); used to
        // reconstruct a replayable schedule when a violation is found.
        let mut parents: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX)];
        let schedule_to = |parents: &Vec<(usize, usize)>, mut id: usize, last_tid: usize| {
            let mut sched = vec![last_tid];
            while parents[id].0 != usize::MAX {
                sched.push(parents[id].1);
                id = parents[id].0;
            }
            sched.reverse();
            sched
        };
        let mut stack: Vec<StateKey<S>> = Vec::new();
        let mut graph: Vec<(usize, usize, bool)> = Vec::new();
        let mut final_abstracts: Vec<Vec<u64>> = Vec::new();
        let mut final_shared: Vec<S::Shared> = Vec::new();
        let mut transitions = 0usize;
        let mut linearizations = 0usize;

        observer(&shared0);
        ids.insert((shared0.clone(), locals0.clone()), 0);
        stack.push((shared0, locals0));

        while let Some((shared, locals)) = stack.pop() {
            let from_id = ids[&(shared.clone(), locals.clone())];
            let abs_before = sys.abstraction(&shared);
            let mut any_step = false;

            for tid in 0..locals.len() {
                let mut new_shared = shared.clone();
                let mut new_locals = locals.clone();
                let event = sys.step(&mut new_shared, &mut new_locals[tid]);
                let Some(event) = event else { continue };
                any_step = true;
                transitions += 1;

                // Proof obligation 1: R is preserved (RepInvPreserved).
                sys.rep_invariant(&new_shared).map_err(|e| {
                    format!(
                        "R violated after a step of thread {tid}: {e}\n\
                         pre-state: {shared:?}\npost-state: {new_shared:?}\n\
                         local: {:?}\nschedule: {:?}",
                        locals[tid],
                        schedule_to(&parents, from_id, tid)
                    )
                })?;

                let abs_after = sys.abstraction(&new_shared);
                match event {
                    StepEvent::Internal => {
                        // Proof obligation 2: internal steps preserve A
                        // (AbsValPreserved).
                        if abs_after != abs_before {
                            return Err(format!(
                                "internal step of thread {tid} changed the abstract \
                                 value {abs_before:?} -> {abs_after:?}\n\
                                 pre-state: {shared:?}\npost-state: {new_shared:?}\n\
                                 local: {:?}\nschedule: {:?}",
                                locals[tid],
                                schedule_to(&parents, from_id, tid)
                            ));
                        }
                    }
                    StepEvent::Linearize(op, ret) => {
                        // Proof obligation 3: the abstract transition and
                        // return value match the sequential specification
                        // (ProperTransition).
                        linearizations += 1;
                        event_observer(tid, op, ret);
                        let mut spec = match sys.capacity() {
                            Some(c) => SeqDeque::bounded(c),
                            None => SeqDeque::unbounded(),
                        };
                        for &v in &abs_before {
                            spec.apply(DequeOp::PushRight(v));
                        }
                        let expect_ret = spec.apply(op);
                        let expect_abs: Vec<u64> = spec.items().collect();
                        if expect_ret != ret || expect_abs != abs_after {
                            return Err(format!(
                                "illegal linearization by thread {tid}: {op:?} returned \
                                 {ret:?}, abstract {abs_before:?} -> {abs_after:?}; the \
                                 spec requires return {expect_ret:?} and abstract \
                                 {expect_abs:?}\npre-state: {shared:?}\n\
                                 post-state: {new_shared:?}\nlocal: {:?}\nschedule: {:?}",
                                locals[tid],
                                schedule_to(&parents, from_id, tid)
                            ));
                        }
                    }
                }

                let key = (new_shared, new_locals);
                let next_id = ids.len();
                let to_id = match ids.get(&key) {
                    Some(&id) => id,
                    None => {
                        if ids.len() >= self.config.max_states {
                            return Err(format!(
                                "state-space limit of {} exceeded",
                                self.config.max_states
                            ));
                        }
                        observer(&key.0);
                        ids.insert(key.clone(), next_id);
                        parents.push((from_id, tid));
                        stack.push(key);
                        next_id
                    }
                };
                if self.config.track_graph {
                    graph.push((from_id, to_id, matches!(event, StepEvent::Linearize(..))));
                }
            }

            if !any_step {
                // Terminal state: all threads finished their scripts.
                if !final_abstracts.contains(&abs_before) {
                    final_abstracts.push(abs_before);
                }
                if !final_shared.contains(&shared) {
                    final_shared.push(shared);
                }
            }
        }

        Ok(Report {
            states: ids.len(),
            transitions,
            linearizations,
            final_abstracts,
            final_shared,
            graph,
        })
    }
}

/// Result of a history-mode exploration.
#[derive(Debug)]
pub struct HistoryReport {
    /// Complete execution paths enumerated (each checked).
    pub paths: usize,
    /// Total operations checked across all paths.
    pub operations: usize,
}

impl Explorer {
    /// History-mode exploration: enumerate **every execution path** (no
    /// state deduplication — paths, not states) of a bounded
    /// configuration, record each path's complete history of operations,
    /// and check it with the Wing & Gong oracle against the sequential
    /// deque specification.
    ///
    /// Unlike [`explore`](Self::explore), this mode does *not* verify the
    /// machine's claimed linearization placements or invariants — it only
    /// uses each `Linearize` event as the operation's (response, return
    /// value) record. That makes it suitable for algorithms whose
    /// linearization points are not statically assigned (e.g. the
    /// Arora–Blumofe–Plaxton deque, whose `popBottom` linearizes at
    /// different instructions depending on the race outcome), and an
    /// independent cross-check for the machines that do assign them.
    /// Using the emission step as the response endpoint is sound (never
    /// produces spurious violations) because every machine emits the
    /// event at or after the operation's true linearization point and
    /// before its true response.
    ///
    /// # Errors
    ///
    /// Returns a description of the first non-linearizable path, or a
    /// limit error if more than `max_paths` complete paths exist.
    pub fn explore_histories<S: System>(
        &self,
        sys: &S,
        max_paths: usize,
    ) -> Result<HistoryReport, String> {

        let shared0 = sys.initial_shared();
        let locals0 = sys.initial_locals();

        let mut paths = 0usize;
        let mut operations = 0usize;

        // Explicit DFS over paths: each frame owns its state snapshot and
        // history so far.
        struct Frame<Sh, Lo> {
            shared: Sh,
            locals: Vec<Lo>,
            step_idx: u64,
            // Per-thread: step at which the current op was invoked.
            invoked_at: Vec<Option<u64>>,
            history: Vec<dcas_linearize::history::Completed>,
            next_tid: usize,
        }
        let n = locals0.len();
        let mut stack = vec![Frame {
            shared: shared0,
            locals: locals0,
            step_idx: 0,
            invoked_at: vec![None; n],
            history: Vec::new(),
            next_tid: 0,
        }];

        while let Some(frame) = stack.last_mut() {
            // Find the next thread (from next_tid) with an enabled step.
            let mut stepped = false;
            while frame.next_tid < n {
                let tid = frame.next_tid;
                frame.next_tid += 1;
                let mut new_shared = frame.shared.clone();
                let mut new_locals = frame.locals.clone();
                let Some(event) = sys.step(&mut new_shared, &mut new_locals[tid]) else {
                    continue;
                };
                let mut invoked_at = frame.invoked_at.clone();
                let mut history = frame.history.clone();
                let step_idx = frame.step_idx + 1;
                if invoked_at[tid].is_none() {
                    invoked_at[tid] = Some(step_idx);
                }
                if let StepEvent::Linearize(op, ret) = event {
                    history.push(dcas_linearize::history::Completed {
                        invoke_ts: invoked_at[tid].unwrap(),
                        respond_ts: step_idx,
                        op,
                        ret,
                    });
                    invoked_at[tid] = None;
                }
                stack.push(Frame {
                    shared: new_shared,
                    locals: new_locals,
                    step_idx,
                    invoked_at,
                    history,
                    next_tid: 0,
                });
                stepped = true;
                break;
            }
            if stepped {
                continue;
            }
            // No thread could step from this frame: if it was freshly
            // entered (next_tid just exhausted with no children ever
            // pushed), it is terminal iff all threads are done. We detect
            // "terminal" by attempting all threads above; a frame with no
            // enabled step is terminal by definition of step().
            let frame = stack.pop().expect("frame present");
            if frame.next_tid >= n {
                // Check whether this frame was a leaf (no thread enabled)
                // — frames that spawned children also reach next_tid == n
                // eventually, so only count/check when every thread is
                // actually finished.
                let all_done = (0..n).all(|tid| {
                    let mut s = frame.shared.clone();
                    let mut l = frame.locals.clone();
                    sys.step(&mut s, &mut l[tid]).is_none()
                });
                if all_done {
                    paths += 1;
                    operations += frame.history.len();
                    if paths > max_paths {
                        return Err(format!("more than {max_paths} paths"));
                    }
                    let mut initial = match sys.capacity() {
                        Some(c) => SeqDeque::bounded(c),
                        None => SeqDeque::unbounded(),
                    };
                    for v in sys.abstraction(&sys.initial_shared()) {
                        initial.apply(DequeOp::PushRight(v));
                    }
                    if let Err(v) =
                        dcas_linearize::check_linearizable(initial, &frame.history)
                    {
                        return Err(format!(
                            "non-linearizable path (deepest prefix {:?}):\n{:#?}",
                            v.deepest_prefix, frame.history
                        ));
                    }
                }
            }
        }
        Ok(HistoryReport { paths, operations })
    }
}

/// Result of a random-walk campaign.
#[derive(Debug)]
pub struct WalkReport {
    /// Walks completed.
    pub walks: u64,
    /// Total transitions taken (and checked).
    pub transitions: u64,
    /// Total linearization points checked.
    pub linearizations: u64,
}

impl Explorer {
    /// Randomized exploration for configurations too large to exhaust:
    /// runs `walks` complete executions under a uniformly random
    /// scheduler, checking the same per-transition proof obligations as
    /// [`explore`](Self::explore). Deterministic given `seed`.
    ///
    /// # Errors
    ///
    /// Returns the first proof-obligation violation found.
    pub fn random_walks<S: System>(
        &self,
        sys: &S,
        walks: u64,
        seed: u64,
    ) -> Result<WalkReport, String> {
        let mut transitions = 0u64;
        let mut linearizations = 0u64;
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };

        for walk in 0..walks {
            let mut shared = sys.initial_shared();
            sys.rep_invariant(&shared)
                .map_err(|e| format!("initial state violates R: {e}"))?;
            let mut locals = sys.initial_locals();
            let mut live: Vec<usize> = (0..locals.len()).collect();

            while !live.is_empty() {
                let pick = (next() as usize) % live.len();
                let tid = live[pick];
                let abs_before = sys.abstraction(&shared);
                let event = sys.step(&mut shared, &mut locals[tid]);
                let Some(event) = event else {
                    live.swap_remove(pick);
                    continue;
                };
                transitions += 1;
                sys.rep_invariant(&shared).map_err(|e| {
                    format!("walk {walk}: R violated after a step of thread {tid}: {e}")
                })?;
                let abs_after = sys.abstraction(&shared);
                match event {
                    StepEvent::Internal => {
                        if abs_after != abs_before {
                            return Err(format!(
                                "walk {walk}: internal step of thread {tid} changed the \
                                 abstract value {abs_before:?} -> {abs_after:?}"
                            ));
                        }
                    }
                    StepEvent::Linearize(op, ret) => {
                        linearizations += 1;
                        let mut spec = match sys.capacity() {
                            Some(c) => SeqDeque::bounded(c),
                            None => SeqDeque::unbounded(),
                        };
                        for &v in &abs_before {
                            spec.apply(DequeOp::PushRight(v));
                        }
                        let expect_ret = spec.apply(op);
                        let expect_abs: Vec<u64> = spec.items().collect();
                        if expect_ret != ret || expect_abs != abs_after {
                            return Err(format!(
                                "walk {walk}: illegal linearization by thread {tid}: \
                                 {op:?} returned {ret:?}, abstract {abs_before:?} -> \
                                 {abs_after:?}; spec requires {expect_ret:?} / \
                                 {expect_abs:?}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(WalkReport { walks, transitions, linearizations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system: two threads atomically increment a shared counter
    /// once each (each increment modeled as a single atomic "push" of its
    /// value). Verifies the explorer's bookkeeping on a trivial example.
    struct Toy;

    impl System for Toy {
        type Shared = Vec<u64>;
        type Local = Option<u64>;

        fn initial_shared(&self) -> Vec<u64> {
            vec![]
        }

        fn initial_locals(&self) -> Vec<Option<u64>> {
            vec![Some(1), Some(2)]
        }

        fn step(&self, shared: &mut Vec<u64>, local: &mut Option<u64>) -> Option<StepEvent> {
            let v = (*local)?;
            shared.push(v);
            *local = None;
            Some(StepEvent::Linearize(DequeOp::PushRight(v), DequeRet::Okay))
        }

        fn rep_invariant(&self, _shared: &Vec<u64>) -> Result<(), String> {
            Ok(())
        }

        fn abstraction(&self, shared: &Vec<u64>) -> Vec<u64> {
            shared.clone()
        }

        fn capacity(&self) -> Option<usize> {
            None
        }
    }

    #[test]
    fn toy_system_explores_both_orders() {
        let mut seen = Vec::new();
        let report = Explorer::default()
            .explore(&Toy, |s| seen.push(s.clone()))
            .unwrap();
        // States: [], [1], [2], [1,2], [2,1] = 5
        assert_eq!(report.states, 5);
        assert_eq!(report.transitions, 4);
        assert_eq!(report.linearizations, 4);
        let mut finals = report.final_abstracts.clone();
        finals.sort();
        assert_eq!(finals, vec![vec![1, 2], vec![2, 1]]);
        assert!(seen.contains(&vec![1]));
        assert!(seen.contains(&vec![2]));
    }

    /// A broken system: the second thread's push drops the first value.
    struct Lossy;

    impl System for Lossy {
        type Shared = Vec<u64>;
        type Local = Option<u64>;

        fn initial_shared(&self) -> Vec<u64> {
            vec![]
        }

        fn initial_locals(&self) -> Vec<Option<u64>> {
            vec![Some(1), Some(2)]
        }

        fn step(&self, shared: &mut Vec<u64>, local: &mut Option<u64>) -> Option<StepEvent> {
            let v = (*local)?;
            if v == 2 {
                shared.clear(); // loses previously pushed values
            }
            shared.push(v);
            *local = None;
            Some(StepEvent::Linearize(DequeOp::PushRight(v), DequeRet::Okay))
        }

        fn rep_invariant(&self, _shared: &Vec<u64>) -> Result<(), String> {
            Ok(())
        }

        fn abstraction(&self, shared: &Vec<u64>) -> Vec<u64> {
            shared.clone()
        }

        fn capacity(&self) -> Option<usize> {
            None
        }
    }

    #[test]
    fn lossy_system_is_caught() {
        let err = Explorer::default().explore(&Lossy, |_| {}).unwrap_err();
        assert!(err.contains("illegal linearization"), "unexpected error: {err}");
    }

    /// A system whose internal step mutates the abstract value.
    struct Drifty;

    impl System for Drifty {
        type Shared = Vec<u64>;
        type Local = u8;

        fn initial_shared(&self) -> Vec<u64> {
            vec![7]
        }

        fn initial_locals(&self) -> Vec<u8> {
            vec![0]
        }

        fn step(&self, shared: &mut Vec<u64>, local: &mut u8) -> Option<StepEvent> {
            if *local == 1 {
                return None;
            }
            *local = 1;
            shared.push(9); // "helper" step that illegally changes A
            Some(StepEvent::Internal)
        }

        fn rep_invariant(&self, _shared: &Vec<u64>) -> Result<(), String> {
            Ok(())
        }

        fn abstraction(&self, shared: &Vec<u64>) -> Vec<u64> {
            shared.clone()
        }

        fn capacity(&self) -> Option<usize> {
            None
        }
    }

    #[test]
    fn abstract_drift_is_caught() {
        let err = Explorer::default().explore(&Drifty, |_| {}).unwrap_err();
        assert!(err.contains("changed the abstract value"), "unexpected error: {err}");
    }

    #[test]
    fn history_mode_checks_all_paths() {
        let report = Explorer::default().explore_histories(&Toy, 1_000).unwrap();
        // Two threads, one 1-step op each: two interleavings.
        assert_eq!(report.paths, 2);
        assert_eq!(report.operations, 4);
    }

    #[test]
    fn history_mode_accepts_lossy_system_with_unobservable_loss() {
        // Lossy drops a value, but no operation's *return* exposes it, so
        // the history itself is linearizable: history mode is strictly
        // weaker than state-transition checking here — by design.
        Explorer::default().explore_histories(&Lossy, 1_000).unwrap();
    }

    /// Two sequential ops whose returns contradict any linearization:
    /// a push, then a pop that claims "empty".
    struct Contradictory;

    impl System for Contradictory {
        type Shared = Vec<u64>;
        type Local = u8;

        fn initial_shared(&self) -> Vec<u64> {
            vec![]
        }

        fn initial_locals(&self) -> Vec<u8> {
            vec![0]
        }

        fn step(&self, shared: &mut Vec<u64>, local: &mut u8) -> Option<StepEvent> {
            match *local {
                0 => {
                    *local = 1;
                    shared.push(1);
                    Some(StepEvent::Linearize(DequeOp::PushRight(1), DequeRet::Okay))
                }
                1 => {
                    *local = 2;
                    // Claims empty although the value is still there.
                    Some(StepEvent::Linearize(DequeOp::PopLeft, DequeRet::Empty))
                }
                _ => None,
            }
        }

        fn rep_invariant(&self, _shared: &Vec<u64>) -> Result<(), String> {
            Ok(())
        }

        fn abstraction(&self, shared: &Vec<u64>) -> Vec<u64> {
            shared.clone()
        }

        fn capacity(&self) -> Option<usize> {
            None
        }
    }

    #[test]
    fn history_mode_catches_contradictory_returns() {
        let err = Explorer::default().explore_histories(&Contradictory, 1_000).unwrap_err();
        assert!(err.contains("non-linearizable"), "unexpected: {err}");
    }

    #[test]
    fn random_walks_cover_and_check() {
        let report = Explorer::default().random_walks(&Toy, 50, 0xABCD).unwrap();
        assert_eq!(report.walks, 50);
        assert_eq!(report.transitions, 100);
        assert_eq!(report.linearizations, 100);
    }

    #[test]
    fn random_walks_catch_lossy_system() {
        let err = Explorer::default().random_walks(&Lossy, 50, 7).unwrap_err();
        assert!(err.contains("illegal linearization"), "unexpected: {err}");
    }
}
