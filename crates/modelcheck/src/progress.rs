//! Lock-freedom (non-blocking progress) checking on the explored state
//! graph.
//!
//! Section 5.2 of the paper argues lock-freedom by contradiction: assume
//! an infinite execution with only finitely many completed operations,
//! and show the representation invariant makes that impossible. On the
//! finite state graph of a bounded configuration, the same property is
//! decidable exactly: the algorithm is non-blocking for that
//! configuration iff there is **no reachable cycle consisting solely of
//! non-completing transitions**. If such a cycle existed, an adversarial
//! scheduler could drive the system around it forever — threads taking
//! infinitely many steps while no operation ever completes, which is
//! precisely what the non-blocking definition of Section 2 forbids.
//!
//! (A *blocking* algorithm, e.g. one protected by a lock our model
//! includes as shared state, exhibits such a cycle the moment one thread
//! can spin while the lock holder is starved.)

/// Searches the `(from, to, completing)` edge list for a cycle that never
/// completes an operation.
///
/// Returns `Ok(())` if none exists (the configuration is non-blocking) or
/// `Err(cycle)` with a witness path of state indices.
pub fn check_lockfree(edges: &[(usize, usize, bool)]) -> Result<(), Vec<usize>> {
    let n = edges
        .iter()
        .map(|&(a, b, _)| a.max(b) + 1)
        .max()
        .unwrap_or(0);
    // Adjacency over non-completing edges only.
    let mut adj = vec![Vec::new(); n];
    for &(a, b, completing) in edges {
        if !completing {
            adj[a].push(b);
        }
    }
    // Iterative three-color DFS for cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<usize> = vec![usize::MAX; n];

    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < adj[u].len() {
                let v = adj[u][*i];
                *i += 1;
                match color[v] {
                    Color::White => {
                        color[v] = Color::Gray;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        // Found a non-completing cycle; reconstruct it.
                        let mut cycle = vec![v, u];
                        let mut w = u;
                        while w != v && parent[w] != usize::MAX {
                            w = parent[w];
                            cycle.push(w);
                        }
                        cycle.reverse();
                        return Err(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_fine() {
        assert!(check_lockfree(&[]).is_ok());
    }

    #[test]
    fn dag_of_internal_steps_is_fine() {
        assert!(check_lockfree(&[(0, 1, false), (1, 2, false), (0, 2, false)]).is_ok());
    }

    #[test]
    fn cycle_broken_by_completion_is_fine() {
        // 0 -> 1 -> 2 -> 0, but the closing edge completes an operation:
        // any infinite run around the loop completes infinitely often.
        assert!(check_lockfree(&[(0, 1, false), (1, 2, false), (2, 0, true)]).is_ok());
    }

    #[test]
    fn pure_retry_cycle_is_caught() {
        let err = check_lockfree(&[(0, 1, false), (1, 0, false)]).unwrap_err();
        assert!(err.len() >= 2);
    }

    #[test]
    fn unreachable_from_zero_still_checked() {
        assert!(check_lockfree(&[(5, 6, false), (6, 5, false)]).is_err());
    }

    #[test]
    fn parallel_completing_edge_does_not_mask() {
        // Two edges 1->0: one completing, one not. The non-completing one
        // still closes a livelock cycle.
        assert!(check_lockfree(&[(0, 1, false), (1, 0, true), (1, 0, false)]).is_err());
    }
}
