//! Exhaustive audit of the LFRC (GC-free) deque transformation: exact
//! reference-count accounting on every reachable state, full reclamation
//! at quiescence, and the dead-cycle negative control.

use dcas_linearize::DequeOp;
use dcas_modelcheck::machines::lfrc::{Life, LfrcMachine, LfrcShared};
use dcas_modelcheck::Explorer;

/// At quiescence every interior node must be Freed or still linked;
/// a Live unlinked node with zero local refs is a leak.
fn assert_no_leak(sh: &LfrcShared) -> Result<(), String> {
    let chain = sh.chain().unwrap();
    for (id, n) in sh.nodes.iter().enumerate().skip(2) {
        if n.life == Life::Live && !chain.contains(&id) {
            return Err(format!(
                "leaked node {id}: Live, unlinked, rc={} (kept alive only by other \
                 dead nodes)",
                n.rc
            ));
        }
    }
    Ok(())
}

#[test]
fn exhaustive_sweep_with_count_audit() {
    for initial in 0..=2u64 {
        let m = LfrcMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            ],
            (0..initial).map(|k| 5 + k).collect(),
        );
        let report = Explorer::default()
            .explore(&m, |_| {})
            .expect("count audit must hold on every reachable state");
        for sh in &report.final_shared {
            assert_no_leak(sh).unwrap();
        }
    }
}

#[test]
fn two_null_race_is_leak_free_with_cycle_break() {
    let m = LfrcMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    let report = Explorer::default().explore(&m, |_| {}).unwrap();
    for sh in &report.final_shared {
        assert_no_leak(sh).unwrap();
    }
}

#[test]
fn negative_control_without_cycle_break_leaks() {
    // Plain reference counting cannot collect the mutual-reference cycle
    // the two-null double splice creates; with the explicit break
    // disabled, the explorer still verifies all count obligations (the
    // counts stay *consistent* — that is the insidious part) but the
    // terminal census finds the leaked pair.
    let mut m = LfrcMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    m.break_cycle_enabled = false;
    let report = Explorer::default()
        .explore(&m, |_| {})
        .expect("counts stay consistent even while leaking");
    let leaked = report
        .final_shared
        .iter()
        .filter(|sh| assert_no_leak(sh).is_err())
        .count();
    assert!(
        leaked > 0,
        "expected the dead cycle to leak in some terminal state without the break"
    );
}

#[test]
fn steal_and_push_collisions_audit() {
    let m = LfrcMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PushRight(8)],
            vec![DequeOp::PopLeft, DequeOp::PushLeft(9)],
        ],
        vec![5, 6],
    );
    let report = Explorer::default().explore(&m, |_| {}).unwrap();
    for f in &report.final_abstracts {
        assert_eq!(f.len(), 2);
    }
    for sh in &report.final_shared {
        assert_no_leak(sh).unwrap();
    }
}

#[test]
fn three_threads_single_element_audit() {
    let m = LfrcMachine::with_initial(
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PopLeft],
            vec![DequeOp::PushRight(8)],
        ],
        vec![5],
    );
    Explorer::default().explore(&m, |_| {}).unwrap();
}
