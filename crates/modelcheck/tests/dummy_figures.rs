//! Exhaustive model checking of the dummy-node variant (footnote 4 /
//! Figure 10) — our interpretation of the paper's sketch, verified under
//! the same proof obligations as the published algorithms.

use dcas_linearize::{DequeOp, DequeRet};
use dcas_modelcheck::machines::dummy::DummyShared;
use dcas_modelcheck::machines::DummyMachine;
use dcas_modelcheck::{check_lockfree, ExploreConfig, Explorer};

fn explore_ok(m: &DummyMachine) -> dcas_modelcheck::Report<DummyShared> {
    Explorer::default()
        .explore(m, |_| {})
        .expect("proof obligations must hold on every reachable state")
}

#[test]
fn steal_of_last_element() {
    let m = DummyMachine::with_initial(
        vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        vec![7],
    );
    let mut outcomes = Vec::new();
    Explorer::default()
        .explore_full(&m, |_| {}, |tid, _, ret| {
            if !outcomes.contains(&(tid, ret)) {
                outcomes.push((tid, ret));
            }
        })
        .unwrap();
    assert!(outcomes.contains(&(0, DequeRet::Value(7))));
    assert!(outcomes.contains(&(0, DequeRet::Empty)));
    assert!(outcomes.contains(&(1, DequeRet::Value(7))));
    assert!(outcomes.contains(&(1, DequeRet::Empty)));
}

#[test]
fn pushes_collide_with_pending_dummy_deletes() {
    let m = DummyMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PushRight(8)],
            vec![DequeOp::PopLeft, DequeOp::PushLeft(9)],
        ],
        vec![5, 6],
    );
    let report = explore_ok(&m);
    for f in &report.final_abstracts {
        assert_eq!(f.len(), 2, "both pushed values must be present: {f:?}");
    }
}

#[test]
fn three_threads_single_element() {
    let m = DummyMachine::with_initial(
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PopLeft],
            vec![DequeOp::PushRight(8)],
        ],
        vec![5],
    );
    explore_ok(&m);
}

#[test]
fn lock_freedom_of_dummy_configurations() {
    let configs = vec![
        DummyMachine::with_initial(
            vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
            vec![5, 6],
        ),
        DummyMachine::new(vec![
            vec![DequeOp::PushRight(5), DequeOp::PopRight],
            vec![DequeOp::PushLeft(6)],
        ]),
        DummyMachine::with_initial(
            vec![
                vec![DequeOp::PopRight, DequeOp::PushRight(8)],
                vec![DequeOp::PopLeft],
            ],
            vec![5, 6],
        ),
    ];
    for m in &configs {
        let report = Explorer::new(ExploreConfig { track_graph: true, ..Default::default() })
            .explore(m, |_| {})
            .unwrap();
        check_lockfree(&report.graph).unwrap_or_else(|cycle| {
            panic!("livelock cycle found: {cycle:?}");
        });
    }
}

#[test]
fn exhaustive_small_configuration_sweep() {
    for initial in 0..=2u64 {
        let m = DummyMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            ],
            (0..initial).map(|k| 5 + k).collect(),
        );
        explore_ok(&m);
    }
}

#[test]
fn agrees_with_bit_variant_on_final_states() {
    // Same scripts on both machines: identical sets of terminal abstract
    // deque values.
    use dcas_modelcheck::machines::ListMachine;
    let scripts = vec![
        vec![DequeOp::PushRight(10), DequeOp::PopLeft],
        vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
    ];
    let bit = Explorer::default()
        .explore(&ListMachine::with_initial(scripts.clone(), vec![5, 6]), |_| {})
        .unwrap();
    let dummy = Explorer::default()
        .explore(&DummyMachine::with_initial(scripts, vec![5, 6]), |_| {})
        .unwrap();
    let mut a = bit.final_abstracts.clone();
    let mut b = dummy.final_abstracts.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "variants disagree on reachable outcomes");
}

#[test]
fn three_threads_mixed_two_ops() {
    let m = DummyMachine::with_initial(
        vec![
            vec![DequeOp::PushRight(10), DequeOp::PopLeft],
            vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            vec![DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    explore_ok(&m);
}
