//! Exhaustive interleaving check for the hardware pair-DCAS fast path.
//!
//! `HarrisMcas::dcas` short-circuits a two-word DCAS on an adjacent
//! [`dcas::DcasPair`] into one 128-bit compare-exchange, while other
//! threads may be running the full descriptor protocol (RDCSS install →
//! decide → resolve) over the *same two words*. The mixed-mode safety
//! argument has exactly one delicate case: when the wide CAS fails
//! because a half holds a descriptor *tag*, the fast path must **help
//! the descriptor and retry** — it must not report DCAS failure, because
//! the in-flight descriptor may still abort and restore values that
//! match the fast path's expectations (failing there would be a
//! linearization of `false` at a point where the abstract state
//! matched).
//!
//! This test model-checks that argument the way `crates/modelcheck`
//! checks the deques: a small step machine per thread, every
//! interleaving enumerated, every terminal state compared against the
//! legal sequential outcomes. Thread A is the fast path (its whole
//! read-compare-swap is one atomic step — that is precisely what
//! `cmpxchg16b` provides; helping is one descriptor phase per step,
//! like the real helper loop). Thread B runs the descriptor protocol
//! one shared-memory phase at a time, and *either* thread may advance
//! the descriptor (helping races included). A negative control replaces
//! help-and-retry with fail-on-tag and must produce an outcome no
//! sequential order allows — demonstrating the check has teeth.

use std::collections::HashSet;

/// One of the pair's halves: a payload, or a tag marking an installed
/// descriptor (the model's RDCSS/DCAS pointer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Half {
    Val(u8),
    Tagged,
}

/// The descriptor protocol's phase for thread B's DCAS, advanced
/// atomically one shared-memory transition at a time by B or by a
/// helping A.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Phase {
    /// Try to tag `lo` (succeeds only on a matching, untagged payload).
    Install1,
    /// `lo` tagged; try to tag `hi`.
    Install2,
    /// Both halves resolved; untag `lo` to its outcome value.
    Resolve1 { ok: bool },
    /// Untag `hi` to its outcome value.
    Resolve2 { ok: bool },
    Done { ok: bool },
}

/// Full model state: the shared pair, B's descriptor phase, and A's
/// pending/finished fast-path op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct State {
    lo: Half,
    hi: Half,
    phase: Phase,
    /// `None` while A's CAS is still pending; `Some(result)` after.
    a_done: Option<bool>,
}

#[derive(Clone, Copy)]
struct Op {
    expect: (u8, u8),
    new: (u8, u8),
}

/// Advances B's descriptor one phase. Idempotent per phase and callable
/// by either thread — the model's equivalent of "any thread can help".
fn advance_descriptor(mut s: State, b: Op) -> State {
    match s.phase {
        Phase::Install1 => {
            if s.lo == Half::Val(b.expect.0) {
                s.lo = Half::Tagged;
                s.phase = Phase::Install2;
            } else {
                s.phase = Phase::Done { ok: false };
            }
        }
        Phase::Install2 => {
            if s.hi == Half::Val(b.expect.1) {
                s.hi = Half::Tagged;
                s.phase = Phase::Resolve1 { ok: true };
            } else {
                // Abort: undo the first install.
                s.phase = Phase::Resolve1 { ok: false };
            }
        }
        Phase::Resolve1 { ok } => {
            debug_assert_eq!(s.lo, Half::Tagged);
            s.lo = Half::Val(if ok { b.new.0 } else { b.expect.0 });
            s.phase = if ok {
                Phase::Resolve2 { ok }
            } else {
                // The failed DCAS never tagged `hi`; nothing to undo.
                Phase::Done { ok }
            };
        }
        Phase::Resolve2 { ok } => {
            debug_assert_eq!(s.hi, Half::Tagged);
            s.hi = Half::Val(b.new.1);
            s.phase = Phase::Done { ok };
        }
        Phase::Done { .. } => {}
    }
    s
}

/// One step of thread A's fast path: a single atomic
/// read-compare-exchange over both halves (the `cmpxchg16b`), plus the
/// on-tag policy under test.
fn step_a(mut s: State, a: Op, b: Op, fail_on_tag: bool) -> State {
    debug_assert!(s.a_done.is_none());
    if s.lo == Half::Tagged || s.hi == Half::Tagged {
        if fail_on_tag {
            // The buggy policy: treat a tag as a value mismatch.
            s.a_done = Some(false);
            return s;
        }
        // Correct policy: help the in-flight descriptor one phase and
        // leave the op pending (the retry is a later step).
        return advance_descriptor(s, b);
    }
    if s.lo == Half::Val(a.expect.0) && s.hi == Half::Val(a.expect.1) {
        s.lo = Half::Val(a.new.0);
        s.hi = Half::Val(a.new.1);
        s.a_done = Some(true);
    } else {
        s.a_done = Some(false);
    }
    s
}

/// A terminal observation: both ops' results plus the final pair value.
type Outcome = (bool, bool, u8, u8);

/// Depth-first enumeration of every interleaving of A's fast path and
/// B's descriptor protocol, collecting all terminal outcomes.
fn explore(a: Op, b: Op, init: (u8, u8), fail_on_tag: bool) -> HashSet<Outcome> {
    fn go(
        s: State,
        a: Op,
        b: Op,
        fail_on_tag: bool,
        seen: &mut HashSet<State>,
        out: &mut HashSet<Outcome>,
    ) {
        if !seen.insert(s) {
            return;
        }
        let b_done = matches!(s.phase, Phase::Done { .. });
        if let (Some(a_res), Phase::Done { ok: b_res }) = (s.a_done, s.phase) {
            let (Half::Val(lo), Half::Val(hi)) = (s.lo, s.hi) else {
                panic!("terminal state left a tag behind: {s:?}");
            };
            out.insert((a_res, b_res, lo, hi));
            return;
        }
        if s.a_done.is_none() {
            go(step_a(s, a, b, fail_on_tag), a, b, fail_on_tag, seen, out);
        }
        if !b_done {
            go(advance_descriptor(s, b), a, b, fail_on_tag, seen, out);
        }
    }
    let mut out = HashSet::new();
    let mut seen = HashSet::new();
    let init = State {
        lo: Half::Val(init.0),
        hi: Half::Val(init.1),
        phase: Phase::Install1,
        a_done: None,
    };
    go(init, a, b, fail_on_tag, &mut seen, &mut out);
    out
}

/// The sequential specification: the set of outcomes some total order
/// of the two DCAS operations produces.
fn legal_outcomes(a: Op, b: Op, init: (u8, u8)) -> HashSet<Outcome> {
    let apply = |state: (u8, u8), op: Op| -> ((u8, u8), bool) {
        if state == op.expect {
            (op.new, true)
        } else {
            (state, false)
        }
    };
    let mut legal = HashSet::new();
    // A then B.
    let (s1, a_res) = apply(init, a);
    let (s2, b_res) = apply(s1, b);
    legal.insert((a_res, b_res, s2.0, s2.1));
    // B then A.
    let (s1, b_res) = apply(init, b);
    let (s2, a_res) = apply(s1, a);
    legal.insert((a_res, b_res, s2.0, s2.1));
    legal
}

const INIT: (u8, u8) = (1, 2);
/// Both ops expect the initial pair: whichever linearizes first wins.
const A: Op = Op { expect: INIT, new: (3, 4) };
const B_CONTENDING: Op = Op { expect: INIT, new: (5, 6) };
/// B expects a stale `hi`: it must fail in *every* sequential order, so
/// its descriptor installs on `lo` and then aborts — the exact window
/// where fail-on-tag breaks linearizability.
const B_DOOMED: Op = Op { expect: (1, 9), new: (5, 6) };

#[test]
fn pair_cas_racing_descriptor_stays_linearizable() {
    for b in [B_CONTENDING, B_DOOMED] {
        let outcomes = explore(A, b, INIT, false);
        let legal = legal_outcomes(A, b, INIT);
        assert!(
            outcomes.is_subset(&legal),
            "illegal outcomes: {:?} (legal: {legal:?})",
            outcomes.difference(&legal).collect::<Vec<_>>()
        );
        assert!(!outcomes.is_empty());
    }
}

#[test]
fn contending_race_reaches_both_linearizations() {
    // Sanity that the enumeration explores real races: with both orders
    // possible, both sequential outcomes must be reachable.
    let outcomes = explore(A, B_CONTENDING, INIT, false);
    assert_eq!(outcomes, legal_outcomes(A, B_CONTENDING, INIT));
}

#[test]
fn fail_on_tag_policy_is_refuted() {
    // Negative control: the policy the implementation deliberately
    // avoids. Against the doomed descriptor, every sequential order has
    // A succeeding (B's abort restores A's expected values), so an
    // A-failure outcome is unserializable — and the checker must find
    // one, proving it can see this class of bug.
    let outcomes = explore(A, B_DOOMED, INIT, true);
    let legal = legal_outcomes(A, B_DOOMED, INIT);
    assert!(
        outcomes.iter().any(|o| !legal.contains(o)),
        "buggy fail-on-tag policy produced only legal outcomes {outcomes:?}"
    );
    assert!(outcomes.iter().any(|&(a_res, ..)| !a_res), "expected a spurious A failure");
}
