//! Systematic script-space sweep: instead of hand-picking interesting
//! scenarios, enumerate **every** two-thread two-operation script pair
//! over the full operation alphabet and exhaustively model-check each
//! configuration. 256 script pairs × initial contents × machines — the
//! closest thing to "all small test cases" the proof obligations can be
//! run against.

use dcas_linearize::DequeOp;
use dcas_modelcheck::machines::{ArrayMachine, DummyMachine, LfrcMachine, ListMachine};
use dcas_modelcheck::Explorer;

/// The op alphabet; values are chosen unique per (thread, position) when
/// instantiated.
#[derive(Clone, Copy, Debug)]
enum OpKind {
    PushRight,
    PushLeft,
    PopRight,
    PopLeft,
}

const ALPHABET: [OpKind; 4] = [OpKind::PushRight, OpKind::PushLeft, OpKind::PopRight, OpKind::PopLeft];

fn instantiate(kind: OpKind, unique: u64) -> DequeOp {
    match kind {
        OpKind::PushRight => DequeOp::PushRight(10 + unique * 4),
        OpKind::PushLeft => DequeOp::PushLeft(10 + unique * 4),
        OpKind::PopRight => DequeOp::PopRight,
        OpKind::PopLeft => DequeOp::PopLeft,
    }
}

/// All 256 two-thread scripts of two ops each.
fn all_script_pairs() -> Vec<Vec<Vec<DequeOp>>> {
    let mut out = Vec::new();
    for a0 in ALPHABET {
        for a1 in ALPHABET {
            for b0 in ALPHABET {
                for b1 in ALPHABET {
                    out.push(vec![
                        vec![instantiate(a0, 0), instantiate(a1, 1)],
                        vec![instantiate(b0, 2), instantiate(b1, 3)],
                    ]);
                }
            }
        }
    }
    out
}

#[test]
fn list_machine_full_script_space() {
    for (i, scripts) in all_script_pairs().into_iter().enumerate() {
        for initial in [0usize, 1] {
            let m = ListMachine::with_initial(
                scripts.clone(),
                (0..initial as u64).map(|k| 5 + k * 4).collect(),
            );
            Explorer::default()
                .explore(&m, |_| {})
                .unwrap_or_else(|e| panic!("config {i} (initial {initial}): {e}"));
        }
    }
}

#[test]
fn array_machine_full_script_space() {
    for (i, scripts) in all_script_pairs().into_iter().enumerate() {
        for (cap, initial) in [(1usize, 0usize), (2, 1), (3, 1)] {
            let m = ArrayMachine::new(cap, scripts.clone())
                .with_initial((0..initial as u64).map(|k| 5 + k * 4).collect());
            Explorer::default()
                .explore(&m, |_| {})
                .unwrap_or_else(|e| panic!("config {i} (cap {cap}, initial {initial}): {e}"));
        }
    }
}

#[test]
fn array_machine_minimal_config_full_script_space() {
    // The weak-DCAS-only variant over the same space.
    for (i, scripts) in all_script_pairs().into_iter().enumerate() {
        let m = ArrayMachine::new(2, scripts).minimal().with_initial(vec![5]);
        Explorer::default()
            .explore(&m, |_| {})
            .unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}

#[test]
fn lfrc_machine_full_script_space() {
    // The GC-free variant with the exact reference-count audit active on
    // every state of every configuration.
    for (i, scripts) in all_script_pairs().into_iter().enumerate() {
        let m = LfrcMachine::with_initial(scripts, vec![5]);
        Explorer::default()
            .explore(&m, |_| {})
            .unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}

#[test]
fn dummy_machine_full_script_space() {
    for (i, scripts) in all_script_pairs().into_iter().enumerate() {
        let m = DummyMachine::with_initial(scripts, vec![5]);
        Explorer::default()
            .explore(&m, |_| {})
            .unwrap_or_else(|e| panic!("config {i}: {e}"));
    }
}
