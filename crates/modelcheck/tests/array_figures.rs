//! Exhaustive model checking of the array-based deque (Theorem 3.1) and
//! reproduction of the paper's Figure 6 contention scenario.

use dcas_linearize::{DequeOp, DequeRet};
use dcas_modelcheck::machines::ArrayMachine;
use dcas_modelcheck::{check_lockfree, ExploreConfig, Explorer};

fn explore_ok(m: &ArrayMachine) -> dcas_modelcheck::Report<dcas_modelcheck::machines::array::ArrayShared> {
    Explorer::default()
        .explore(m, |_| {})
        .expect("proof obligations must hold on every reachable state")
}

#[test]
fn fig6_pop_right_contending_with_pop_left() {
    // Figure 6: a popRight races a popLeft for the single element; the
    // popLeft "steals" it and the popRight must report empty. Exhaustive
    // exploration must find executions with each winner, including the
    // case where the loser detects the steal through the strong-DCAS
    // failure view (lines 17-18).
    let m = ArrayMachine::new(3, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
        .with_initial(vec![7]);
    let mut outcomes = Vec::new();
    Explorer::default()
        .explore_full(
            &m,
            |_| {},
            |tid, op, ret| {
                if !outcomes.contains(&(tid, op, ret)) {
                    outcomes.push((tid, op, ret));
                }
            },
        )
        .unwrap();
    // Right wins in some executions, left in others; the loser gets
    // "empty".
    assert!(outcomes.contains(&(0, DequeOp::PopRight, DequeRet::Value(7))));
    assert!(outcomes.contains(&(0, DequeOp::PopRight, DequeRet::Empty)));
    assert!(outcomes.contains(&(1, DequeOp::PopLeft, DequeRet::Value(7))));
    assert!(outcomes.contains(&(1, DequeOp::PopLeft, DequeRet::Empty)));
}

#[test]
fn fig6_scenario_all_configs() {
    // The same race must verify under all four optimization configs.
    for revalidate in [false, true] {
        for strong in [false, true] {
            let mut m =
                ArrayMachine::new(3, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
                    .with_initial(vec![7]);
            m.revalidate_index = revalidate;
            m.strong_failure_check = strong;
            let report = explore_ok(&m);
            assert_eq!(report.final_abstracts, vec![Vec::<u64>::new()]);
        }
    }
}

#[test]
fn push_race_for_last_free_cell() {
    // Two pushes race for the single free cell of an almost-full deque;
    // one succeeds, the other must report full.
    let m = ArrayMachine::new(
        3,
        vec![vec![DequeOp::PushRight(8)], vec![DequeOp::PushLeft(9)]],
    )
    .with_initial(vec![5, 6]);
    let mut outcomes = Vec::new();
    Explorer::default()
        .explore_full(&m, |_| {}, |tid, _, ret| {
            if !outcomes.contains(&(tid, ret)) {
                outcomes.push((tid, ret));
            }
        })
        .unwrap();
    assert!(outcomes.contains(&(0, DequeRet::Okay)));
    assert!(outcomes.contains(&(0, DequeRet::Full)));
    assert!(outcomes.contains(&(1, DequeRet::Okay)));
    assert!(outcomes.contains(&(1, DequeRet::Full)));
}

#[test]
fn theorem_3_1_two_threads_mixed_ops() {
    // Theorem 3.1 on a bounded configuration: every interleaving of two
    // threads doing mixed push/pop at both ends of a small deque
    // satisfies R, keeps A consistent, and linearizes correctly.
    let m = ArrayMachine::new(
        2,
        vec![
            vec![DequeOp::PushRight(5), DequeOp::PopLeft],
            vec![DequeOp::PushLeft(6), DequeOp::PopRight],
        ],
    );
    let report = explore_ok(&m);
    assert!(report.states > 30, "expected a nontrivial state space, got {}", report.states);
    // Conservation: every terminal abstract state holds a subset of the
    // pushed values.
    for f in &report.final_abstracts {
        for v in f {
            assert!([5, 6].contains(v));
        }
    }
}

#[test]
fn theorem_3_1_three_threads_capacity_one() {
    // Capacity 1 maximizes boundary churn: every op hits empty or full.
    let m = ArrayMachine::new(
        1,
        vec![
            vec![DequeOp::PushRight(5), DequeOp::PopRight],
            vec![DequeOp::PushLeft(6), DequeOp::PopLeft],
            vec![DequeOp::PopRight],
        ],
    );
    let report = explore_ok(&m);
    assert!(report.linearizations > 0);
}

#[test]
fn theorem_3_1_wraparound_configuration() {
    // Start with the segment about to wrap (Figure 8 geometry) and hammer
    // both ends.
    let m = ArrayMachine::new(
        3,
        vec![
            vec![DequeOp::PushRight(8), DequeOp::PopLeft],
            vec![DequeOp::PushLeft(9), DequeOp::PopRight],
        ],
    )
    .with_initial(vec![5, 6]);
    explore_ok(&m);
}

#[test]
fn theorem_3_1_minimal_config_weak_dcas_only() {
    // The paper: deleting line 7 and lines 17-18 leaves a correct
    // algorithm needing only the weak DCAS.
    let m = ArrayMachine::new(
        2,
        vec![
            vec![DequeOp::PushRight(5), DequeOp::PopLeft],
            vec![DequeOp::PushLeft(6), DequeOp::PopRight],
        ],
    )
    .minimal();
    explore_ok(&m);
}

#[test]
fn lock_freedom_of_array_configurations() {
    // Section 5.1's progress argument, mechanized: the reachable state
    // graph has no cycle of non-completing transitions.
    let configs: Vec<ArrayMachine> = vec![
        ArrayMachine::new(2, vec![vec![DequeOp::PushRight(5)], vec![DequeOp::PushRight(6)]]),
        ArrayMachine::new(
            2,
            vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        )
        .with_initial(vec![7]),
        ArrayMachine::new(
            2,
            vec![
                vec![DequeOp::PushRight(5), DequeOp::PopLeft],
                vec![DequeOp::PushLeft(6), DequeOp::PopRight],
            ],
        ),
    ];
    for m in &configs {
        let report = Explorer::new(ExploreConfig { track_graph: true, ..Default::default() })
            .explore(m, |_| {})
            .unwrap();
        check_lockfree(&report.graph).unwrap_or_else(|cycle| {
            panic!("livelock cycle found: {cycle:?}");
        });
    }
}

#[test]
fn unsound_empty_check_is_refuted() {
    // Removing the boundary-confirming DCAS (the paper's key mechanism)
    // yields an algorithm the explorer refutes: thread 0's popRight can
    // report "empty" although the deque held a value throughout its
    // execution.
    let mut m = ArrayMachine::new(
        3,
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PushLeft(9), DequeOp::PopRight],
        ],
    )
    .with_initial(vec![7]);
    m.naive_empty_check = true;
    let err = Explorer::default().explore(&m, |_| {}).unwrap_err();
    assert!(
        err.contains("illegal linearization"),
        "expected a linearizability refutation, got: {err}"
    );
}

#[test]
fn exhaustive_small_configuration_sweep() {
    // A broader sweep of tiny configurations; each explores every
    // interleaving and checks all proof obligations.
    let vals = |k: u64| 5 + k;
    for cap in 1..=3usize {
        for initial in 0..=cap.min(2) {
            let scripts = vec![
                vec![DequeOp::PushRight(vals(10)), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(vals(20))],
            ];
            let m = ArrayMachine::new(cap, scripts)
                .with_initial((0..initial as u64).map(vals).collect());
            explore_ok(&m);
        }
    }
}

#[test]
fn random_walks_on_larger_configurations() {
    // Configurations beyond exhaustive reach: randomized schedules still
    // check every proof obligation on every transition taken.
    let m = ArrayMachine::new(
        4,
        vec![
            vec![
                DequeOp::PushRight(10),
                DequeOp::PushRight(11),
                DequeOp::PopLeft,
                DequeOp::PopRight,
            ],
            vec![
                DequeOp::PushLeft(20),
                DequeOp::PopRight,
                DequeOp::PushLeft(21),
                DequeOp::PopLeft,
            ],
            vec![DequeOp::PopRight, DequeOp::PushRight(30), DequeOp::PopLeft],
        ],
    );
    let report = Explorer::default().random_walks(&m, 3_000, 0xFEED).unwrap();
    assert_eq!(report.walks, 3_000);
    assert!(report.linearizations >= 3_000 * 11);
}

#[test]
fn theorem_3_1_three_threads_mixed_two_ops() {
    let m = ArrayMachine::new(
        3,
        vec![
            vec![DequeOp::PushRight(10), DequeOp::PopLeft],
            vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            vec![DequeOp::PopLeft, DequeOp::PopRight],
        ],
    )
    .with_initial(vec![5, 6]);
    let report = explore_ok(&m);
    assert!(report.states > 1_000, "state space too small: {}", report.states);
}

#[test]
fn theorem_3_1_four_threads_one_op_each() {
    // Four single-op threads: the widest simultaneous contention window.
    let m = ArrayMachine::new(
        3,
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PopLeft],
            vec![DequeOp::PushRight(10)],
            vec![DequeOp::PushLeft(20)],
        ],
    )
    .with_initial(vec![5]);
    explore_ok(&m);
}
