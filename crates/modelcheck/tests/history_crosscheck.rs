//! History-mode cross-check: the same configurations verified through
//! linearization-point obligations are re-verified path-by-path with the
//! Wing & Gong oracle — two independent notions of correctness that must
//! agree.

use dcas_linearize::DequeOp;
use dcas_modelcheck::machines::{AbpMachine, ArrayMachine, DummyMachine, ListMachine};
use dcas_modelcheck::Explorer;

#[test]
fn array_machine_histories() {
    let m = ArrayMachine::new(3, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
        .with_initial(vec![7]);
    let report = Explorer::default().explore_histories(&m, 1_000_000).unwrap();
    assert!(report.paths > 10);
}

#[test]
fn array_machine_push_race_histories() {
    let m = ArrayMachine::new(
        3,
        vec![vec![DequeOp::PushRight(8)], vec![DequeOp::PushLeft(9)]],
    )
    .with_initial(vec![5, 6]);
    Explorer::default().explore_histories(&m, 1_000_000).unwrap();
}

#[test]
fn list_machine_histories() {
    let m = ListMachine::with_initial(
        vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        vec![5, 6],
    );
    Explorer::default().explore_histories(&m, 5_000_000).unwrap();
}

#[test]
fn dummy_machine_histories() {
    let m = DummyMachine::with_initial(
        vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        vec![5],
    );
    Explorer::default().explore_histories(&m, 5_000_000).unwrap();
}

#[test]
fn abp_machine_full_matrix() {
    // The ABP machine is *only* verifiable this way (its linearization
    // points are race-dependent); give it the deepest sweep.
    let configs = vec![
        AbpMachine::new(4, vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]])
            .with_initial(vec![7]),
        AbpMachine::new(
            4,
            vec![
                vec![DequeOp::PushRight(5), DequeOp::PopRight],
                vec![DequeOp::PopLeft],
            ],
        ),
        AbpMachine::new(
            4,
            vec![
                vec![DequeOp::PopRight, DequeOp::PopRight],
                vec![DequeOp::PopLeft],
            ],
        )
        .with_initial(vec![5, 6]),
    ];
    for m in &configs {
        Explorer::default().explore_histories(m, 10_000_000).unwrap();
    }
}
