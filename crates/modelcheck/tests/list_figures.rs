//! Exhaustive model checking of the linked-list deque (Theorem 4.1) and
//! reproduction of the Figure 9 / Figure 16 scenarios.

use dcas_linearize::{DequeOp, DequeRet};
use dcas_modelcheck::machines::list::{ListShared, NodeState};
use dcas_modelcheck::machines::ListMachine;
use dcas_modelcheck::{check_lockfree, ExploreConfig, Explorer};

fn explore_ok(m: &ListMachine) -> dcas_modelcheck::Report<ListShared> {
    Explorer::default()
        .explore(m, |_| {})
        .expect("proof obligations must hold on every reachable state")
}

#[test]
fn fig16_contending_delete_left_and_delete_right() {
    // Figure 16: a deque of two logically deleted nodes with deleteLeft
    // and deleteRight racing. Both sentinel DCASes overlap on a sentinel
    // pointer, so exactly one wins. Exhaustive exploration must reach:
    //  * the pre-state: two null nodes, both deleted bits set (top of
    //    Figure 16 == bottom of Figure 9);
    //  * "left wins": one null node remains, right deleted bit still set
    //    (bottom-left of Figure 16);
    //  * "right wins": the empty two-sentinel deque (bottom-right).
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    let mut saw_two_null = false;
    let mut saw_left_wins = false;
    let mut saw_empty = false;
    Explorer::default()
        .explore(&m, |sh: &ListShared| {
            let chain = sh.chain().unwrap();
            let nulls = chain.iter().filter(|&&id| sh.nodes[id].value == 0).count();
            if chain.len() == 2 && nulls == 2 && sh.left_deleted() && sh.right_deleted() {
                saw_two_null = true;
            }
            if chain.len() == 1 && nulls == 1 && sh.right_deleted() && !sh.left_deleted() {
                saw_left_wins = true;
            }
            if chain.is_empty() && !sh.left_deleted() && !sh.right_deleted() {
                saw_empty = true;
            }
        })
        .unwrap();
    assert!(saw_two_null, "Figure 16 pre-state not reached");
    assert!(saw_left_wins, "Figure 16 'left wins' state not reached");
    assert!(saw_empty, "Figure 16 'right wins' state not reached");
}

#[test]
fn fig9_all_four_empty_states_reachable() {
    // Figure 9: the four observable shapes of an empty deque, each driven
    // by the script that produces it.
    let observe = |m: &ListMachine| {
        let mut shapes = Vec::new();
        Explorer::default()
            .explore(m, |sh: &ListShared| {
                let chain = sh.chain().unwrap();
                if chain.iter().all(|&id| sh.nodes[id].value == 0) {
                    let shape = (chain.len(), sh.left_deleted(), sh.right_deleted());
                    if !shapes.contains(&shape) {
                        shapes.push(shape);
                    }
                }
            })
            .unwrap();
        shapes
    };

    // Top: the pristine empty deque.
    let shapes = observe(&ListMachine::new(vec![]));
    assert!(shapes.contains(&(0, false, false)), "plain empty not seen: {shapes:?}");

    // Second: one right-deleted cell.
    let shapes = observe(&ListMachine::with_initial(vec![vec![DequeOp::PopRight]], vec![5]));
    assert!(shapes.contains(&(1, false, true)), "right-deleted not seen: {shapes:?}");

    // Third: one left-deleted cell.
    let shapes = observe(&ListMachine::with_initial(vec![vec![DequeOp::PopLeft]], vec![5]));
    assert!(shapes.contains(&(1, true, false)), "left-deleted not seen: {shapes:?}");

    // Bottom: two deleted cells.
    let shapes = observe(&ListMachine::with_initial(
        vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        vec![5, 6],
    ));
    assert!(shapes.contains(&(2, true, true)), "two-deleted not seen: {shapes:?}");
}

#[test]
fn fig6_analogue_steal_of_last_element() {
    // The list-deque version of Figure 6: two pops race for one element.
    let m = ListMachine::with_initial(
        vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
        vec![7],
    );
    let mut outcomes = Vec::new();
    Explorer::default()
        .explore_full(&m, |_| {}, |tid, _, ret| {
            if !outcomes.contains(&(tid, ret)) {
                outcomes.push((tid, ret));
            }
        })
        .unwrap();
    assert!(outcomes.contains(&(0, DequeRet::Value(7))));
    assert!(outcomes.contains(&(0, DequeRet::Empty)));
    assert!(outcomes.contains(&(1, DequeRet::Value(7))));
    assert!(outcomes.contains(&(1, DequeRet::Empty)));
}

#[test]
fn theorem_4_1_push_pop_mix_two_threads() {
    let m = ListMachine::new(vec![
        vec![DequeOp::PushRight(5), DequeOp::PopLeft],
        vec![DequeOp::PushLeft(6), DequeOp::PopRight],
    ]);
    let report = explore_ok(&m);
    assert!(report.states > 30, "state space too small: {}", report.states);
    for f in &report.final_abstracts {
        for v in f {
            assert!([5, 6].contains(v));
        }
    }
}

#[test]
fn theorem_4_1_pushes_collide_with_pending_deletes() {
    // Pops leave marked nodes; concurrent pushes on both sides must
    // first complete the physical deletions (lines 7-8 of Figures 13/33).
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PushRight(8)],
            vec![DequeOp::PopLeft, DequeOp::PushLeft(9)],
        ],
        vec![5, 6],
    );
    let report = explore_ok(&m);
    // Terminal states: both values popped, both pushes landed.
    for f in &report.final_abstracts {
        assert_eq!(f.len(), 2, "both pushed values must be present: {f:?}");
    }
}

#[test]
fn theorem_4_1_three_threads_single_element() {
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PopRight],
            vec![DequeOp::PopLeft],
            vec![DequeOp::PushRight(8)],
        ],
        vec![5],
    );
    explore_ok(&m);
}

#[test]
fn physical_deletion_frees_exactly_the_popped_nodes() {
    // After the full script runs, every interior node is freed and no
    // node is freed twice (the arena model would panic on double-free by
    // construction; here we check the terminal census).
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PopRight, DequeOp::PopRight],
            vec![DequeOp::PopLeft, DequeOp::PopLeft],
        ],
        vec![5, 6],
    );
    let report = explore_ok(&m);
    for sh in &report.final_shared {
        let freed = sh.nodes.iter().skip(2).filter(|n| n.state == NodeState::Freed).count();
        let live = sh.nodes.iter().skip(2).filter(|n| n.state == NodeState::Live).count();
        // Both values were popped; nodes may linger logically deleted
        // (Live but null) until an op completes the physical delete, so
        // freed + live == 2 and no live node holds a value.
        assert_eq!(freed + live, 2);
        for n in sh.nodes.iter().skip(2) {
            if n.state == NodeState::Live {
                assert_eq!(n.value, 0);
            }
        }
    }
}

#[test]
fn lock_freedom_of_list_configurations() {
    // Section 5.2's subtler progress argument (deleteRight DCASes can
    // succeed without completing any operation), mechanized.
    let configs = vec![
        ListMachine::with_initial(
            vec![vec![DequeOp::PopRight], vec![DequeOp::PopLeft]],
            vec![5, 6],
        ),
        ListMachine::new(vec![
            vec![DequeOp::PushRight(5), DequeOp::PopRight],
            vec![DequeOp::PushLeft(6)],
        ]),
        ListMachine::with_initial(
            vec![
                vec![DequeOp::PopRight, DequeOp::PushRight(8)],
                vec![DequeOp::PopLeft],
            ],
            vec![5, 6],
        ),
    ];
    for m in &configs {
        let report = Explorer::new(ExploreConfig { track_graph: true, ..Default::default() })
            .explore(m, |_| {})
            .unwrap();
        check_lockfree(&report.graph).unwrap_or_else(|cycle| {
            panic!("livelock cycle found: {cycle:?}");
        });
    }
}

#[test]
fn exhaustive_small_configuration_sweep() {
    for initial in 0..=2u64 {
        let m = ListMachine::with_initial(
            vec![
                vec![DequeOp::PushRight(10), DequeOp::PopLeft],
                vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            ],
            (0..initial).map(|k| 5 + k).collect(),
        );
        explore_ok(&m);
    }
}

#[test]
fn random_walks_on_larger_configurations() {
    let m = ListMachine::with_initial(
        vec![
            vec![
                DequeOp::PushRight(10),
                DequeOp::PopLeft,
                DequeOp::PopRight,
                DequeOp::PushRight(11),
            ],
            vec![
                DequeOp::PushLeft(20),
                DequeOp::PopRight,
                DequeOp::PopLeft,
                DequeOp::PushLeft(21),
            ],
            vec![DequeOp::PopRight, DequeOp::PopLeft, DequeOp::PushRight(30)],
        ],
        vec![5, 6],
    );
    let report = Explorer::default().random_walks(&m, 3_000, 0xBEEF).unwrap();
    assert_eq!(report.walks, 3_000);
    assert!(report.linearizations >= 3_000 * 11);
}

#[test]
fn theorem_4_1_three_threads_mixed_two_ops() {
    // The largest exhaustive list configuration in the suite: three
    // threads, two operations each, mixing pushes and pops on both ends.
    let m = ListMachine::with_initial(
        vec![
            vec![DequeOp::PushRight(10), DequeOp::PopLeft],
            vec![DequeOp::PopRight, DequeOp::PushLeft(20)],
            vec![DequeOp::PopLeft, DequeOp::PopRight],
        ],
        vec![5, 6],
    );
    let report = explore_ok(&m);
    assert!(report.states > 1_000, "expected a large state space, got {}", report.states);
}
