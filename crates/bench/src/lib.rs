//! Shared workload drivers for the benchmark harness.
//!
//! Each bench target regenerates one experiment row of `EXPERIMENTS.md`.
//! The drivers here time *contended multithreaded phases* with scoped
//! threads and a barrier, returning the wall-clock duration so Criterion's
//! `iter_custom` can aggregate it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use dcas::{DcasStrategy, DcasWord, StrategyStats};
use dcas_deque::ConcurrentDeque;

pub mod loadgen;

/// Hardware threads visible to this process (`available_parallelism`),
/// or 1 when the host will not say.
pub fn hw_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Best-effort CPU model name (first `model name` in `/proc/cpuinfo`;
/// `"unknown"` off Linux or when unreadable).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The `"host"` section embedded in every `BENCH_*.json`: hardware
/// parallelism, CPU model, OS, and architecture, so a measurement can
/// never again be read without knowing what machine produced it.
/// Returns a JSON fragment (no trailing comma or newline), e.g.
/// `"host": {"hw_threads": 1, ...}`.
pub fn host_info_json() -> String {
    format!(
        "\"host\": {{\"hw_threads\": {}, \"cpu\": \"{}\", \"os\": \"{}\", \"arch\": \"{}\"}}",
        hw_threads(),
        cpu_model().replace('"', "'"),
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Prints the single-CPU oversubscription caveat when a bench is about
/// to run `max_threads` workers on fewer hardware threads. Returns
/// whether the caveat applied, so JSON writers can record it too.
/// (ROADMAP item 1 flagged the CI container as single-CPU: every
/// "scaling" curve there measures time-slicing, not parallelism —
/// stop hand-noting that in EXPERIMENTS.md, print it from the source.)
pub fn print_oversubscription_caveat(max_threads: usize) -> bool {
    let hw = hw_threads();
    if max_threads > hw {
        println!(
            "CAVEAT: {max_threads} worker threads on {hw} hardware thread(s) — \
             oversubscribed; thread counts beyond {hw} measure time-slicing \
             overhead, not parallel speedup."
        );
        true
    } else {
        false
    }
}

/// Balanced two-end workload: half the threads work the left end, half
/// the right; each does `ops` push/pop pairs. Returns total wall time.
///
/// This is the paper's headline scenario: "uninterrupted concurrent
/// access to both ends of the deque".
pub fn two_end_phase<D: ConcurrentDeque<u64>>(deque: &D, threads: usize, ops: u64) -> Duration {
    assert!(threads >= 2);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let deque = &deque;
            s.spawn(move || {
                barrier.wait();
                if t % 2 == 0 {
                    for i in 0..ops {
                        let _ = deque.push_left(i);
                        if i % 2 == 1 {
                            let _ = deque.pop_left();
                            let _ = deque.pop_left();
                        }
                    }
                } else {
                    for i in 0..ops {
                        let _ = deque.push_right(i);
                        if i % 2 == 1 {
                            let _ = deque.pop_right();
                            let _ = deque.pop_right();
                        }
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

/// Boundary churn: the deque oscillates around empty (or around full if
/// pre-filled), so nearly every operation runs the paper's boundary
/// detection.
pub fn boundary_phase<D: ConcurrentDeque<u64>>(deque: &D, threads: usize, ops: u64) -> Duration {
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let deque = &deque;
            s.spawn(move || {
                barrier.wait();
                for i in 0..ops {
                    if (t + i as usize).is_multiple_of(2) {
                        let _ = deque.push_right(i);
                    } else {
                        let _ = deque.pop_left();
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

/// Producer/consumer phase with explicit roles, used by the Greenwald
/// comparison: left threads only push/pop left, right threads only
/// push/pop right, so a structure that serializes the two ends shows its
/// bottleneck.
pub fn split_role_phase<D: ConcurrentDeque<u64>>(
    deque: &D,
    pairs: usize,
    ops: u64,
) -> Duration {
    let threads = pairs * 2;
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let deque = &deque;
            let stop = &stop;
            s.spawn(move || {
                barrier.wait();
                if t % 2 == 0 {
                    // Left-end worker: push then pop at the left.
                    for i in 0..ops {
                        let _ = deque.push_left(i);
                        let _ = deque.pop_left();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                } else {
                    for i in 0..ops {
                        let _ = deque.push_right(i);
                        let _ = deque.pop_right();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

/// Sequential push/pop cycles through a quarter-full deque; measures the
/// uncontended per-op cost including allocation (E5).
pub fn sequential_churn<D: ConcurrentDeque<u64>>(deque: &D, ops: u64) {
    for i in 0..64 {
        let _ = deque.push_right(i);
    }
    for i in 0..ops {
        let _ = deque.push_right(i);
        let _ = deque.pop_left();
    }
    while deque.pop_left().is_some() {}
}

/// Uncontended raw-strategy driver (E10): one thread performs `ops`
/// *successful* DCASes on a fixed pair of words, so every iteration runs
/// the full descriptor slow path (install, decide, resolve, retire) —
/// precisely the path descriptor pooling targets.
pub fn strategy_sequential_phase<S: DcasStrategy>(strategy: &S, ops: u64) -> Duration {
    let a = DcasWord::new(0);
    let b = DcasWord::new(4);
    let start = Instant::now();
    let mut x = 0u64;
    for _ in 0..ops {
        let ok = strategy.dcas(&a, &b, x, x + 4, x + 8, x + 12);
        assert!(ok, "uncontended dcas must succeed");
        x += 8;
    }
    start.elapsed()
}

/// Contended raw-strategy driver (E10): `threads` workers transfer value
/// back and forth between the *same* two words; each completes `ops`
/// transfers (a transfer may internally retry any number of failed
/// DCASes). The single shared pair maximizes descriptor collisions and
/// helping, which is what backoff targets. Returns the wall time for all
/// `threads * ops` transfers.
pub fn strategy_contended_phase<S: DcasStrategy + Sync>(
    strategy: &S,
    threads: usize,
    ops: u64,
) -> Duration {
    // Large symmetric start values keep both words far from underflow for
    // any plausible `ops` (net drift per transfer is ±4).
    let a = DcasWord::new(1 << 30);
    let b = DcasWord::new(1 << 30);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (barrier, a, b) = (&barrier, &a, &b);
            s.spawn(move || {
                barrier.wait();
                for _ in 0..ops {
                    loop {
                        let v1 = strategy.load(a);
                        let v2 = strategy.load(b);
                        // Odd threads push value left-to-right, even ones
                        // right-to-left, so the pair stays balanced.
                        let (n1, n2) =
                            if t % 2 == 0 { (v1 - 4, v2 + 4) } else { (v1 + 4, v2 - 4) };
                        if strategy.dcas(a, b, v1, v2, n1, n2) {
                            break;
                        }
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

/// Formats a [`StrategyStats`] snapshot as one compact log line for bench
/// output. All-zero snapshots (crate built without `dcas/stats`) yield a
/// note instead of misleading zeros.
pub fn format_stats(label: &str, stats: &StrategyStats) -> String {
    if *stats == StrategyStats::default() {
        return format!("{label}: (stats feature disabled)");
    }
    format!(
        "{label}: ops={} dcas={} failed={} casn={} casn_failed={} helps={} desc_reuse={} \
         desc_alloc={} reuse_rate={} elim_hits={} elim_misses={} elim_hit_rate={}",
        stats.ops,
        stats.dcas_ops,
        stats.dcas_failures,
        stats.casn_ops,
        stats.casn_failures,
        stats.helps,
        stats.descriptor_reuses,
        stats.descriptor_allocs,
        stats
            .reuse_rate()
            .map_or_else(|| "n/a".to_owned(), |r| format!("{:.3}", r)),
        stats.elim_hits,
        stats.elim_misses,
        stats
            .elim_hit_rate()
            .map_or_else(|| "n/a".to_owned(), |r| format!("{:.3}", r)),
    )
}
