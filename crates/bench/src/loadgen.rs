//! Open-loop load generator for the sharded broker (E14).
//!
//! Closed-loop drivers (every prior bench) let the system set the pace:
//! a slow response delays the *next* request, so measured latency
//! suffers coordinated omission — the generator politely waits out
//! exactly the moments that would have produced the worst samples. Here
//! arrivals follow a **virtual-time schedule** fixed before the run:
//! arrival `k` of a rate-`r` run is due at `k/r` seconds after start,
//! whether or not the broker is keeping up. Each value carries its
//! *scheduled* arrival time, so a consumer's latency sample
//! `now - scheduled` includes any time the producer spent running
//! behind schedule — the schedule slip is charged to the system, not
//! silently absorbed by the generator.
//!
//! When the broker cannot absorb an arrival (bounded shards at
//! capacity), the value is **shed** and counted — an open-loop
//! generator must never block the schedule on backpressure, or it
//! degenerates back into a closed loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dcas_broker::{BrokerShard, ShardedBroker};
use dcas_obs::{HistogramSnapshot, LogHistogram};

/// One open-loop run's shape.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSpec {
    /// Total arrival rate across all producers, per second. `None`
    /// drives saturation: producers offer as fast as the broker
    /// accepts (the schedule degenerates to "everything due now").
    pub rate_per_sec: Option<u64>,
    /// How long arrivals keep coming.
    pub duration: Duration,
    /// Producer threads. Arrival `k` belongs to producer
    /// `k % producers`. For exclusive-shard brokers (tiered) this must
    /// equal the shard count.
    pub producers: usize,
    /// Consumer threads.
    pub consumers: usize,
}

/// What an open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Arrivals the schedule produced.
    pub offered: u64,
    /// Arrivals the broker accepted.
    pub accepted: u64,
    /// Arrivals shed on backpressure (offered - accepted).
    pub shed: u64,
    /// Values consumers actually served.
    pub completed: u64,
    /// Wall time from first scheduled arrival to last consumed value.
    pub elapsed: Duration,
    /// Scheduled-arrival → consumption latency distribution
    /// (nanoseconds; log₂ buckets, so quantiles are upper bounds
    /// within a factor of two).
    pub latency: HistogramSnapshot,
}

impl OpenLoopReport {
    /// Values served per second over the whole run.
    pub fn sustained_per_sec(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency quantile upper bound in nanoseconds (0 when nothing
    /// completed).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.latency.quantile_bound(q).unwrap_or(0)
    }

    /// Fraction of offered arrivals that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Runs one open-loop phase against `broker`: `spec.producers` threads
/// follow the virtual-time schedule, `spec.consumers` threads drain
/// until the producers finish and the broker runs dry. Payloads are the
/// scheduled arrival times in nanoseconds, so the broker must carry
/// `u64` values.
pub fn open_loop<S: BrokerShard<u64>>(
    broker: &ShardedBroker<u64, S>,
    spec: OpenLoopSpec,
) -> OpenLoopReport {
    assert!(spec.producers > 0 && spec.consumers > 0);
    let hist = LogHistogram::new();
    let live_producers = AtomicUsize::new(spec.producers);
    let barrier = Barrier::new(spec.producers + spec.consumers + 1);
    let duration_ns = spec.duration.as_nanos() as u64;

    let (offered, accepted, completed, elapsed) = std::thread::scope(|s| {
        let mut producer_handles = Vec::new();
        let start = Arc::new(std::sync::OnceLock::<Instant>::new());
        for p in 0..spec.producers {
            let (barrier, live, start) = (&barrier, &live_producers, Arc::clone(&start));
            producer_handles.push(s.spawn(move || {
                let mut prod = broker.producer();
                barrier.wait();
                let start = *start.wait();
                let mut offered = 0u64;
                let mut shed = 0u64;
                // Arrival k (k ≡ p mod producers) is due at k/rate.
                let mut k = p as u64;
                loop {
                    let due_ns = match spec.rate_per_sec {
                        Some(r) => k.saturating_mul(1_000_000_000) / r,
                        None => start.elapsed().as_nanos() as u64,
                    };
                    if due_ns >= duration_ns {
                        break;
                    }
                    let now = start.elapsed().as_nanos() as u64;
                    if now < due_ns {
                        // Ahead of schedule: publish what is buffered,
                        // then wait out the gap (sleep coarse, spin the
                        // last stretch — the schedule is the contract).
                        if let Err(bp) = prod.flush() {
                            shed += bp.len() as u64;
                        }
                        let wait = due_ns - now;
                        if wait > 500_000 {
                            std::thread::sleep(Duration::from_nanos(wait - 200_000));
                        }
                        while (start.elapsed().as_nanos() as u64) < due_ns {
                            std::hint::spin_loop();
                        }
                    }
                    offered += 1;
                    // Behind-schedule arrivals fire back-to-back here and
                    // coalesce into chunk-atomic batches in the producer.
                    if let Err(bp) = prod.send(due_ns) {
                        shed += bp.len() as u64;
                    }
                    k += spec.producers as u64;
                }
                match prod.flush() {
                    Ok(()) => {}
                    Err(bp) => shed += bp.len() as u64,
                }
                drop(prod); // exclusive shards: owner death-flush
                live.fetch_sub(1, Ordering::AcqRel);
                (offered, shed)
            }));
        }

        let mut consumer_handles = Vec::new();
        for _ in 0..spec.consumers {
            let (barrier, live, hist, start) =
                (&barrier, &live_producers, &hist, Arc::clone(&start));
            consumer_handles.push(s.spawn(move || {
                let mut cons = broker.consumer();
                barrier.wait();
                let start = *start.wait();
                let mut completed = 0u64;
                let mut dry_after_done = 0u32;
                loop {
                    match cons.recv() {
                        Some(scheduled_ns) => {
                            dry_after_done = 0;
                            let now = start.elapsed().as_nanos() as u64;
                            hist.record(now.saturating_sub(scheduled_ns).max(1));
                            completed += 1;
                        }
                        None => {
                            if live.load(Ordering::Acquire) == 0 {
                                // Producers are done; a couple of empty
                                // sweeps over every shard means drained
                                // (rescue can be mid-flight once).
                                dry_after_done += 1;
                                if dry_after_done >= 3 {
                                    break;
                                }
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                completed
            }));
        }

        barrier.wait();
        let t0 = Instant::now();
        start.set(t0).unwrap();
        let mut offered = 0u64;
        let mut shed = 0u64;
        for h in producer_handles {
            let (o, sh) = h.join().unwrap();
            offered += o;
            shed += sh;
        }
        let mut completed = 0u64;
        for h in consumer_handles {
            completed += h.join().unwrap();
        }
        (offered, offered - shed, completed, t0.elapsed())
    });

    OpenLoopReport {
        offered,
        accepted,
        shed: offered - accepted,
        completed,
        elapsed,
        latency: hist.snapshot(),
    }
}
