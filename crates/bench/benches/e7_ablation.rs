//! E7 — the ablation the paper explicitly defers: "While both of these
//! code fragments may avoid overhead in some cases, there is also
//! overhead associated with including them. Experimentation would be
//! required to determine whether either or both of these code fragments
//! should be included for a specific application and system context."
//! (Section 3.)
//!
//! The two fragments of the array algorithm:
//!  * line 7 — re-read the index before the boundary-confirming DCAS;
//!  * lines 17-18 — use the strong DCAS's atomic failure view to report
//!    empty/full without retrying.
//!
//! We sweep all four on/off combinations across three contention regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::GlobalSeqLock;
use dcas_bench::{boundary_phase, sequential_churn, two_end_phase};
use dcas_deque::array::{ArrayConfig, ArrayDeque};

const OPS: u64 = 4_000;

fn config_name(cfg: ArrayConfig) -> String {
    format!(
        "line7={}/lines17-18={}",
        if cfg.revalidate_index { "on" } else { "off" },
        if cfg.strong_failure_check { "on" } else { "off" }
    )
}

fn all(c: &mut Criterion) {
    let configs = [
        ArrayConfig { revalidate_index: true, strong_failure_check: true },
        ArrayConfig { revalidate_index: true, strong_failure_check: false },
        ArrayConfig { revalidate_index: false, strong_failure_check: true },
        ArrayConfig { revalidate_index: false, strong_failure_check: false },
    ];

    let mut g = c.benchmark_group("e7/ablation");
    g.sample_size(10);
    for cfg in configs {
        let name = config_name(cfg);
        // Regime 1: uncontended sequential churn (fragments are pure
        // overhead here — no competition to detect).
        g.bench_function(BenchmarkId::new(&name, "sequential"), |b| {
            let d: ArrayDeque<u64, GlobalSeqLock> = ArrayDeque::with_config(1 << 12, cfg);
            b.iter(|| sequential_churn(&d, 1_000));
        });
        // Regime 2: two-end contention on a roomy deque.
        g.bench_function(BenchmarkId::new(&name, "contended"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let d: ArrayDeque<u64, GlobalSeqLock> = ArrayDeque::with_config(1 << 12, cfg);
                    total += two_end_phase(&d, 4, OPS);
                }
                total
            });
        });
        // Regime 3: boundary storm (the fragments' target scenario:
        // frequent empty detections, many stolen items).
        g.bench_function(BenchmarkId::new(&name, "boundary"), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let d: ArrayDeque<u64, GlobalSeqLock> = ArrayDeque::with_config(2, cfg);
                    total += boundary_phase(&d, 4, OPS);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, all);
criterion_main!(benches);
