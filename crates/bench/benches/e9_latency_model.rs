//! E9 — DCAS latency sensitivity: the question the paper leaves open.
//!
//! Section 6: "it seems very likely that our DCAS-based algorithms would
//! perform much better [than CAS-only alternatives]. (Of course, without
//! detailed knowledge of the implementation of a particular system
//! supporting DCAS, we cannot quantify this comparison.)"
//!
//! We quantify it parametrically: wrap the cheapest blocking emulation in
//! a spin-delay model and sweep the assumed DCAS latency, comparing
//! deque throughput against the mutex baseline at each point. The
//! crossover shows how cheap hardware DCAS would need to be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::{Delayed, GlobalSeqLock};
use dcas_baselines::MutexDeque;
use dcas_bench::two_end_phase;
use dcas_deque::{ConcurrentDeque, ListDeque};

const OPS: u64 = 3_000;
const THREADS: usize = 4;

fn bench_point<D: ConcurrentDeque<u64>>(c: &mut Criterion, name: &str, mk: impl Fn() -> D) {
    let mut g = c.benchmark_group("e9/latency_model");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new(name, THREADS), |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let d = mk();
                total += two_end_phase(&d, THREADS, OPS);
            }
            total
        });
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_point(c, "mutex-baseline", MutexDeque::<u64>::new);
    bench_point(c, "list/dcas-spin-0", ListDeque::<u64, Delayed<GlobalSeqLock, 0>>::new);
    bench_point(c, "list/dcas-spin-16", ListDeque::<u64, Delayed<GlobalSeqLock, 16>>::new);
    bench_point(c, "list/dcas-spin-64", ListDeque::<u64, Delayed<GlobalSeqLock, 64>>::new);
    bench_point(c, "list/dcas-spin-256", ListDeque::<u64, Delayed<GlobalSeqLock, 256>>::new);
    bench_point(c, "list/dcas-spin-1024", ListDeque::<u64, Delayed<GlobalSeqLock, 1024>>::new);
}

criterion_group!(benches, all);
criterion_main!(benches);
