//! E3 — the cost of *correct* boundary handling: workloads that keep the
//! deque hovering at empty (and, for bounded deques, at full), so almost
//! every operation runs the empty/full detection logic the paper
//! contributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::HarrisMcas;
use dcas_baselines::MutexDeque;
use dcas_bench::boundary_phase;
use dcas_deque::{ArrayDeque, ConcurrentDeque, ListDeque};

const OPS: u64 = 4_000;

fn bench_impl<D: ConcurrentDeque<u64>>(
    c: &mut Criterion,
    group: &str,
    name: &str,
    mk: impl Fn() -> D,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for threads in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let d = mk();
                    total += boundary_phase(&d, threads, OPS);
                }
                total
            });
        });
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    // Near-empty: unbounded/huge deques that oscillate around zero items.
    bench_impl(c, "e3/near_empty", "array-dcas", || {
        ArrayDeque::<u64, HarrisMcas>::new(1 << 12)
    });
    bench_impl(c, "e3/near_empty", "list-dcas", ListDeque::<u64, HarrisMcas>::new);
    bench_impl(c, "e3/near_empty", "mutex", MutexDeque::<u64>::new);

    // Near-full: a capacity-2 array deque; pushes bounce off "full"
    // constantly.
    bench_impl(c, "e3/near_full", "array-dcas-cap2", || {
        ArrayDeque::<u64, HarrisMcas>::new(2)
    });
    bench_impl(c, "e3/near_full", "mutex-cap2", || MutexDeque::<u64>::bounded(2));
}

criterion_group!(benches, all);
criterion_main!(benches);
