//! E16 — DCAS vs CAS: the Sundell–Tsigas CAS-only deque against the
//! paper's DCAS deques on the same workloads.
//!
//! The paper's premise is that DCAS makes deques *simple*; the
//! Sundell–Tsigas algorithm is the counter-argument that single-word
//! CAS suffices if you pay in protocol complexity (mark bits, two-step
//! insertion, helping). This experiment prices that trade:
//!
//! * **Scheduler grid** — the E13 matrix re-run with `sundell-cas` as
//!   an arm: thread counts 1/2/4/8 (plus `available_parallelism` when
//!   larger) × workloads flat/fib/quicksort, against `abp-cas`,
//!   `list-dcas` (the flat DCAS deque it structurally mirrors) and
//!   `tiered-chaselev` (the engineered fast path). One **sustained**
//!   million-task run closes the grid.
//! * **Mixed-ends contention** — the scheduler exercises deques
//!   owner-LIFO/thief-FIFO, which never pits the two ends against each
//!   other on purpose. This arm does: every thread round-robins
//!   push-left/push-right/pop-left/pop-right on one shared deque,
//!   `sundell-cas` vs `list-dcas` head-to-head (the only two arms with
//!   a genuine two-ended [`ConcurrentDeque`] surface), with a value
//!   conservation check doubling as a correctness guardrail.
//!
//! Runs as a plain binary (`harness = false`); unless `E16_SMOKE` is
//! set (CI smoke: two thread counts, small workloads, no file write) it
//! records everything in `BENCH_e16.json` at the workspace root.
//!
//! Guardrails (both modes exit nonzero on failure, printing a replay
//! command):
//!
//! * **Conservation** — the mixed-ends arm must conserve values exactly
//!   on every deque; a miscount is a correctness bug, never noise.
//! * **Parity** — on the flat scheduler workload `sundell-cas` must
//!   hold a floor fraction of `list-dcas`. The bar auto-degrades when
//!   the thread count oversubscribes the host (single-CPU containers
//!   measure contention overhead, not parallelism — see EXPERIMENTS.md
//!   §E16), and smoke mode only checks a generous engagement floor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcas_deque::{ConcurrentDeque, ListDeque, SundellDeque};
use dcas_workstealing::{
    AbpWorkDeque, DynDeque, ListWorkDeque, Scheduler, SundellWorkDeque, TieredChaseLevWorkDeque,
    WorkDeque, WorkerHandle,
};

/// Full-mode parity floor: flat `sundell-cas` as a fraction of
/// `list-dcas` when the thread count fits the host.
const PARITY_FLOOR: f64 = 0.5;
/// Degraded floor once the thread count oversubscribes the host: the
/// scheduler curves then measure preemption luck as much as the deque
/// (a descheduled thread mid-insertion forces every peer into the
/// helping protocol), so the bar drops to "still makes progress".
const PARITY_FLOOR_OVERSUBSCRIBED: f64 = 0.05;
/// Smoke-mode engagement floor vs `list-dcas`.
const SMOKE_FLOOR: f64 = 0.02;

const FIB_CUTOFF: u64 = 10;
const SORT_CUTOFF: usize = 64;

struct Measurement {
    workload: &'static str,
    arm: &'static str,
    threads: usize,
    elems: u64,
    nanos: u128,
    /// elems/s relative to the list-dcas row of the same (workload,
    /// threads) cell; 1.0 for list-dcas itself.
    speedup_vs_list: f64,
}

impl Measurement {
    fn elems_per_sec(&self) -> f64 {
        self.elems as f64 / (self.nanos as f64 / 1e9)
    }
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

// ---- Scheduler workload drivers (E13 conventions) ---------------------

fn flat_tasklist<D: WorkDeque>(workers: usize, n: u64) -> Duration {
    let done = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let d = done.clone();
    let start = Instant::now();
    sched.run(move |w| {
        for _ in 0..n {
            let d = d.clone();
            w.spawn(move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(done.load(Ordering::SeqCst), n);
    elapsed
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn fib(w: &WorkerHandle<'_, DynDeque>, n: u64) -> u64 {
    if n < FIB_CUTOFF {
        return fib_seq(n);
    }
    let (a, b) = w.join(|w| fib(w, n - 1), |w| fib(w, n - 2));
    a + b
}

fn fib_tasks(n: u64) -> u64 {
    if n < FIB_CUTOFF {
        0
    } else {
        1 + fib_tasks(n - 1) + fib_tasks(n - 2)
    }
}

fn fib_forkjoin<D: WorkDeque>(workers: usize, n: u64) -> Duration {
    let out = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let o = out.clone();
    let start = Instant::now();
    sched.run(move |w| {
        o.store(fib(w, n), Ordering::SeqCst);
    });
    let elapsed = start.elapsed();
    assert_eq!(out.load(Ordering::SeqCst), fib_seq(n));
    elapsed
}

fn quicksort(w: &WorkerHandle<'_, DynDeque>, v: &mut [u64]) {
    if v.len() <= SORT_CUTOFF {
        v.sort_unstable();
        return;
    }
    let pivot = v[v.len() / 2];
    let mut i = 0;
    for j in 0..v.len() {
        if v[j] < pivot {
            v.swap(i, j);
            i += 1;
        }
    }
    if i == 0 {
        for j in 0..v.len() {
            if v[j] == pivot {
                v.swap(i, j);
                i += 1;
            }
        }
        quicksort(w, &mut v[i..]);
        return;
    }
    let (lo, hi) = v.split_at_mut(i);
    w.join(|w| quicksort(w, lo), |w| quicksort(w, hi));
}

fn quicksort_forkjoin<D: WorkDeque>(workers: usize, len: usize) -> Duration {
    let data: Vec<u64> =
        (0..len as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 16).collect();
    let shared = Arc::new(Mutex::new(data));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let s2 = shared.clone();
    let start = Instant::now();
    sched.run(move |w| {
        let mut guard = s2.lock().unwrap();
        quicksort(w, &mut guard[..]);
    });
    let elapsed = start.elapsed();
    let sorted = shared.lock().unwrap();
    assert!(sorted.windows(2).all(|p| p[0] <= p[1]), "quicksort produced unsorted output");
    elapsed
}

// ---- Mixed-ends contention driver -------------------------------------

/// Every thread round-robins all four operations on one shared deque.
/// Returns the elapsed time; panics (→ nonzero exit) if values are not
/// conserved: sum and count of pushed values must equal sum and count
/// of popped-plus-drained values.
fn mixed_ends<D>(arm: &str, make: fn() -> D, threads: usize, ops_per_thread: u64) -> Duration
where
    D: ConcurrentDeque<u64> + Send + Sync + 'static,
{
    let deque = Arc::new(make());
    let start = Instant::now();
    // (pushed_sum, pushed_n, popped_sum, popped_n) per thread.
    let tallies: Vec<(u64, u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let deque = Arc::clone(&deque);
                s.spawn(move || {
                    let (mut ps, mut pn, mut os, mut on) = (0u64, 0u64, 0u64, 0u64);
                    for i in 0..ops_per_thread {
                        let v = ((t as u64) << 32) | (i + 1);
                        match (i as usize + t) % 4 {
                            0 => {
                                deque.push_left(v).unwrap();
                                ps += v;
                                pn += 1;
                            }
                            1 => {
                                if let Some(v) = deque.pop_right() {
                                    os += v;
                                    on += 1;
                                }
                            }
                            2 => {
                                deque.push_right(v).unwrap();
                                ps += v;
                                pn += 1;
                            }
                            _ => {
                                if let Some(v) = deque.pop_left() {
                                    os += v;
                                    on += 1;
                                }
                            }
                        }
                    }
                    (ps, pn, os, on)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let (mut push_sum, mut push_n, mut pop_sum, mut pop_n) = (0u64, 0u64, 0u64, 0u64);
    for (ps, pn, os, on) in tallies {
        push_sum += ps;
        push_n += pn;
        pop_sum += os;
        pop_n += on;
    }
    while let Some(v) = deque.pop_left() {
        pop_sum += v;
        pop_n += 1;
    }
    if (push_sum, push_n) != (pop_sum, pop_n) {
        eprintln!(
            "CONSERVATION GUARDRAIL FAILED: mixed-ends/{arm} x{threads}: pushed \
             ({push_n} values, sum {push_sum}) != popped ({pop_n} values, sum {pop_sum})"
        );
        std::process::exit(1);
    }
    elapsed
}

// ---- Matrix driver ----------------------------------------------------

type Driver = fn(usize, u64) -> Duration;

fn arm_driver<D: WorkDeque>(workload: &str) -> Driver {
    match workload {
        "flat" => |w, n| flat_tasklist::<D>(w, n),
        "fib" => |w, n| fib_forkjoin::<D>(w, n),
        "quicksort" => |w, n| quicksort_forkjoin::<D>(w, n as usize),
        _ => unreachable!(),
    }
}

/// `list-dcas` first: it is the speedup denominator.
const ARMS: [&str; 4] = ["list-dcas", "sundell-cas", "abp-cas", "tiered-chaselev"];

fn drivers_for(workload: &str) -> [Driver; 4] {
    [
        arm_driver::<ListWorkDeque>(workload),
        arm_driver::<SundellWorkDeque>(workload),
        arm_driver::<AbpWorkDeque>(workload),
        arm_driver::<TieredChaseLevWorkDeque>(workload),
    ]
}

fn main() {
    let smoke = std::env::var_os("E16_SMOKE").is_some();
    let repeats: usize = if smoke { 1 } else { 7 };

    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut thread_counts: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };
    if !smoke && hw > 8 {
        thread_counts.push(hw);
    }

    let flat_n: u64 = if smoke { 4_000 } else { 65_536 };
    let fib_n: u64 = if smoke { 16 } else { 24 };
    let sort_len: u64 = if smoke { 4_096 } else { 65_536 };
    let workloads: [(&'static str, u64, u64); 3] = [
        ("flat", flat_n, flat_n),
        ("fib", fib_n, fib_tasks(fib_n) + 1),
        ("quicksort", sort_len, sort_len),
    ];

    let mut results: Vec<Measurement> = Vec::new();

    for &(workload, param, elems) in &workloads {
        let drivers = drivers_for(workload);
        for &threads in &thread_counts {
            // Interleaved repeats + adjacent same-arm warmup: the E13
            // allocator-hygiene convention (see e13_scaling.rs).
            let mut runs: [Vec<Duration>; 4] = Default::default();
            for _ in 0..repeats {
                for (i, drive) in drivers.iter().enumerate() {
                    drive(threads, param);
                    runs[i].push(drive(threads, param));
                }
            }
            let list_nanos = median(runs[0].clone()).as_nanos();
            for (i, arm) in ARMS.iter().enumerate() {
                let nanos = median(runs[i].clone()).as_nanos();
                results.push(Measurement {
                    workload,
                    arm,
                    threads,
                    elems,
                    nanos,
                    speedup_vs_list: list_nanos as f64 / nanos as f64,
                });
            }
        }
    }

    // ---- Mixed-ends contention arm -------------------------------------
    let mixed_ops: u64 = if smoke { 10_000 } else { 200_000 };
    type MixedDriver = fn(&str, usize, u64) -> Duration;
    let mixed: [(&str, MixedDriver); 2] = [
        ("sundell-cas", |arm, t, n| mixed_ends(arm, SundellDeque::<u64>::new, t, n)),
        ("list-dcas", |arm, t, n| mixed_ends(arm, ListDeque::<u64>::new, t, n)),
    ];
    for &threads in &thread_counts {
        let mut cell: Vec<(usize, u128)> = Vec::new();
        let mut runs: [Vec<Duration>; 2] = Default::default();
        for _ in 0..repeats {
            for (i, &(arm, drive)) in mixed.iter().enumerate() {
                drive(arm, threads, mixed_ops);
                runs[i].push(drive(arm, threads, mixed_ops));
            }
        }
        for (i, _) in mixed.iter().enumerate() {
            cell.push((i, median(runs[i].clone()).as_nanos()));
        }
        let list_nanos = cell.iter().find(|&&(i, _)| mixed[i].0 == "list-dcas").unwrap().1;
        for (i, nanos) in cell {
            results.push(Measurement {
                workload: "mixed-ends",
                arm: mixed[i].0,
                threads,
                elems: threads as u64 * mixed_ops,
                nanos,
                speedup_vs_list: list_nanos as f64 / nanos as f64,
            });
        }
    }

    // ---- Sustained million-task run (full mode only) -------------------
    if !smoke {
        let n = 1_000_000u64;
        for (arm, run) in [
            ("list-dcas", flat_tasklist::<ListWorkDeque> as Driver),
            ("sundell-cas", flat_tasklist::<SundellWorkDeque> as Driver),
        ] {
            run(4, n / 10); // warmup
            let d = run(4, n);
            results.push(Measurement {
                workload: "sustained-1M",
                arm,
                threads: 4,
                elems: n,
                nanos: d.as_nanos(),
                speedup_vs_list: 1.0, // filled below
            });
        }
        let list = results
            .iter()
            .find(|m| m.workload == "sustained-1M" && m.arm == "list-dcas")
            .map(|m| m.nanos)
            .unwrap();
        for m in results.iter_mut().filter(|m| m.workload == "sustained-1M") {
            m.speedup_vs_list = list as f64 / m.nanos as f64;
        }
    }

    println!();
    println!(
        "{:<14} {:<18} {:>8} {:>14} {:>10}",
        "workload", "arm", "threads", "elems/sec", "vs list"
    );
    for m in &results {
        println!(
            "{:<14} {:<18} {:>8} {:>14.0} {:>9.2}x",
            m.workload,
            m.arm,
            m.threads,
            m.elems_per_sec(),
            m.speedup_vs_list,
        );
    }

    // ---- Guardrails ----------------------------------------------------
    // (Conservation already enforced inside `mixed_ends` — a failure
    // exits before we get here.)
    let replay = "cargo bench -p dcas-bench --bench e16_casonly";
    let mut ok = true;
    for &threads in &thread_counts {
        let su = results
            .iter()
            .find(|m| m.workload == "flat" && m.arm == "sundell-cas" && m.threads == threads)
            .unwrap();
        let floor = if smoke {
            SMOKE_FLOOR
        } else if threads > hw {
            PARITY_FLOOR_OVERSUBSCRIBED
        } else {
            PARITY_FLOOR
        };
        if su.speedup_vs_list < floor {
            ok = false;
            eprintln!(
                "PERF GUARDRAIL FAILED: flat/sundell-cas x{threads} at {:.4}x of \
                 list-dcas (floor {floor}{}); replay with:\n  {replay}",
                su.speedup_vs_list,
                if threads > hw { ", oversubscribed" } else { "" },
            );
        }
    }

    if smoke {
        println!("\nE16_SMOKE set: skipping BENCH_e16.json");
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"workload\": \"{}\", \"arm\": \"{}\", \"threads\": {}, \"elems\": {}, \"nanos\": {}, \"elems_per_sec\": {:.0}, \"speedup_vs_list\": {:.3}}}",
                m.workload,
                m.arm,
                m.threads,
                m.elems,
                m.nanos,
                m.elems_per_sec(),
                m.speedup_vs_list,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e16_casonly\",\n  {},\n  \"oversubscribed\": {},\n  \"repeats\": {repeats},\n  \"available_parallelism\": {hw},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        dcas_bench::host_info_json(),
        dcas_bench::print_oversubscription_caveat(thread_counts.iter().copied().max().unwrap_or(1)),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e16.json");
    std::fs::write(out, json).expect("write BENCH_e16.json");
    println!("\nwrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
