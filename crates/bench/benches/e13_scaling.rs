//! E13 — N-core scaling curves for the fork-join executor and the
//! Chase-Lev private tier (the PR-6 throughput levers).
//!
//! A matrix of **thread counts × deque arms × workloads**:
//!
//! * Thread counts: 1, 2, 4, 8 (plus `available_parallelism` when it
//!   exceeds 8). On a single-CPU container every count above 1 is
//!   oversubscribed — the curves then measure contention overhead, not
//!   parallel speedup; see the EXPERIMENTS.md §E13 caveat.
//! * Arms: the flat paper deque (`list-dcas`), the spill-only two-level
//!   wrapper (`tiered-list-dcas`, PR 5), the stealable Chase-Lev tier
//!   (`tiered-chaselev`, this PR), and the CAS-only ABP baseline
//!   (`abp-cas`).
//! * Workloads: a **flat** task list (one root spawning N trivial
//!   tasks — pure deque throughput, the steal path under maximum
//!   contention), recursive **fib** via `WorkerHandle::join` (deep
//!   dependency chains, the joiner helping while blocked), and parallel
//!   **quicksort** via `join` on borrowed sub-slices (irregular task
//!   sizes).
//!
//! One **sustained** run closes the bench: a million-task flat list on
//! `tiered-chaselev` and `abp-cas`, long enough for spill/refill and
//! buffer-growth steady state to dominate over startup effects.
//!
//! Runs as a plain binary (`harness = false`), prints a table with
//! per-arm elems/s and speedup-vs-abp columns, and — unless `E13_SMOKE`
//! is set (CI smoke mode: two thread counts, small workloads, no file
//! write) — records everything in `BENCH_e13.json` at the workspace
//! root.
//!
//! Both modes enforce a perf guardrail, exiting nonzero with a replay
//! command on failure. Full mode holds the PR's acceptance bars: the
//! flat-workload `tiered-chaselev` row must stay at or above `abp-cas`
//! at every measured thread count, and at 4 threads it must not fall
//! behind `tiered-list-dcas`. Smoke mode only checks a generous floor
//! (the structure still engages at all).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcas_workstealing::{
    AbpWorkDeque, DynDeque, ListWorkDeque, Scheduler, TieredChaseLevWorkDeque,
    TieredListWorkDeque, WorkDeque, WorkerHandle,
};

/// Guardrail floor for smoke mode: tiered-chaselev as a fraction of
/// abp-cas on the flat workload. Deliberately generous — it catches
/// "the tier stopped engaging", not ratio drift.
const SMOKE_FLOOR: f64 = 0.02;

/// Sequential cutoff for the recursive workloads.
const FIB_CUTOFF: u64 = 10;
const SORT_CUTOFF: usize = 64;

struct Measurement {
    workload: &'static str,
    arm: &'static str,
    threads: usize,
    elems: u64,
    nanos: u128,
    /// elems/s relative to the abp-cas row of the same (workload,
    /// threads) cell; 1.0 for abp-cas itself.
    speedup_vs_abp: f64,
}

impl Measurement {
    fn elems_per_sec(&self) -> f64 {
        self.elems as f64 / (self.nanos as f64 / 1e9)
    }
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

// ---- Workload drivers -------------------------------------------------

/// Flat: one root task spawns `n` trivial tasks. Thieves hit the owner's
/// deque continuously — this is the pure deque-throughput row.
fn flat_tasklist<D: WorkDeque>(workers: usize, n: u64) -> Duration {
    let done = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let d = done.clone();
    let start = Instant::now();
    sched.run(move |w| {
        for _ in 0..n {
            let d = d.clone();
            w.spawn(move |_| {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(done.load(Ordering::SeqCst), n);
    elapsed
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn fib(w: &WorkerHandle<'_, DynDeque>, n: u64) -> u64 {
    if n < FIB_CUTOFF {
        return fib_seq(n);
    }
    let (a, b) = w.join(|w| fib(w, n - 1), |w| fib(w, n - 2));
    a + b
}

/// Join-forked task count for `fib(n)`: each join above the cutoff
/// forks exactly one task (the b side), plus the root.
fn fib_tasks(n: u64) -> u64 {
    if n < FIB_CUTOFF {
        0
    } else {
        1 + fib_tasks(n - 1) + fib_tasks(n - 2)
    }
}

fn fib_forkjoin<D: WorkDeque>(workers: usize, n: u64) -> Duration {
    let out = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let o = out.clone();
    let start = Instant::now();
    sched.run(move |w| {
        o.store(fib(w, n), Ordering::SeqCst);
    });
    let elapsed = start.elapsed();
    assert_eq!(out.load(Ordering::SeqCst), fib_seq(n));
    elapsed
}

fn quicksort(w: &WorkerHandle<'_, DynDeque>, v: &mut [u64]) {
    if v.len() <= SORT_CUTOFF {
        v.sort_unstable();
        return;
    }
    let pivot = v[v.len() / 2];
    let mut i = 0;
    for j in 0..v.len() {
        if v[j] < pivot {
            v.swap(i, j);
            i += 1;
        }
    }
    if i == 0 {
        // Pivot is the minimum: park its copies up front so the
        // recursion shrinks.
        for j in 0..v.len() {
            if v[j] == pivot {
                v.swap(i, j);
                i += 1;
            }
        }
        quicksort(w, &mut v[i..]);
        return;
    }
    let (lo, hi) = v.split_at_mut(i);
    w.join(|w| quicksort(w, lo), |w| quicksort(w, hi));
}

fn quicksort_forkjoin<D: WorkDeque>(workers: usize, len: usize) -> Duration {
    let data: Vec<u64> =
        (0..len as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 16).collect();
    let shared = Arc::new(Mutex::new(data));
    let sched: Scheduler<D> = Scheduler::new(workers);
    let s2 = shared.clone();
    let start = Instant::now();
    sched.run(move |w| {
        let mut guard = s2.lock().unwrap();
        quicksort(w, &mut guard[..]);
    });
    let elapsed = start.elapsed();
    let sorted = shared.lock().unwrap();
    assert!(sorted.windows(2).all(|p| p[0] <= p[1]), "quicksort produced unsorted output");
    elapsed
}

// ---- Matrix driver ----------------------------------------------------

type Driver = fn(usize, u64) -> Duration;

fn arm_driver<D: WorkDeque>(workload: &str) -> Driver {
    match workload {
        "flat" => |w, n| flat_tasklist::<D>(w, n),
        "fib" => |w, n| fib_forkjoin::<D>(w, n),
        "quicksort" => |w, n| quicksort_forkjoin::<D>(w, n as usize),
        _ => unreachable!(),
    }
}

const ARMS: [&str; 4] = ["abp-cas", "list-dcas", "tiered-list-dcas", "tiered-chaselev"];

fn drivers_for(workload: &str) -> [Driver; 4] {
    [
        arm_driver::<AbpWorkDeque>(workload),
        arm_driver::<ListWorkDeque>(workload),
        arm_driver::<TieredListWorkDeque>(workload),
        arm_driver::<TieredChaseLevWorkDeque>(workload),
    ]
}

fn main() {
    let smoke = std::env::var_os("E13_SMOKE").is_some();
    let repeats: usize = if smoke { 1 } else { 7 };

    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut thread_counts: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };
    if !smoke && hw > 8 {
        thread_counts.push(hw);
    }

    // (workload, parameter, elems-per-run)
    let flat_n: u64 = if smoke { 4_000 } else { 65_536 };
    let fib_n: u64 = if smoke { 16 } else { 24 };
    let sort_len: u64 = if smoke { 4_096 } else { 65_536 };
    let workloads: [(&'static str, u64, u64); 3] = [
        ("flat", flat_n, flat_n),
        ("fib", fib_n, fib_tasks(fib_n) + 1),
        ("quicksort", sort_len, sort_len),
    ];

    let mut results: Vec<Measurement> = Vec::new();

    for &(workload, param, elems) in &workloads {
        let drivers = drivers_for(workload);
        for &threads in &thread_counts {
            // Interleave repeats across arms (E10/E11/E12 convention) so
            // machine-wide drift lands on every arm and cancels in the
            // medians — but precede every timed run with an untimed run
            // of the *same* arm. The arms share one heap and the
            // list-deque arms churn ~n list nodes per run, so whichever
            // arm runs next inherits a fragmented allocator; the
            // adjacent warmup repopulates the arm's pools (and faults in
            // its arenas) so the timed run measures the deque, not the
            // neighbour's leftovers. Without it the Chase-Lev arm loses
            // ~80ns/task at n=65536 purely from run ordering.
            let mut runs: [Vec<Duration>; 4] = Default::default();
            for _ in 0..repeats {
                for (i, drive) in drivers.iter().enumerate() {
                    drive(threads, param);
                    runs[i].push(drive(threads, param));
                }
            }
            let abp_nanos = median(runs[0].clone()).as_nanos();
            for (i, arm) in ARMS.iter().enumerate() {
                let nanos = median(runs[i].clone()).as_nanos();
                results.push(Measurement {
                    workload,
                    arm,
                    threads,
                    elems,
                    nanos,
                    speedup_vs_abp: abp_nanos as f64 / nanos as f64,
                });
            }
        }
    }

    // ---- Sustained million-task run (full mode only) -------------------
    if !smoke {
        let n = 1_000_000u64;
        for (arm, run) in [
            ("tiered-chaselev", flat_tasklist::<TieredChaseLevWorkDeque> as Driver),
            ("abp-cas", flat_tasklist::<AbpWorkDeque> as Driver),
        ] {
            run(4, n / 10); // warmup (same allocator-hygiene rationale)
            let d = run(4, n);
            results.push(Measurement {
                workload: "sustained-1M",
                arm,
                threads: 4,
                elems: n,
                nanos: d.as_nanos(),
                speedup_vs_abp: 1.0, // filled below
            });
        }
        let abp = results
            .iter()
            .find(|m| m.workload == "sustained-1M" && m.arm == "abp-cas")
            .map(|m| m.nanos)
            .unwrap();
        for m in results.iter_mut().filter(|m| m.workload == "sustained-1M") {
            m.speedup_vs_abp = abp as f64 / m.nanos as f64;
        }
    }

    println!();
    println!(
        "{:<14} {:<18} {:>8} {:>14} {:>10}",
        "workload", "arm", "threads", "elems/sec", "vs abp"
    );
    for m in &results {
        println!(
            "{:<14} {:<18} {:>8} {:>14.0} {:>9.2}x",
            m.workload,
            m.arm,
            m.threads,
            m.elems_per_sec(),
            m.speedup_vs_abp,
        );
    }

    // ---- Guardrails ----------------------------------------------------
    let replay = "cargo bench -p dcas-bench --bench e13_scaling";
    let mut ok = true;
    if smoke {
        for &threads in &thread_counts {
            let cl = results
                .iter()
                .find(|m| m.workload == "flat" && m.arm == "tiered-chaselev" && m.threads == threads)
                .unwrap();
            if cl.speedup_vs_abp < SMOKE_FLOOR {
                ok = false;
                eprintln!(
                    "PERF GUARDRAIL FAILED: flat/tiered-chaselev x{threads} at \
                     {:.4}x of abp-cas (smoke floor {SMOKE_FLOOR}); replay with:\n  {replay}",
                    cl.speedup_vs_abp
                );
            }
        }
    } else {
        // Acceptance bar 1: flat tiered-chaselev >= abp-cas at every
        // measured thread count.
        for &threads in &thread_counts {
            let cl = results
                .iter()
                .find(|m| m.workload == "flat" && m.arm == "tiered-chaselev" && m.threads == threads)
                .unwrap();
            if cl.speedup_vs_abp < 1.0 {
                ok = false;
                eprintln!(
                    "PERF GUARDRAIL FAILED: flat/tiered-chaselev x{threads} at \
                     {:.3}x of abp-cas (bar: >= 1.0); replay with:\n  {replay}",
                    cl.speedup_vs_abp
                );
            }
        }
        // Acceptance bar 2: at 4 threads the Chase-Lev tier must not
        // fall behind the spill-only tier it replaces.
        let find = |arm: &str| {
            results
                .iter()
                .find(|m| m.workload == "flat" && m.arm == arm && m.threads == 4)
                .unwrap()
                .elems_per_sec()
        };
        let (cl, tl) = (find("tiered-chaselev"), find("tiered-list-dcas"));
        if cl < tl {
            ok = false;
            eprintln!(
                "PERF GUARDRAIL FAILED: flat/tiered-chaselev x4 ({cl:.0} elems/s) \
                 below tiered-list-dcas ({tl:.0}); replay with:\n  {replay}"
            );
        } else {
            println!(
                "\ntiered-chaselev x4 flat: {cl:.0} elems/s = {:.2}x tiered-list-dcas \
                 ({tl:.0}); E12 fork-join reference row was 4,944,316 elems/s",
                cl / tl
            );
        }
    }

    if smoke {
        println!("\nE13_SMOKE set: skipping BENCH_e13.json");
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"workload\": \"{}\", \"arm\": \"{}\", \"threads\": {}, \"elems\": {}, \"nanos\": {}, \"elems_per_sec\": {:.0}, \"speedup_vs_abp\": {:.3}}}",
                m.workload,
                m.arm,
                m.threads,
                m.elems,
                m.nanos,
                m.elems_per_sec(),
                m.speedup_vs_abp,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e13_scaling\",\n  {},\n  \"oversubscribed\": {},\n  \"repeats\": {repeats},\n  \"hw_threads\": {hw},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        dcas_bench::host_info_json(),
        dcas_bench::print_oversubscription_caveat(thread_counts.iter().copied().max().unwrap_or(1)),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e13.json");
    std::fs::write(out, json).expect("write BENCH_e13.json");
    println!("\nwrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
