//! E12 — hardware pair DCAS, padding ablation, and the two-level
//! owner-biased scheduler deque (the PR-5 throughput levers).
//!
//! Three phases:
//!
//! 1. **pair-dcas** — single thread transferring value between the two
//!    halves of a [`DcasPair`] through `HarrisMcas::dcas`, with the
//!    hardware pair fast path off (full descriptor protocol: RDCSS
//!    installs, helping, epoch-managed release) vs on (one
//!    `cmpxchg16b`). The acceptance bar is hw-pair ≥ 3× descriptor.
//! 2. **padding** — each of 4 threads hammering its *own* `AtomicU64`,
//!    with the counters packed into one cache line vs `CachePadded`
//!    apart. On a multi-core host this isolates false sharing; in this
//!    single-CPU container threads never run concurrently, so the arm
//!    mostly bounds the padding's instruction-path cost (see the
//!    EXPERIMENTS.md §E12 caveat).
//! 3. **fork-join** — the E6/E11 spawn tree on the work-stealing
//!    scheduler, adding the tiered two-level deques
//!    (`TieredListWorkDeque`/`TieredArrayWorkDeque`) next to the flat
//!    adapters and the ABP baseline. The tiered arms keep the owner's
//!    push/pop on a private ring and spill/refill the paper's deque in
//!    chunk-atomic batches of 8, so the amortised DCAS cost per task
//!    collapses; the acceptance bar is ≥ 10× the flat E11 dcas rows.
//!
//! Runs as a plain binary (`harness = false`), prints a table, and —
//! unless `E12_SMOKE` is set (the CI smoke mode, which shrinks every
//! phase and skips the file write) — records the measurements in
//! `BENCH_e12.json` at the workspace root. Build with `--features
//! stats` to print the `dcas::stats` counter lines (pair hits vs
//! descriptor fallbacks) after phase 1.
//!
//! In both modes the binary enforces a generous perf guardrail: the
//! tiered fork-join arms must stay above a small fraction of the ABP
//! baseline (catching "the fast path silently stopped engaging"
//! regressions, not chasing exact ratios), exiting nonzero with a
//! replay command otherwise — that is what CI's `perf-smoke` job runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use dcas::{DcasPair, DcasStrategy, HarrisMcas, McasConfig};
use dcas_workstealing::{
    AbpWorkDeque, ArrayWorkDeque, DynDeque, ListWorkDeque, Scheduler, TieredArrayWorkDeque,
    TieredListWorkDeque, WorkDeque, WorkerHandle,
};

/// Flat dcas fork-join throughput recorded in BENCH_e11.json — the
/// baseline the tiered arms must beat by 10×.
const E11_LIST_EPS: f64 = 134_562.0;
const E11_ARRAY_EPS: f64 = 145_900.0;

/// Guardrail floor: tiered dcas arms as a fraction of abp-cas. E11's
/// *flat* arms sat at 0.033×; anything below that means the two-level
/// structure stopped working entirely.
const GUARDRAIL_FLOOR: f64 = 0.02;

struct Measurement {
    phase: &'static str,
    arm: String,
    threads: usize,
    elems: u64,
    nanos: u128,
    speedup: f64,
}

impl Measurement {
    fn elems_per_sec(&self) -> f64 {
        self.elems as f64 / (self.nanos as f64 / 1e9)
    }
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

/// Phase 1 driver: `iters` successful two-word transfers between the
/// halves of one pair (lo -= 4, hi += 4; payloads keep the reserved low
/// bits clear). Single-threaded on purpose: it prices the *instruction
/// path* of one DCAS — descriptor install + helping protocol + epoch
/// traffic vs a single `cmpxchg16b`.
fn pair_transfer(mcas: &HarrisMcas, iters: u64) -> Duration {
    let pair = DcasPair::new(iters * 4, 0);
    let start = Instant::now();
    let (mut lo, mut hi) = (iters * 4, 0u64);
    for _ in 0..iters {
        assert!(mcas.dcas(pair.lo(), pair.hi(), lo, hi, lo - 4, hi + 4));
        lo -= 4;
        hi += 4;
    }
    let elapsed = start.elapsed();
    assert_eq!((mcas.load(pair.lo()), mcas.load(pair.hi())), (0, iters * 4));
    elapsed
}

/// Phase 2 driver: `threads` threads, each incrementing its own counter
/// `incs` times; the two arms differ only in whether neighbouring
/// counters share a cache line.
fn counter_storm(padded: bool, threads: usize, incs: u64) -> Duration {
    let packed: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let spaced: Vec<CachePadded<AtomicU64>> =
        (0..threads).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (barrier, packed, spaced) = (&barrier, &packed, &spaced);
            s.spawn(move || {
                let counter: &AtomicU64 = if padded { &spaced[t] } else { &packed[t] };
                barrier.wait();
                for _ in 0..incs {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

fn spawn_tree(w: &WorkerHandle<'_, DynDeque>, depth: u32, leaves: Arc<AtomicU64>) {
    if depth == 0 {
        leaves.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let l = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, l));
    let r = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, r));
}

/// Phase 3 driver: fork-join spawn tree (identical to E11's so the rows
/// are directly comparable).
fn fork_join<D: WorkDeque>(workers: usize, depth: u32) -> Duration {
    let leaves = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::with_capacity(workers, 1 << 14);
    let l = leaves.clone();
    let start = Instant::now();
    sched.run(move |w| spawn_tree(w, depth, l));
    let elapsed = start.elapsed();
    assert_eq!(leaves.load(Ordering::SeqCst), 1u64 << depth);
    elapsed
}

fn main() {
    let smoke = std::env::var_os("E12_SMOKE").is_some();
    let repeats: usize = if smoke { 1 } else { 7 };
    let pair_iters: u64 = if smoke { 20_000 } else { 500_000 };
    let pad_incs: u64 = if smoke { 50_000 } else { 1_000_000 };
    let pad_threads = 4usize;
    let fj_depth: u32 = if smoke { 7 } else { 11 };
    // At least the E12 reference width of 4 so historical rows stay
    // comparable; wider hosts get their real parallelism.
    let fj_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(4);

    let mut results: Vec<Measurement> = Vec::new();

    // ---- Phase 1: pair DCAS, descriptor protocol vs cmpxchg16b ---------
    // Repeats are interleaved across arms (as in E10/E11) so machine-wide
    // drift lands on every arm equally and cancels in the medians.
    {
        let descriptor =
            HarrisMcas::with_config(McasConfig { hw_pair: false, ..Default::default() });
        let hw = HarrisMcas::new();
        let mut runs: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..repeats {
            runs[0].push(pair_transfer(&descriptor, pair_iters));
            runs[1].push(pair_transfer(&hw, pair_iters));
        }
        let base = median(runs[0].clone()).as_nanos();
        for (arm, i) in [("descriptor", 0usize), ("hw-pair", 1)] {
            let nanos = median(runs[i].clone()).as_nanos();
            results.push(Measurement {
                phase: "pair-dcas",
                arm: arm.to_owned(),
                threads: 1,
                elems: pair_iters,
                nanos,
                speedup: base as f64 / nanos as f64,
            });
        }
        #[cfg(feature = "stats")]
        {
            use dcas_bench::format_stats;
            println!("{}", format_stats("pair-dcas/descriptor", &descriptor.stats()));
            println!("{}", format_stats("pair-dcas/hw", &hw.stats()));
            if let Some(rate) = hw.stats().pair_hit_rate() {
                println!("pair-dcas/hw pair_hit_rate = {rate:.3}");
            }
        }
    }

    // ---- Phase 2: per-thread counters, packed vs padded ----------------
    {
        let mut runs: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..repeats {
            runs[0].push(counter_storm(false, pad_threads, pad_incs));
            runs[1].push(counter_storm(true, pad_threads, pad_incs));
        }
        let base = median(runs[0].clone()).as_nanos();
        for (arm, i) in [("packed", 0usize), ("padded", 1)] {
            let nanos = median(runs[i].clone()).as_nanos();
            results.push(Measurement {
                phase: "padding",
                arm: arm.to_owned(),
                threads: pad_threads,
                elems: pad_incs * pad_threads as u64,
                nanos,
                speedup: base as f64 / nanos as f64,
            });
        }
    }

    // ---- Phase 3: fork-join, flat vs tiered deques ---------------------
    {
        let leaves = 1u64 << fj_depth;
        let mut runs: [Vec<Duration>; 5] = Default::default();
        for _ in 0..repeats {
            runs[0].push(fork_join::<AbpWorkDeque>(fj_workers, fj_depth));
            runs[1].push(fork_join::<ListWorkDeque>(fj_workers, fj_depth));
            runs[2].push(fork_join::<ArrayWorkDeque>(fj_workers, fj_depth));
            runs[3].push(fork_join::<TieredListWorkDeque>(fj_workers, fj_depth));
            runs[4].push(fork_join::<TieredArrayWorkDeque>(fj_workers, fj_depth));
        }
        let base = median(runs[0].clone()).as_nanos();
        let arms = [
            "abp-cas",
            "list-dcas",
            "array-dcas",
            "tiered-list-dcas",
            "tiered-array-dcas",
        ];
        for (arm, r) in arms.iter().zip(runs.iter()) {
            let nanos = median(r.clone()).as_nanos();
            results.push(Measurement {
                phase: "fork-join",
                arm: (*arm).to_owned(),
                threads: fj_workers,
                elems: leaves,
                nanos,
                speedup: base as f64 / nanos as f64,
            });
        }
    }

    println!();
    println!(
        "{:<12} {:<18} {:>8} {:>14} {:>12}",
        "phase", "arm", "threads", "elems/sec", "vs base"
    );
    for m in &results {
        println!(
            "{:<12} {:<18} {:>8} {:>14.0} {:>11.2}x",
            m.phase,
            m.arm,
            m.threads,
            m.elems_per_sec(),
            m.speedup,
        );
    }

    // Full-mode progress report against the E11 flat baselines (the
    // smoke workload is too small for the numbers to mean anything).
    if !smoke {
        for (arm, e11) in
            [("tiered-list-dcas", E11_LIST_EPS), ("tiered-array-dcas", E11_ARRAY_EPS)]
        {
            let m = results.iter().find(|m| m.arm == arm).unwrap();
            println!(
                "{arm}: {:.0} elems/s = {:.1}x the flat E11 row ({e11:.0})",
                m.elems_per_sec(),
                m.elems_per_sec() / e11
            );
        }
    }

    // Perf guardrail (both modes): the tiered arms must hold a generous
    // floor relative to abp-cas. This is the check CI's perf-smoke job
    // relies on.
    let abp = results
        .iter()
        .find(|m| m.phase == "fork-join" && m.arm == "abp-cas")
        .unwrap()
        .elems_per_sec();
    let mut guardrail_ok = true;
    for arm in ["tiered-list-dcas", "tiered-array-dcas"] {
        let m = results.iter().find(|m| m.arm == arm).unwrap();
        let ratio = m.elems_per_sec() / abp;
        if ratio < GUARDRAIL_FLOOR {
            guardrail_ok = false;
            eprintln!(
                "PERF GUARDRAIL FAILED: fork-join/{arm} at {ratio:.4}x of abp-cas \
                 (floor {GUARDRAIL_FLOOR}); replay with:\n  \
                 E12_SMOKE=1 cargo bench -p dcas-bench --bench e12_hw_pair --features stats"
            );
        }
    }

    if smoke {
        println!("\nE12_SMOKE set: skipping BENCH_e12.json");
        if !guardrail_ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"phase\": \"{}\", \"arm\": \"{}\", \"threads\": {}, \"elems\": {}, \"nanos\": {}, \"elems_per_sec\": {:.0}, \"speedup_vs_baseline\": {:.3}}}",
                m.phase,
                m.arm,
                m.threads,
                m.elems,
                m.nanos,
                m.elems_per_sec(),
                m.speedup,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e12_hw_pair\",\n  {},\n  \"oversubscribed\": {},\n  \"repeats\": {repeats},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        dcas_bench::host_info_json(),
        dcas_bench::print_oversubscription_caveat(pad_threads.max(fj_workers)),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e12.json");
    std::fs::write(out, json).expect("write BENCH_e12.json");
    println!("\nwrote {out}");
    if !guardrail_ok {
        std::process::exit(1);
    }
}
