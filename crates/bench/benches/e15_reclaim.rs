//! E15 — live garbage vs. op count under a frozen thread, per
//! reclamation backend (`requires --features fault-inject`).
//!
//! The experiment behind ROADMAP item 3's "bounded memory" claim: a
//! victim thread is frozen mid-MCAS (parked on a [`StallGate`] at the
//! `PreInstall` fault point — the software analogue of a descheduled
//! processor), and three workers then churn a linked-list deque,
//! retiring one node per pop plus the CASN descriptors behind every
//! operation. After each churn round the backend's live-garbage gauge
//! is sampled:
//!
//! * **epoch** — the victim froze while pinned, the epoch cannot
//!   advance, and the deferred queue grows linearly with the op count
//!   (the curve this bench records is the leak you would ship).
//! * **hazard** — the victim pins only its own announced slots, so the
//!   curve is flat: the high-water mark must stay under the *static*
//!   bound `registered_records × (SCAN_THRESHOLD + SLOTS × (1 +
//!   MAX_CASN_WORDS))`.
//!
//! Runs as a plain binary (`harness = false`). Full mode writes both
//! curves to `BENCH_e15.json`; `E15_SMOKE=1` shrinks the rounds and
//! skips the file. **Both** modes exit nonzero if the hazard arm's
//! high-water mark exceeds its static bound (CI's memory-bound-smoke
//! job), and full mode additionally requires the epoch arm's final
//! sample to double its first (i.e. the two arms measurably diverge).
//!
//! `tests/reclaim_torture.rs` asserts the same scenario as a pass/fail
//! test; this bench records the numbers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use dcas::fault::{self};
use dcas::{
    DcasStrategy, EpochReclaimer, FaultInjecting, FaultPlan, FaultPoint, HarrisMcas,
    HarrisMcasHazard, HazardReclaimer, KillKind, Reclaimer, StallGate,
};
use dcas_deque::ListDeque;

/// Worker threads churning the deque while the victim is frozen.
const WORKERS: u64 = 3;

struct Sample {
    arm: &'static str,
    /// Cumulative push+pop pairs across all workers at this checkpoint.
    ops: u64,
    live_garbage: u64,
    high_water: u64,
}

/// Freezes a victim mid-MCAS on a fresh deque, runs `rounds` churn
/// rounds of `ops_per_round` push/pop pairs per worker, sampling the
/// backend gauges after each round. The victim is released and joined
/// before returning.
fn frozen_victim_curve<S>(
    arm: &'static str,
    seed: u64,
    rounds: usize,
    ops_per_round: u64,
    gauges: fn() -> (u64, u64),
) -> Vec<Sample>
where
    S: DcasStrategy + 'static,
{
    let deque: Arc<ListDeque<u64, FaultInjecting<S>>> = Arc::new(ListDeque::new());
    let gate = StallGate::new();
    let plan = FaultPlan::new(seed).kill(
        FaultPoint::PreInstall,
        3,
        KillKind::Freeze(Arc::clone(&gate)),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut samples = Vec::with_capacity(rounds);

    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        let victim = {
            let deque = Arc::clone(&deque);
            let stop = Arc::clone(&stop);
            let plan = plan.clone();
            s.spawn(move || {
                let guard = fault::arm(&plan, 0);
                let log = guard.log();
                tx.send(Arc::clone(&log)).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    deque.push_right(i << 3).unwrap();
                    deque.pop_left();
                    i += 1;
                }
                log
            })
        };
        let log = rx.recv().unwrap();
        while !log.is_killed() {
            std::hint::spin_loop();
        }

        let barrier = Arc::new(Barrier::new(WORKERS as usize + 1));
        let mut handles = Vec::new();
        for t in 1..=WORKERS {
            let deque = Arc::clone(&deque);
            let barrier = Arc::clone(&barrier);
            handles.push(s.spawn(move || {
                let mut i = 0u64;
                for _ in 0..rounds {
                    for _ in 0..ops_per_round {
                        deque.push_right((t << 48) | (i << 3)).unwrap();
                        deque.pop_left();
                        i += 1;
                    }
                    barrier.wait();
                    // Main samples the gauges here.
                    barrier.wait();
                }
            }));
        }
        for round in 0..rounds {
            barrier.wait();
            let (live_garbage, high_water) = gauges();
            samples.push(Sample {
                arm,
                ops: (round as u64 + 1) * ops_per_round * WORKERS,
                live_garbage,
                high_water,
            });
            barrier.wait();
        }
        for h in handles {
            h.join().unwrap();
        }

        stop.store(true, Ordering::Release);
        gate.release();
        let log = victim.join().unwrap();
        assert!(log.is_frozen(), "{arm}: victim was never frozen");
    });
    samples
}

fn main() {
    let smoke = std::env::var_os("E15_SMOKE").is_some();
    let rounds: usize = if smoke { 3 } else { 6 };
    let ops_per_round: u64 = if smoke { 1_000 } else { 4_000 };
    let seed = 0x05EE_DE15_u64;

    // Epoch arm first: its frozen pin stalls the process-global epoch,
    // so it must be released and flushed before the hazard arm runs.
    let stalled_before = EpochReclaimer::stalled_collections();
    let mut samples = frozen_victim_curve::<HarrisMcas>("epoch", seed, rounds, ops_per_round, || {
        (EpochReclaimer::live_garbage(), EpochReclaimer::garbage_high_water())
    });
    let epoch_stalled = EpochReclaimer::stalled_collections() - stalled_before;
    for _ in 0..6 {
        EpochReclaimer::flush();
    }

    samples.extend(frozen_victim_curve::<HarrisMcasHazard>(
        "hazard",
        seed ^ 0xA5A5,
        rounds,
        ops_per_round,
        || (HazardReclaimer::live_garbage(), HazardReclaimer::garbage_high_water()),
    ));

    // The bound is computed after both arms, when every hazard record
    // the run registered is counted.
    let bound = dcas::reclaim::hazard::static_garbage_bound();
    let records = dcas::reclaim::hazard::registered_records();

    println!();
    println!("{:<8} {:>10} {:>14} {:>12}", "arm", "ops", "live_garbage", "high_water");
    for s in &samples {
        println!("{:<8} {:>10} {:>14} {:>12}", s.arm, s.ops, s.live_garbage, s.high_water);
    }
    println!(
        "\nhazard static bound: {bound} ({records} records); \
         epoch stalled collections during churn: {epoch_stalled}"
    );

    // ---- Guardrails ----------------------------------------------------
    let replay = "cargo bench -p dcas-bench --bench e15_reclaim --features fault-inject";
    let mut ok = true;
    let hazard_hwm =
        samples.iter().filter(|s| s.arm == "hazard").map(|s| s.high_water).max().unwrap();
    if hazard_hwm > bound {
        ok = false;
        eprintln!(
            "MEMORY GUARDRAIL FAILED: hazard high-water {hazard_hwm} exceeds the \
             static bound {bound}; replay with:\n  {replay}"
        );
    }
    if !smoke {
        let epoch: Vec<&Sample> = samples.iter().filter(|s| s.arm == "epoch").collect();
        let (first, last) = (epoch[0].live_garbage, epoch[epoch.len() - 1].live_garbage);
        if last < first.saturating_mul(2) {
            ok = false;
            eprintln!(
                "E15 SANITY FAILED: epoch garbage did not grow under the frozen pin \
                 ({first} -> {last}); replay with:\n  {replay}"
            );
        }
    }

    if smoke {
        println!("\nE15_SMOKE set: skipping BENCH_e15.json");
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"arm\": \"{}\", \"ops\": {}, \"live_garbage\": {}, \"high_water\": {}}}",
                s.arm, s.ops, s.live_garbage, s.high_water
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e15_reclaim\",\n  {},\n  \"oversubscribed\": {},\n  \
         \"workers\": {WORKERS},\n  \"frozen_victims\": 1,\n  \
         \"hazard_static_garbage_bound\": {bound},\n  \"hazard_registered_records\": {records},\n  \
         \"epoch_stalled_collections\": {epoch_stalled},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        dcas_bench::host_info_json(),
        dcas_bench::print_oversubscription_caveat(1 + WORKERS as usize),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e15.json");
    std::fs::write(out, json).expect("write BENCH_e15.json");
    println!("\nwrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
