//! E14 — sharded broker under open-loop load: sustained throughput and
//! tail latency to saturation, plus a shard-kill conservation arm.
//!
//! The grid: shards {1, 2, 4, 8} × {list-dcas, array-dcas (bounded),
//! tiered-chaselev} × arrival rates climbing to saturation (`rate 0`
//! rows). Arrivals follow the open-loop virtual-time schedule in
//! `dcas_bench::loadgen` — see that module (and EXPERIMENTS.md §E14)
//! for why closed-loop numbers under-report tail latency. Latency is
//! scheduled-arrival → consumption from the obs log₂ histograms
//! (quantiles are factor-of-two upper bounds).
//!
//! The kill arm rebuilds the 4-shard list broker over `Recorded`
//! shards, murders a shard mid-run via the broker's administrative
//! kill (the same mark-dead + rescue path a PR 3 fault panic takes),
//! and then proves exact conservation — every enqueued value served
//! exactly once — plus a recorded-linearizability pass on a surviving
//! shard's trace.
//!
//! Modes:
//! * full (default): multi-second cells (≥5 s each, raised via
//!   `E14_SUSTAIN_SECS`), medians over interleaved repeats, writes
//!   `BENCH_e14.json`, and enforces the acceptance
//!   bar: 4-shard sustained ≥ 2× 1-shard at saturation (list arm) —
//!   degraded to parity on an oversubscribed host, where time-slicing
//!   makes >1x physically unreachable (the JSON records which applied).
//! * `E14_SMOKE=1`: sub-second cells for CI; exits nonzero if 4-shard
//!   sustained throughput falls below 1-shard, skips the JSON.
//!
//! Replay: `cargo bench --bench e14_broker` (add `E14_SMOKE=1` for the
//! CI shape).

use std::collections::HashSet;
use std::sync::Barrier;
use std::time::Duration;

use dcas_bench::loadgen::{open_loop, OpenLoopReport, OpenLoopSpec};
use dcas_bench::{host_info_json, hw_threads, print_oversubscription_caveat};
use dcas_broker::{FlatShard, ShardedBroker};
use dcas_deque::{ListDeque, MAX_BATCH};
use dcas_linearize::SeqDeque;
use dcas_obs::{audit, Recorded};

/// Shard counts swept (fixed driver threads throughout, so the curve
/// isolates contention reduction, not added parallelism).
const SHARDS: [usize; 4] = [1, 2, 4, 8];
/// Producer/consumer threads for the flat arms (override with
/// `E14_PRODUCERS` / `E14_CONSUMERS`). The tiered arm binds one
/// producer per shard (owner-exclusive push side) instead.
fn producers() -> usize {
    env_usize("E14_PRODUCERS", 2)
}
fn consumers() -> usize {
    env_usize("E14_CONSUMERS", 2)
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
/// Bounded-arm capacity per shard: small enough that saturation sheds
/// (exercising backpressure), big enough to ride out batching jitter.
const ARRAY_CAP: usize = 4096;

struct Cell {
    arm: &'static str,
    shards: usize,
    /// 0 encodes saturation (no schedule, offer as fast as accepted).
    rate: u64,
    producers: usize,
    consumers: usize,
    report: OpenLoopReport,
}

fn spec(rate: u64, producers: usize, duration: Duration) -> OpenLoopSpec {
    OpenLoopSpec {
        rate_per_sec: (rate > 0).then_some(rate),
        duration,
        producers,
        consumers: consumers(),
    }
}

fn run_arm(arm: &'static str, shards: usize, rate: u64, duration: Duration) -> Cell {
    let (producers, report) = match arm {
        "list-dcas" => {
            let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(shards);
            (producers(), open_loop(&broker, spec(rate, producers(), duration)))
        }
        "array-dcas" => {
            let broker: ShardedBroker<u64, _> = ShardedBroker::bounded_array(shards, ARRAY_CAP);
            (producers(), open_loop(&broker, spec(rate, producers(), duration)))
        }
        "tiered-chaselev" => {
            let broker: ShardedBroker<u64, _> = ShardedBroker::tiered_chaselev(shards);
            (shards, open_loop(&broker, spec(rate, shards, duration)))
        }
        other => unreachable!("unknown arm {other}"),
    };
    Cell { arm, shards, rate, producers, consumers: consumers(), report }
}

/// Median-by-sustained-throughput of repeated runs (keeps the whole
/// report so quantiles stay internally consistent).
fn median_cell(mut cells: Vec<Cell>) -> Cell {
    cells.sort_by(|a, b| {
        a.report
            .sustained_per_sec()
            .total_cmp(&b.report.sustained_per_sec())
    });
    cells.remove(cells.len() / 2)
}

/// The shard-kill torture arm: pulsed unique-value traffic over 4
/// `Recorded` list shards, one shard administratively killed mid-run.
/// Returns the JSON fragment describing what was proven.
fn kill_arm(rounds: usize) -> String {
    const KILL_SHARDS: usize = 4;
    const MAX_WINDOW: usize = 48;
    /// Values each producer sends per pulse round.
    const PER_ROUND: usize = 24;

    // Threads touching any one shard: producers + consumers + the main
    // thread (kill/rescue + final drain).
    let threads = producers() + consumers() + 1;
    let ring_capacity = rounds * 4 * MAX_WINDOW;
    let broker: ShardedBroker<u64, FlatShard<Recorded<ListDeque<u64>>>> =
        ShardedBroker::with_shards(KILL_SHARDS, |_| {
            FlatShard(Recorded::with_atomic_batches(
                ListDeque::new(),
                threads,
                ring_capacity,
            ))
        });

    let kill_round = rounds / 2;
    let barrier = Barrier::new(producers() + consumers() + 1);
    let mut consumed: Vec<u64> = std::thread::scope(|s| {
        let mut consumer_handles = Vec::new();
        for _ in 0..consumers() {
            let (broker, barrier) = (&broker, &barrier);
            consumer_handles.push(s.spawn(move || {
                let mut c = broker.consumer();
                let mut got = Vec::new();
                for round in 0..rounds {
                    barrier.wait();
                    // Before the kill, consumers deliberately under-serve
                    // (3/4 of the arrival rate) so every shard — the
                    // victim included — holds a backlog when the kill
                    // lands and the rescue path has real work to move.
                    // Afterwards they over-serve to drain it.
                    let attempts = if round < rounds / 2 {
                        PER_ROUND * 3 / 4
                    } else {
                        PER_ROUND * 2
                    };
                    for _ in 0..attempts {
                        got.extend(c.recv());
                    }
                    barrier.wait();
                }
                // The consumer handle returns its stash to the broker
                // on drop; the final drain below collects it.
                got
            }));
        }
        for p in 0..producers() as u64 {
            let (broker, barrier) = (&broker, &barrier);
            s.spawn(move || {
                let mut prod = broker.producer();
                let mut next = p << 32;
                for _ in 0..rounds {
                    barrier.wait();
                    for _ in 0..PER_ROUND {
                        prod.send(next).expect("unbounded shard backpressured");
                        next += 1;
                    }
                    prod.flush().expect("unbounded shard backpressured");
                    barrier.wait();
                }
            });
        }
        // Main: pulse the rounds; mid-run, kill shard 1 inside the
        // quiescent gap (the rescue itself then races the next pulse's
        // consumers — the interesting part — while shard traces keep
        // their quiescent cuts at the barriers).
        for round in 0..rounds {
            barrier.wait();
            if round == kill_round {
                broker.kill_shard(1);
            }
            barrier.wait();
        }
        consumer_handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Survivors keep serving after the kill: a fresh producer's values
    // must come back out.
    let mut post = broker.producer();
    for v in 0..64u64 {
        post.send((1 << 60) | v).expect("survivors must accept");
    }
    post.flush().expect("survivors must accept");
    drop(post);

    consumed.extend(broker.drain_remaining());

    let sent = (producers() * rounds * PER_ROUND) as u64 + 64;
    let distinct: HashSet<u64> = consumed.iter().copied().collect();
    let conserved = consumed.len() as u64 == sent && distinct.len() as u64 == sent;
    assert!(
        conserved,
        "kill arm lost or duplicated values: sent {sent}, got {} ({} distinct)",
        consumed.len(),
        distinct.len()
    );
    let stats = broker.stats();
    assert_eq!(stats.shard_deaths, 1);
    assert_eq!(broker.alive_shards(), KILL_SHARDS - 1);
    assert!(
        stats.rescued > 0,
        "kill landed on an empty shard — the under-serving pacing should \
         guarantee a victim backlog"
    );

    // Recorded-linearizability pass on a surviving shard's trace (all
    // of shard 0's traffic: producer batches, consumer batch-pops, any
    // rescue republish that landed there).
    let report = audit(broker.shard(0).0.recorder(), SeqDeque::unbounded(), MAX_WINDOW)
        .unwrap_or_else(|e| panic!("kill-arm audit failed on shard 0: {e}"));
    assert!(report.window.ops_checked > 0, "shard 0 recorded no traffic");
    assert_eq!(report.trace.in_flight_excluded, 0, "ops left in flight");

    println!(
        "kill arm: sent {sent}, served {sent} exactly once across the kill \
         (rescued {}, {} alive), shard-0 audit checked {} ops",
        stats.rescued,
        broker.alive_shards(),
        report.window.ops_checked
    );
    format!(
        "  \"kill_arm\": {{\"shards\": {KILL_SHARDS}, \"rounds\": {rounds}, \"sent\": {sent}, \
         \"served\": {}, \"conserved\": true, \"alive_after_kill\": {}, \"rescued\": {}, \
         \"audit_ops_checked\": {}, \"audit_pass\": true}}",
        consumed.len(),
        broker.alive_shards(),
        stats.rescued,
        report.window.ops_checked,
    )
}

fn main() {
    let smoke = std::env::var_os("E14_SMOKE").is_some();
    // Full-mode cells run multi-second so the sustained rows measure a
    // steady state rather than a microbenchmark burst; `E14_SUSTAIN_SECS`
    // stretches (or, floored at 5 s, never shrinks below) the default.
    let sustain_secs = std::env::var("E14_SUSTAIN_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(5, |v| v.max(5));
    let duration = if smoke {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(sustain_secs)
    };
    let repeats = if smoke { 1 } else { 3 };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &SHARDS };
    // E14_ARMS narrows the grid for ad-hoc comparisons (and, combined
    // with E14_SMOKE, lets any arm run at smoke length).
    let arm_filter = std::env::var("E14_ARMS").ok();
    let all_arms: &[&'static str] = if smoke && arm_filter.is_none() {
        &["array-dcas"]
    } else {
        &["list-dcas", "array-dcas", "tiered-chaselev"]
    };
    let arms: Vec<&'static str> = all_arms
        .iter()
        .copied()
        .filter(|a| arm_filter.as_deref().is_none_or(|f| f.contains(a)))
        .collect();
    // Arrival ladder: a below-capacity rate, a near-capacity rate, then
    // saturation (0). Single-CPU capacity is DCAS-bound, not core-bound.
    let rates: &[u64] = if smoke { &[0] } else { &[200_000, 600_000, 0] };

    let max_threads = producers().max(*shard_counts.last().unwrap()) + consumers() + 1;
    let oversubscribed = print_oversubscription_caveat(max_threads);

    let mut cells: Vec<Cell> = Vec::new();
    for &arm in &arms {
        for &shards in shard_counts {
            for &rate in rates {
                let mut reps = Vec::new();
                for _ in 0..repeats {
                    // Adjacent warm-up run so page faults, descriptor
                    // pools, and thread spin-up land outside the cell.
                    let _ = run_arm(arm, shards, rate, duration / 5);
                    reps.push(run_arm(arm, shards, rate, duration));
                }
                let cell = median_cell(reps);
                let r = &cell.report;
                println!(
                    "{arm:>16} x{shards} rate {:>9}: sustained {:>10.0}/s  \
                     shed {:>5.1}%  p50 {:>9}ns  p99 {:>9}ns  p999 {:>9}ns",
                    if rate == 0 { "sat".to_owned() } else { rate.to_string() },
                    r.sustained_per_sec(),
                    100.0 * r.shed_rate(),
                    r.quantile_ns(0.50),
                    r.quantile_ns(0.99),
                    r.quantile_ns(0.999),
                );
                cells.push(cell);
            }
        }
    }

    let kill_json = kill_arm(if smoke { 12 } else { 40 });

    // Guardrail on the flat produce/consume workload at saturation,
    // measured on the *bounded* flat arm: saturation throughput is only
    // a steady state when buffering is bounded. An unbounded shard at
    // saturation just grows its backlog without limit, so its
    // "sustained" number is dominated by how fast a huge cold list
    // drains — a degenerate measurement the JSON still reports but the
    // bar does not rest on. Sharding helps the bounded arm two ways:
    // parallel shard service (on real cores) and N× aggregate buffer
    // capacity, which converts producer time from shedding into
    // accepted values even on one core.
    let sat = |shards: usize| -> f64 {
        cells
            .iter()
            .find(|c| c.arm == "array-dcas" && c.shards == shards && c.rate == 0)
            .map(|c| c.report.sustained_per_sec())
            .unwrap_or(0.0)
    };
    let (one, four) = (sat(1), sat(4));
    let ratio = four / one.max(1e-9);
    let replay = "cargo bench --bench e14_broker";
    // The 2x acceptance bar presumes >= 4 hardware threads: sharding
    // wins by running shards *in parallel*. On an oversubscribed host
    // (every thread time-slices one core) no partitioning scheme can
    // beat 1x, so the bar degrades to parity there — the JSON records
    // which bar applied alongside `oversubscribed`.
    let bar = if smoke || oversubscribed { 1.0 } else { 2.0 };
    let ok = four >= bar * one;
    if ok {
        println!(
            "\n4-shard saturation {four:.0}/s = {ratio:.2}x 1-shard ({one:.0}/s); bar {bar}x"
        );
    } else {
        eprintln!(
            "PERF GUARDRAIL FAILED: 4-shard saturation ({four:.0}/s) below {bar}x \
             1-shard ({one:.0}/s, ratio {ratio:.2}); replay with:\n  {replay}"
        );
    }

    if smoke || arm_filter.is_some() {
        println!("\nE14_SMOKE/E14_ARMS set: skipping BENCH_e14.json");
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                "    {{\"arm\": \"{}\", \"shards\": {}, \"rate_per_sec\": {}, \
                 \"producers\": {}, \"consumers\": {}, \"offered\": {}, \"accepted\": {}, \
                 \"shed\": {}, \"completed\": {}, \"sustained_per_sec\": {:.0}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                c.arm,
                c.shards,
                c.rate,
                c.producers,
                c.consumers,
                r.offered,
                r.accepted,
                r.shed,
                r.completed,
                r.sustained_per_sec(),
                r.quantile_ns(0.50),
                r.quantile_ns(0.99),
                r.quantile_ns(0.999),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e14_broker\",\n  {},\n  \"oversubscribed\": {oversubscribed},\n  \
         \"repeats\": {repeats},\n  \"cell_seconds\": {:.2},\n  \"batch\": {MAX_BATCH},\n  \
         \"bar_4x_vs_1x\": {{\"one_shard\": {one:.0}, \"four_shard\": {four:.0}, \
         \"ratio\": {ratio:.3}, \"bar\": {bar}, \"pass\": {ok}}},\n{kill_json},\n  \
         \"measurements\": [\n{}\n  ]\n}}\n",
        host_info_json(),
        duration.as_secs_f64(),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e14.json");
    std::fs::write(out, json).expect("write BENCH_e14.json");
    println!("\nwrote {out} (host: {} hw threads)", hw_threads());
    if !ok {
        std::process::exit(1);
    }
}
