//! E8 — the Section 1.1 critique, quantified: Greenwald's first algorithm
//! keeps both end indices in one word, so every operation CASes the same
//! word and "prevents concurrent access to the two deque ends". The
//! paper's array deque gives each end its own index word. With threads
//! partitioned per end (and the deque kept half full so the ends never
//! physically collide), the paper's design should scale with thread count
//! where the one-word design serializes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::{GlobalSeqLock, HarrisMcas, StripedLock};
use dcas_baselines::GreenwaldDeque;
use dcas_bench::split_role_phase;
use dcas_deque::{ArrayDeque, ConcurrentDeque};

const OPS: u64 = 4_000;
const CAP: usize = 1 << 12;

fn prefill<D: ConcurrentDeque<u64>>(d: &D, n: u64) {
    for i in 0..n {
        let _ = d.push_right(i);
    }
}

fn bench_impl<D: ConcurrentDeque<u64>>(c: &mut Criterion, name: &str, mk: impl Fn() -> D) {
    let mut g = c.benchmark_group("e8/greenwald");
    g.sample_size(10);
    for pairs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new(name, pairs * 2), &pairs, |b, &pairs| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let d = mk();
                    // Half full: the two ends operate on disjoint cells.
                    prefill(&d, (CAP / 2) as u64);
                    total += split_role_phase(&d, pairs, OPS);
                }
                total
            });
        });
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    // The comparison is per-strategy so the emulation's own serialization
    // doesn't mask the algorithmic difference: StripedLock and HarrisMcas
    // allow disjoint DCAS pairs to proceed in parallel.
    bench_impl(c, "ours/striped", || ArrayDeque::<u64, StripedLock>::new(CAP));
    bench_impl(c, "greenwald/striped", || GreenwaldDeque::<u64, StripedLock>::new(CAP));
    bench_impl(c, "ours/mcas", || ArrayDeque::<u64, HarrisMcas>::new(CAP));
    bench_impl(c, "greenwald/mcas", || GreenwaldDeque::<u64, HarrisMcas>::new(CAP));
    // Under a global-lock emulation both serialize equally — the control.
    bench_impl(c, "ours/seqlock", || ArrayDeque::<u64, GlobalSeqLock>::new(CAP));
    bench_impl(c, "greenwald/seqlock", || GreenwaldDeque::<u64, GlobalSeqLock>::new(CAP));
}

criterion_group!(benches, all);
criterion_main!(benches);
