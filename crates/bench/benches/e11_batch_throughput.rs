//! E11 — batched operations, elimination backoff, and steal-half
//! (the PR-2 throughput levers, measured end to end).
//!
//! Four phases:
//!
//! 1. **uncontended** — single thread moving elements through each deque
//!    per-element vs in chunk-atomic batches of 2/4/8. Amortizing the
//!    CASN/descriptor cost over `k` elements is the whole point of the
//!    batch API; the acceptance bar is batch-8 ≥ 2× per-element.
//! 2. **producer-consumer** — one pusher at the right end, one popper at
//!    the left, per-element vs batch-8 on both sides (the disjoint-ends
//!    scenario the paper optimizes; batching shrinks the hub-word
//!    traffic per element).
//! 3. **fork-join** — the E6 spawn-tree on the work-stealing scheduler,
//!    whose thieves now use `steal_half` with a batched local re-push.
//! 4. **elimination** — several threads hammering the *same* end of the
//!    unbounded list deque, with the per-end elimination arrays off vs
//!    on (`EndConfig`); paired push/pop cancellations bypass the
//!    contended end words entirely. List deque only: the bounded array
//!    deque has no elimination knob (an eliminated push cannot prove the
//!    deque non-full at the exchange instant, which would break
//!    linearizability).
//!
//! Runs as a plain binary (`harness = false`), prints a table, and —
//! unless `E11_SMOKE` is set (the CI smoke mode, which shrinks every
//! phase and skips the file write) — records the measurements in
//! `BENCH_e11.json` at the workspace root. Build with `--features stats`
//! to print the `dcas::stats` counter lines (CASN ops/failures,
//! elimination hits/misses) after the relevant phases.
//!
//! Single-CPU caveat: in this container all threads share one core, so
//! the contended phases measure algorithmic work (fewer atomic ops per
//! element), not parallel speedup; see EXPERIMENTS.md §E11.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dcas::{HarrisMcas, Yielding};
use dcas_bench::{format_stats, host_info_json, print_oversubscription_caveat};
use dcas_deque::{ArrayDeque, ConcurrentDeque, EndConfig, ListDeque};
use dcas_workstealing::{
    AbpWorkDeque, ArrayWorkDeque, DynDeque, ListWorkDeque, Scheduler, WorkDeque, WorkerHandle,
};

struct Measurement {
    phase: &'static str,
    arm: String,
    threads: usize,
    elems: u64,
    nanos: u128,
    /// Throughput relative to the phase's baseline arm (1.0 for the
    /// baseline itself).
    speedup: f64,
}

impl Measurement {
    fn elems_per_sec(&self) -> f64 {
        self.elems as f64 / (self.nanos as f64 / 1e9)
    }
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

/// Phase 1 driver: moves `elems` values through the deque, `k` at a time
/// (k = 1 uses the per-element entry points).
fn uncontended<D: ConcurrentDeque<u64>>(deque: &D, elems: u64, k: usize) -> Duration {
    let start = Instant::now();
    let mut v = 0u64;
    while v < elems {
        if k == 1 {
            let _ = deque.push_right(v);
            std::hint::black_box(deque.pop_left());
            v += 1;
        } else {
            let batch: Vec<u64> = (v..v + k as u64).collect();
            let _ = deque.push_right_n(batch);
            std::hint::black_box(deque.pop_left_n(k));
            v += k as u64;
        }
    }
    start.elapsed()
}

/// Phase 2 driver: right-end producer, left-end consumer, both working
/// `k` elements per call; finishes when all `elems` values have crossed.
fn producer_consumer<D: ConcurrentDeque<u64> + Sync>(deque: &D, elems: u64, k: usize) -> Duration {
    let barrier = Barrier::new(3);
    std::thread::scope(|s| {
        s.spawn(|| {
            barrier.wait();
            let mut v = 0u64;
            while v < elems {
                if k == 1 {
                    while deque.push_right(v).is_err() {
                        std::thread::yield_now();
                    }
                    v += 1;
                } else {
                    let mut batch: Vec<u64> = (v..v + k as u64).collect();
                    v += k as u64;
                    // Bounded deques accept a prefix and hand back the
                    // tail; keep pushing the tail until it all fits.
                    while let Err(tail) = deque.push_right_n(batch) {
                        batch = tail.into_inner();
                        std::thread::yield_now();
                    }
                }
            }
            barrier.wait();
        });
        s.spawn(|| {
            barrier.wait();
            let mut got = 0u64;
            while got < elems {
                if k == 1 {
                    match deque.pop_left() {
                        Some(_) => got += 1,
                        None => std::thread::yield_now(),
                    }
                } else {
                    let chunk = deque.pop_left_n(k);
                    if chunk.is_empty() {
                        std::thread::yield_now();
                    } else {
                        got += chunk.len() as u64;
                    }
                }
            }
            barrier.wait();
        });
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

fn spawn_tree(w: &WorkerHandle<'_, DynDeque>, depth: u32, leaves: Arc<AtomicU64>) {
    if depth == 0 {
        leaves.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let l = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, l));
    let r = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, r));
}

/// Phase 3 driver: fork-join spawn tree on the steal-half scheduler.
fn fork_join<D: WorkDeque>(workers: usize, depth: u32) -> Duration {
    let leaves = Arc::new(AtomicU64::new(0));
    let sched: Scheduler<D> = Scheduler::with_capacity(workers, 1 << 14);
    let l = leaves.clone();
    let start = Instant::now();
    sched.run(move |w| spawn_tree(w, depth, l));
    let elapsed = start.elapsed();
    assert_eq!(leaves.load(Ordering::SeqCst), 1u64 << depth);
    elapsed
}

/// Phase 4 driver: `threads` workers all doing push/pop pairs at the
/// *right* end — maximal same-end contention, the elimination arrays'
/// target scenario.
fn same_end_storm<D: ConcurrentDeque<u64> + Sync>(
    deque: &D,
    threads: usize,
    pairs: u64,
) -> Duration {
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..pairs {
                    let _ = deque.push_right(i);
                    std::hint::black_box(deque.pop_right());
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

fn print_elim_counters<F>(label: &str, elim_stats: F)
where
    F: Fn() -> Option<(dcas::StrategyStats, dcas::StrategyStats)>,
{
    if let Some((left, right)) = elim_stats() {
        println!("{}", format_stats(&format!("{label}/elim-left"), &left));
        println!("{}", format_stats(&format!("{label}/elim-right"), &right));
    }
}

fn main() {
    let smoke = std::env::var_os("E11_SMOKE").is_some();
    let repeats: usize = if smoke { 1 } else { 7 };
    let uncontended_elems: u64 = if smoke { 8_000 } else { 200_000 };
    let pc_elems: u64 = if smoke { 8_000 } else { 200_000 };
    let fj_depth: u32 = if smoke { 7 } else { 11 };
    let fj_workers = 4usize;
    let elim_pairs: u64 = if smoke { 2_000 } else { 30_000 };
    let elim_threads = 4usize;

    let mut results: Vec<Measurement> = Vec::new();

    // ---- Phase 1: uncontended per-element vs batched -------------------
    // Repeats are interleaved across arms (as in E10) so machine-wide
    // drift lands on every arm equally and cancels in the medians.
    {
        let list: ListDeque<u64, HarrisMcas> = ListDeque::new();
        let array: ArrayDeque<u64, HarrisMcas> = ArrayDeque::new(64);
        const KS: [usize; 4] = [1, 2, 4, 8];
        let mut list_runs: Vec<Vec<Duration>> = vec![Vec::new(); KS.len()];
        let mut array_runs: Vec<Vec<Duration>> = vec![Vec::new(); KS.len()];
        for _ in 0..repeats {
            for (ki, &k) in KS.iter().enumerate() {
                list_runs[ki].push(uncontended(&list, uncontended_elems, k));
                array_runs[ki].push(uncontended(&array, uncontended_elems, k));
            }
        }
        for (phase, runs) in
            [("uncontended/list", list_runs), ("uncontended/array", array_runs)]
        {
            let base = median(runs[0].clone()).as_nanos();
            for (ki, &k) in KS.iter().enumerate() {
                let nanos = median(runs[ki].clone()).as_nanos();
                let arm = if k == 1 { "per-element".to_owned() } else { format!("batch-{k}") };
                results.push(Measurement {
                    phase,
                    arm,
                    threads: 1,
                    elems: uncontended_elems,
                    nanos,
                    speedup: base as f64 / nanos as f64,
                });
            }
        }
    }

    // ---- Phase 2: producer-consumer, per-element vs batch-8 ------------
    {
        let list: ListDeque<u64, HarrisMcas> = ListDeque::new();
        let array: ArrayDeque<u64, HarrisMcas> = ArrayDeque::new(1 << 10);
        const KS: [usize; 2] = [1, 8];
        let mut list_runs: Vec<Vec<Duration>> = vec![Vec::new(); KS.len()];
        let mut array_runs: Vec<Vec<Duration>> = vec![Vec::new(); KS.len()];
        for _ in 0..repeats {
            for (ki, &k) in KS.iter().enumerate() {
                list_runs[ki].push(producer_consumer(&list, pc_elems, k));
                array_runs[ki].push(producer_consumer(&array, pc_elems, k));
            }
        }
        for (phase, runs) in [("prod-cons/list", list_runs), ("prod-cons/array", array_runs)] {
            let base = median(runs[0].clone()).as_nanos();
            for (ki, &k) in KS.iter().enumerate() {
                let nanos = median(runs[ki].clone()).as_nanos();
                let arm = if k == 1 { "per-element".to_owned() } else { format!("batch-{k}") };
                results.push(Measurement {
                    phase,
                    arm,
                    threads: 2,
                    elems: pc_elems,
                    nanos,
                    speedup: base as f64 / nanos as f64,
                });
            }
        }
    }

    // ---- Phase 3: fork-join on the steal-half scheduler ----------------
    {
        let leaves = 1u64 << fj_depth;
        let mut abp_runs = Vec::new();
        let mut list_runs = Vec::new();
        let mut array_runs = Vec::new();
        for _ in 0..repeats {
            abp_runs.push(fork_join::<AbpWorkDeque>(fj_workers, fj_depth));
            list_runs.push(fork_join::<ListWorkDeque>(fj_workers, fj_depth));
            array_runs.push(fork_join::<ArrayWorkDeque>(fj_workers, fj_depth));
        }
        let base = median(abp_runs.clone()).as_nanos();
        for (arm, runs) in
            [("abp-cas", abp_runs), ("list-dcas", list_runs), ("array-dcas", array_runs)]
        {
            let nanos = median(runs).as_nanos();
            results.push(Measurement {
                phase: "fork-join",
                arm: arm.to_owned(),
                threads: fj_workers,
                elems: leaves,
                nanos,
                speedup: base as f64 / nanos as f64,
            });
        }
    }

    // ---- Phase 4: same-end storm, elimination off vs on ----------------
    // The elimination arrays are consulted only on *retries*, and on a
    // single CPU an un-preempted retry loop almost never loses a race —
    // so, exactly as in the cross-end interference test, the `Yielding`
    // wrapper forces a scheduler switch around every DCAS to make the
    // contended interleavings (and thus the elimination traffic) occur
    // deterministically. Both arms pay the same yielding tax; the
    // comparison isolates what the elimination arrays buy under it.
    {
        let elim = EndConfig { elimination: true, elim_slots: 1, offer_spins: 16 };
        let list_off: ListDeque<u64, Yielding<HarrisMcas>> = ListDeque::new();
        let list_on: ListDeque<u64, Yielding<HarrisMcas>> = ListDeque::with_end_config(elim);
        let elems = elim_pairs * elim_threads as u64;
        let mut runs: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..repeats {
            runs[0].push(same_end_storm(&list_off, elim_threads, elim_pairs));
            runs[1].push(same_end_storm(&list_on, elim_threads, elim_pairs));
        }
        let base = median(runs[0].clone()).as_nanos();
        for (arm, i) in [("elim-off", 0usize), ("elim-on", 1)] {
            let nanos = median(runs[i].clone()).as_nanos();
            results.push(Measurement {
                phase: "same-end/list",
                arm: arm.to_owned(),
                threads: elim_threads,
                elems,
                nanos,
                speedup: base as f64 / nanos as f64,
            });
        }
        print_elim_counters("same-end/list", || list_on.elim_stats());
    }

    println!();
    println!("{:<20} {:<12} {:>8} {:>14} {:>12}", "phase", "arm", "threads", "elems/sec", "vs base");
    for m in &results {
        println!(
            "{:<20} {:<12} {:>8} {:>14.0} {:>11.2}x",
            m.phase,
            m.arm,
            m.threads,
            m.elems_per_sec(),
            m.speedup,
        );
    }

    if smoke {
        println!("\nE11_SMOKE set: skipping BENCH_e11.json");
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"phase\": \"{}\", \"arm\": \"{}\", \"threads\": {}, \"elems\": {}, \"nanos\": {}, \"elems_per_sec\": {:.0}, \"speedup_vs_baseline\": {:.3}}}",
                m.phase,
                m.arm,
                m.threads,
                m.elems,
                m.nanos,
                m.elems_per_sec(),
                m.speedup,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e11_batch_throughput\",\n  {},\n  \"oversubscribed\": {},\n  \"repeats\": {repeats},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        host_info_json(),
        print_oversubscription_caveat(elim_threads.max(fj_workers)),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e11.json");
    std::fs::write(out, json).expect("write BENCH_e11.json");
    println!("\nwrote {out}");
}
