//! E17 — page-pool node allocation vs. `Box` churn, per deque family
//! and reclamation backend (`requires --features fault-inject`).
//!
//! PR 1 made the MCAS *descriptors* allocation-free; this experiment
//! measures retiring the last malloc on the hot path — the deque nodes
//! themselves. Both allocation arms live in one binary (the runtime
//! [`NodeAlloc`](dcas::NodeAlloc) handle, forced per row via each
//! module's `node_alloc(pooled)`), so every cell is a true A/B:
//!
//! * **rows** — per-element push/pop cost for `list-dcas` and
//!   `sundell-cas` under both reclaimers, on four churn shapes:
//!   `flat` (single-threaded depth-1 push/pop pairs — the uncontended
//!   baseline), `burst-4k` (single-threaded FIFO bursts of [`BURST`]
//!   nodes, so frees land in large deferred batches), `mixed-ends`
//!   (opposed ends, so pops free nodes a *different* thread allocated —
//!   the remote-free MPSC path), and `sustained-1m` (a bounded-window
//!   producer/consumer pipeline streaming 10⁶ elements). A fifth shape,
//!   `reclaim-churn-256k`, strips the deque ops away and times the bare
//!   node lifecycle — allocate, publish one word, retire through the
//!   epoch reclaimer, deferred dtor — around a [`CHURN_WINDOW`]-node
//!   live ring through each family's real pool. Deque ops cost
//!   400–1000 ns/element, so a ~20 ns/node allocator difference is
//!   invisible in the end-to-end rows on a single-CPU host; this row is
//!   where the allocator claim is actually testable: the boxed arm's
//!   deferred dtor sweep pays a `free()` per chunk while the pooled
//!   arm's dtor is a page-local slab push.
//! * **audit** — the Aksenov-style bounded-memory check (PAPERS.md):
//!   pool pages are never unmapped, so `pages_allocated` growth during
//!   churn is the live-memory high-water mark. A victim thread is
//!   frozen and three workers churn; page growth must stay under a
//!   static bound. Under the **hazard** backend the victim freezes
//!   mid-MCAS (the E15 scenario) and the bound derives from the
//!   backend's `static_garbage_bound`. Under **epoch** the victim
//!   freezes at a *quiescent* point (unpinned) — E15 already proves a
//!   pinned-frozen victim makes epoch garbage (and hence pages)
//!   unbounded, which is a reclaimer property, not an allocator one.
//!
//! Runs as a plain binary (`harness = false`). Full mode writes
//! `BENCH_e17.json`; `E17_SMOKE=1` shrinks the cells and skips the
//! file. **Both** modes exit nonzero if an audit arm's page growth
//! exceeds its bound or a family's best pooled row is slower than the
//! Box arm; full mode raises the per-family bar to the acceptance
//! threshold (≥ 1.15× on at least one churn row).
//!
//! Replay: `cargo bench -p dcas-bench --bench e17_alloc --features
//! fault-inject` (add `E17_SMOKE=1` for the CI shape).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dcas::fault::{self};
use dcas::{
    EpochReclaimer, FaultInjecting, FaultPlan, FaultPoint, HarrisMcas, HarrisMcasHazard, KillKind,
    NodePool, Reclaimer, StallGate,
};
use dcas_deque::{list, sundell, ConcurrentDeque, ListDeque, SundellDeque};

/// Churn threads for the mixed-ends and sustained rows (and audit
/// workers; the audit adds a frozen victim on top). The flat row is
/// single-threaded: it is the uncontended per-element baseline, where
/// the allocation cost is not buried under retry/helping noise — on an
/// oversubscribed host the multi-thread rows mostly measure
/// time-slicing (the E13 caveat).
const THREADS: u64 = 2;
const AUDIT_WORKERS: u64 = 3;

/// Producer→consumer in-flight window of the sustained row, in
/// elements. Bounds the row's live-node footprint, which is what makes
/// its page growth auditable.
const SUSTAIN_WINDOW: u64 = 10_000;

/// Static allowance, in nodes, for garbage the *epoch* backend may
/// accumulate between collections while nobody is frozen-pinned
/// (per-thread deferred queues plus collect lag). The hazard arm uses
/// the backend's own `static_garbage_bound` instead.
const EPOCH_ALLOWANCE_NODES: u64 = 16_384;

/// Burst depth of the burst row, in nodes. Each round allocates this
/// many live nodes before freeing any, so the frees land on the
/// reclaimer in large deferred batches: the boxed arm's dtor sweep
/// walks malloc-scattered chunks while the pooled arm's slots stay
/// page-sequential in allocation (= traversal) order.
const BURST: u64 = 4_096;

/// Live-ring size of the reclaim-churn row, in nodes. Large enough that
/// the ring cycles every pool page (~2100 pages) each lap, so neither
/// arm can sit in a handful of hot cache lines.
const CHURN_WINDOW: u64 = 262_144;

#[derive(Clone, Copy, PartialEq)]
enum Pattern {
    Flat,
    Burst,
    Mixed,
    Sustained,
}

impl Pattern {
    fn name(self) -> &'static str {
        match self {
            Pattern::Flat => "flat",
            Pattern::Burst => "burst-4k",
            Pattern::Mixed => "mixed-ends",
            Pattern::Sustained => "sustained-1m",
        }
    }
}

/// Box-arm stand-in for a deque node in the reclaim-churn row: both
/// linked families' nodes are 32 bytes at 16-byte alignment (three
/// `DcasWord`s / two links + value + refcount), and `Box<Node>` goes
/// through the same `Global → malloc` path as this does.
#[repr(align(16))]
// The words are only ever read through raw-pointer casts (as the
// deques read their nodes), which dead_code cannot see.
struct RawNode(#[allow(dead_code)] [AtomicU64; 4]);

/// Times the bare node lifecycle around a [`CHURN_WINDOW`]-node live
/// ring: allocate (family pool vs `Box`), publish one word, and on each
/// step retire the oldest node through an epoch guard exactly as the
/// deques do, leaving the actual free to the deferred dtor sweep.
fn time_node_churn(pool: &'static NodePool, pooled: bool, window: u64, total: u64) -> Duration {
    use dcas::ReclaimGuard;
    use std::collections::VecDeque;
    unsafe fn pool_dtor(p: *mut u8) {
        unsafe { NodePool::dealloc(p) }
    }
    unsafe fn box_dtor(p: *mut u8) {
        drop(unsafe { Box::from_raw(p.cast::<RawNode>()) })
    }
    let alloc_one = |i: u64| -> *mut u8 {
        let p = if pooled {
            pool.alloc()
        } else {
            Box::into_raw(Box::new(RawNode([
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ])))
            .cast::<u8>()
        };
        unsafe { &*p.cast::<AtomicU64>() }.store(i << 3, Ordering::Release);
        p
    };
    let mut sum = 0u64;
    let mut retire_one = |p: *mut u8| {
        sum += unsafe { &*p.cast::<AtomicU64>() }.load(Ordering::Acquire);
        let guard = EpochReclaimer::pin();
        let dtor = if pooled { pool_dtor } else { box_dtor };
        unsafe { guard.retire(p, pool.stride(), dtor) };
    };
    let mut live = VecDeque::with_capacity(window as usize + 1);
    for i in 0..window {
        live.push_back(alloc_one(i));
    }
    let start = Instant::now();
    for i in 0..total {
        live.push_back(alloc_one(window + i));
        retire_one(live.pop_front().unwrap());
    }
    let elapsed = start.elapsed();
    while let Some(p) = live.pop_front() {
        retire_one(p);
    }
    std::hint::black_box(sum);
    elapsed
}

/// Measures the reclaim-churn row for one family: `reps` interleaved
/// boxed/pooled rings, medians, same flush discipline as
/// [`measure_row`].
fn measure_reclaim_churn(
    family: &'static str,
    pool: &'static NodePool,
    elements: u64,
    window: u64,
    reps: usize,
) -> Row {
    let flush = || {
        for _ in 0..4 {
            EpochReclaimer::flush();
        }
    };
    let pages_before = pool.pages_allocated();
    let (mut boxed, mut pooled) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        for arm_pooled in [false, true] {
            if rep == 0 {
                time_node_churn(pool, arm_pooled, window, elements / 5);
                flush();
            }
            let elapsed = time_node_churn(pool, arm_pooled, window, elements);
            let ns = elapsed.as_nanos() as f64 / elements as f64;
            if arm_pooled {
                pooled.push(ns)
            } else {
                boxed.push(ns)
            }
            flush();
        }
    }
    let row = Row {
        family,
        reclaimer: "epoch",
        pattern: "reclaim-churn-256k",
        elements,
        boxed_ns: median(boxed),
        pooled_ns: median(pooled),
        pooled_pages_grown: pool.pages_allocated() - pages_before,
    };
    println!(
        "{:<12} {:<7} {:<13} {:>9} elems  boxed {:>8.1} ns/elem  pooled {:>8.1} ns/elem  \
         speedup {:>5.2}x  pages +{}",
        row.family,
        row.reclaimer,
        row.pattern,
        row.elements,
        row.boxed_ns,
        row.pooled_ns,
        row.speedup(),
        row.pooled_pages_grown
    );
    row
}

/// One measured A/B cell (medians over the interleaved repeats).
struct Row {
    family: &'static str,
    reclaimer: &'static str,
    pattern: &'static str,
    elements: u64,
    boxed_ns: f64,
    pooled_ns: f64,
    /// Pool pages grown across the row's pooled runs (never shrinks, so
    /// later rows mostly reuse earlier rows' pages and report 0).
    pooled_pages_grown: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.boxed_ns / self.pooled_ns
    }
}

/// Times `pairs_per_thread` push/pop pairs on each of [`THREADS`]
/// threads. `Flat` keeps each thread on one end (frees are
/// overwhelmingly same-thread); `Mixed` opposes the ends so elements —
/// and their nodes — migrate between threads (the remote-free path).
fn time_churn<D: ConcurrentDeque<u64>>(
    deque: &D,
    pattern: Pattern,
    pairs_per_thread: u64,
) -> Duration {
    let threads = if pattern == Pattern::Flat { 1 } else { THREADS };
    let barrier = Barrier::new(threads as usize + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (deque, barrier) = (&deque, &barrier);
            s.spawn(move || {
                barrier.wait();
                for i in 0..pairs_per_thread {
                    let v = (t << 48) | (i << 3);
                    match pattern {
                        Pattern::Flat => {
                            deque.push_right(v).unwrap();
                            while deque.pop_right().is_none() {
                                std::hint::spin_loop();
                            }
                        }
                        _ if t % 2 == 0 => {
                            deque.push_right(v).unwrap();
                            while deque.pop_left().is_none() {
                                std::hint::spin_loop();
                            }
                        }
                        _ => {
                            deque.push_left(v).unwrap();
                            while deque.pop_right().is_none() {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

/// Times single-threaded FIFO bursts: [`BURST`] pushes on the right,
/// then [`BURST`] pops off the left, repeated until `total` elements
/// have flowed through. Every round churns a full burst of nodes
/// through allocate → retire → free with the frees batched, which is
/// the page-pool's target workload (the allocator never shows up in
/// the depth-1 flat row once both arms reach steady state).
fn time_burst<D: ConcurrentDeque<u64>>(deque: &D, total: u64) -> Duration {
    let start = Instant::now();
    let mut pushed = 0;
    while pushed < total {
        let n = BURST.min(total - pushed);
        for i in 0..n {
            deque.push_right((pushed + i) << 3).unwrap();
        }
        for _ in 0..n {
            deque.pop_left().unwrap();
        }
        pushed += n;
    }
    start.elapsed()
}

/// Times a producer/consumer pipeline streaming `total` elements
/// left-to-right through the deque, the producer throttled to keep at
/// most [`SUSTAIN_WINDOW`] elements in flight.
fn time_sustained<D: ConcurrentDeque<u64>>(deque: &D, total: u64) -> Duration {
    let consumed = AtomicU64::new(0);
    let barrier = Barrier::new(3);
    std::thread::scope(|s| {
        {
            let (deque, barrier, consumed) = (&deque, &barrier, &consumed);
            s.spawn(move || {
                barrier.wait();
                for i in 0..total {
                    while i - consumed.load(Ordering::Relaxed) > SUSTAIN_WINDOW {
                        std::hint::spin_loop();
                    }
                    deque.push_right(i << 3).unwrap();
                }
                barrier.wait();
            });
            s.spawn(move || {
                barrier.wait();
                while consumed.load(Ordering::Relaxed) < total {
                    if deque.pop_left().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    })
}

fn run_once<D: ConcurrentDeque<u64>>(deque: &D, pattern: Pattern, elements: u64) -> Duration {
    match pattern {
        Pattern::Sustained => time_sustained(deque, elements),
        Pattern::Burst => time_burst(deque, elements),
        Pattern::Flat => time_churn(deque, pattern, elements),
        _ => time_churn(deque, pattern, elements / THREADS),
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures one `family × reclaimer × pattern` cell: `reps` interleaved
/// boxed/pooled runs (fresh deque each), medians of ns-per-element.
/// The epoch backend is flushed between runs so each arm starts with
/// its predecessors' nodes actually freed.
fn measure_row<D, F>(
    family: &'static str,
    reclaimer: &'static str,
    pool: &'static NodePool,
    make: F,
    pattern: Pattern,
    elements: u64,
    reps: usize,
) -> Row
where
    D: ConcurrentDeque<u64>,
    F: Fn(bool) -> D,
{
    let flush = || {
        for _ in 0..4 {
            EpochReclaimer::flush();
        }
    };
    let pages_before = pool.pages_allocated();
    let (mut boxed, mut pooled) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        for arm_pooled in [false, true] {
            let deque = make(arm_pooled);
            if rep == 0 {
                // Warm-up: fault in pages / heap arenas outside the clock.
                run_once(&deque, pattern, elements / 5);
            }
            let elapsed = run_once(&deque, pattern, elements);
            let ns = elapsed.as_nanos() as f64 / elements as f64;
            if arm_pooled {
                pooled.push(ns)
            } else {
                boxed.push(ns)
            }
            drop(deque);
            flush();
        }
    }
    let row = Row {
        family,
        reclaimer,
        pattern: pattern.name(),
        elements,
        boxed_ns: median(boxed),
        pooled_ns: median(pooled),
        pooled_pages_grown: pool.pages_allocated() - pages_before,
    };
    println!(
        "{:<12} {:<7} {:<13} {:>9} elems  boxed {:>8.1} ns/elem  pooled {:>8.1} ns/elem  \
         speedup {:>5.2}x  pages +{}",
        row.family,
        row.reclaimer,
        row.pattern,
        row.elements,
        row.boxed_ns,
        row.pooled_ns,
        row.speedup(),
        row.pooled_pages_grown
    );
    row
}

/// One bounded-pages audit result.
struct Audit {
    backend: &'static str,
    freeze_point: &'static str,
    ops: u64,
    pages_before: u64,
    pages_grown: u64,
    bound_pages: u64,
    remote_frees_grown: u64,
}

/// Page bound for an audit arm: the backend may hold `garbage_nodes` of
/// retired-but-unfreed nodes, each participating thread can strand a
/// partially used page in its local cache, plus fixed slack for the
/// batch-grab granularity.
fn pages_bound(garbage_nodes: u64, per_page: u64, threads: u64) -> u64 {
    garbage_nodes.div_ceil(per_page) + threads * 2 + 8
}

/// Hazard arm: the E15 scenario — victim frozen *mid-MCAS* on a pooled
/// list deque, workers churning — but the sampled gauge is the list
/// pool's page count, not the garbage gauge. Bounded garbage (hazard's
/// static bound) must translate into bounded pages.
fn audit_hazard_frozen(rounds: usize, ops_per_round: u64) -> Audit {
    let pool = list::node_alloc(true).pool();
    let pages_before = pool.pages_allocated();
    let remote_before = pool.remote_frees();
    let deque: Arc<ListDeque<u64, FaultInjecting<HarrisMcasHazard>>> =
        Arc::new(ListDeque::with_node_alloc(list::node_alloc(true)));
    let gate = StallGate::new();
    let plan = FaultPlan::new(0x05EE_DE17).kill(
        FaultPoint::PreInstall,
        3,
        KillKind::Freeze(Arc::clone(&gate)),
    );
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        let victim = {
            let deque = Arc::clone(&deque);
            let stop = Arc::clone(&stop);
            let plan = plan.clone();
            s.spawn(move || {
                let guard = fault::arm(&plan, 0);
                let log = guard.log();
                tx.send(Arc::clone(&log)).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    deque.push_right(i << 3).unwrap();
                    deque.pop_left();
                    i += 1;
                }
                log
            })
        };
        let log = rx.recv().unwrap();
        while !log.is_killed() {
            std::hint::spin_loop();
        }

        let mut handles = Vec::new();
        for t in 1..=AUDIT_WORKERS {
            let deque = Arc::clone(&deque);
            handles.push(s.spawn(move || {
                let mut i = 0u64;
                for _ in 0..rounds {
                    for _ in 0..ops_per_round {
                        deque.push_right((t << 48) | (i << 3)).unwrap();
                        deque.pop_left();
                        i += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        gate.release();
        let log = victim.join().unwrap();
        assert!(log.is_frozen(), "hazard audit: victim was never frozen");
    });

    let garbage = dcas::reclaim::hazard::static_garbage_bound();
    Audit {
        backend: "hazard",
        freeze_point: "mid-mcas",
        ops: rounds as u64 * ops_per_round * AUDIT_WORKERS,
        pages_before,
        pages_grown: pool.pages_allocated() - pages_before,
        bound_pages: pages_bound(garbage, pool.nodes_per_page(), AUDIT_WORKERS + 2),
        remote_frees_grown: pool.remote_frees() - remote_before,
    }
}

/// Epoch arm: the victim churns briefly, then freezes at a *quiescent*
/// point — it blocks unpinned, holding no guard — while the workers
/// churn. (A victim frozen while pinned makes epoch garbage unbounded —
/// that curve is E15's, and no allocator can bound pages under it.)
fn audit_epoch_quiescent(rounds: usize, ops_per_round: u64) -> Audit {
    let pool = list::node_alloc(true).pool();
    let pages_before = pool.pages_allocated();
    let remote_before = pool.remote_frees();
    let deque: Arc<ListDeque<u64, HarrisMcas>> =
        Arc::new(ListDeque::with_node_alloc(list::node_alloc(true)));
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();

    std::thread::scope(|s| {
        let frozen = Arc::new(AtomicBool::new(false));
        {
            let deque = Arc::clone(&deque);
            let frozen = Arc::clone(&frozen);
            s.spawn(move || {
                for i in 0..512u64 {
                    deque.push_right(i << 3).unwrap();
                    deque.pop_left();
                }
                frozen.store(true, Ordering::Release);
                // Quiescent freeze: blocked between operations, unpinned.
                let _ = release_rx.recv();
            });
        }
        while !frozen.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }

        let mut handles = Vec::new();
        for t in 1..=AUDIT_WORKERS {
            let deque = Arc::clone(&deque);
            handles.push(s.spawn(move || {
                let mut i = 0u64;
                for _ in 0..rounds {
                    for _ in 0..ops_per_round {
                        deque.push_right((t << 48) | (i << 3)).unwrap();
                        deque.pop_left();
                        i += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        release_tx.send(()).unwrap();
    });

    Audit {
        backend: "epoch",
        freeze_point: "quiescent",
        ops: rounds as u64 * ops_per_round * AUDIT_WORKERS,
        pages_before,
        pages_grown: pool.pages_allocated() - pages_before,
        bound_pages: pages_bound(
            EPOCH_ALLOWANCE_NODES,
            pool.nodes_per_page(),
            AUDIT_WORKERS + 2,
        ),
        remote_frees_grown: pool.remote_frees() - remote_before,
    }
}

fn main() {
    let smoke = std::env::var_os("E17_SMOKE").is_some();
    let reps = if smoke { 1 } else { 3 };
    let churn_elems: u64 = if smoke { 20_000 } else { 200_000 };
    let sustained_elems: u64 = if smoke { 40_000 } else { 1_000_000 };
    let (audit_rounds, audit_ops) = if smoke { (3, 2_000) } else { (6, 8_000) };

    println!(
        "E17: node allocation A/B — {} threads/row, {} workers + frozen victim in audit\n",
        THREADS, AUDIT_WORKERS
    );

    let mut rows = Vec::new();
    for pattern in [
        Pattern::Flat,
        Pattern::Burst,
        Pattern::Mixed,
        Pattern::Sustained,
    ] {
        let elements = if pattern == Pattern::Sustained {
            sustained_elems
        } else {
            churn_elems
        };
        rows.push(measure_row(
            "list-dcas",
            "epoch",
            list::node_alloc(true).pool(),
            |p| ListDeque::<u64, HarrisMcas>::with_node_alloc(list::node_alloc(p)),
            pattern,
            elements,
            reps,
        ));
        rows.push(measure_row(
            "list-dcas",
            "hazard",
            list::node_alloc(true).pool(),
            |p| ListDeque::<u64, HarrisMcasHazard>::with_node_alloc(list::node_alloc(p)),
            pattern,
            elements,
            reps,
        ));
        rows.push(measure_row(
            "sundell-cas",
            "epoch",
            sundell::node_alloc(true).pool(),
            |p| SundellDeque::<u64, HarrisMcas>::with_node_alloc(sundell::node_alloc(p)),
            pattern,
            elements,
            reps,
        ));
        rows.push(measure_row(
            "sundell-cas",
            "hazard",
            sundell::node_alloc(true).pool(),
            |p| SundellDeque::<u64, HarrisMcasHazard>::with_node_alloc(sundell::node_alloc(p)),
            pattern,
            elements,
            reps,
        ));
    }

    let churn_total = if smoke { 200_000 } else { 2_000_000 };
    let churn_window = if smoke { 32_768 } else { CHURN_WINDOW };
    rows.push(measure_reclaim_churn(
        "list-dcas",
        list::node_alloc(true).pool(),
        churn_total,
        churn_window,
        reps,
    ));
    rows.push(measure_reclaim_churn(
        "sundell-cas",
        sundell::node_alloc(true).pool(),
        churn_total,
        churn_window,
        reps,
    ));

    // Audits after the rows: earlier churn pre-grew the pool, so the
    // audited growth is the steady-state increment, which is the claim.
    let audits = vec![
        audit_hazard_frozen(audit_rounds, audit_ops),
        audit_epoch_quiescent(audit_rounds, audit_ops),
    ];
    println!();
    for a in &audits {
        println!(
            "audit {:<7} ({:<9} freeze): {:>8} ops, pages {} -> +{} (bound {}), \
             remote frees +{}",
            a.backend,
            a.freeze_point,
            a.ops,
            a.pages_before,
            a.pages_grown,
            a.bound_pages,
            a.remote_frees_grown
        );
    }

    // ---- Guardrails ----------------------------------------------------
    let replay = "cargo bench -p dcas-bench --bench e17_alloc --features fault-inject";
    let mut ok = true;
    for a in &audits {
        if a.pages_grown > a.bound_pages {
            ok = false;
            eprintln!(
                "PAGES GUARDRAIL FAILED: {} arm grew {} pages, bound {}; replay with:\n  {replay}",
                a.backend, a.pages_grown, a.bound_pages
            );
        }
    }
    let bar = if smoke { 1.0 } else { 1.15 };
    for family in ["list-dcas", "sundell-cas"] {
        let best = rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| r.speedup())
            .fold(f64::MIN, f64::max);
        println!("{family}: best pooled speedup {best:.2}x (bar {bar:.2}x)");
        if best < bar {
            ok = false;
            eprintln!(
                "ALLOC GUARDRAIL FAILED: {family} best pooled speedup {best:.2}x is below \
                 {bar:.2}x; replay with:\n  {replay}"
            );
        }
    }

    if smoke {
        println!("\nE17_SMOKE set: skipping BENCH_e17.json");
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"family\": \"{}\", \"reclaimer\": \"{}\", \"pattern\": \"{}\", \
                 \"elements\": {}, \"boxed_ns_per_elem\": {:.2}, \"pooled_ns_per_elem\": {:.2}, \
                 \"speedup\": {:.3}, \"pooled_pages_grown\": {}}}",
                r.family,
                r.reclaimer,
                r.pattern,
                r.elements,
                r.boxed_ns,
                r.pooled_ns,
                r.speedup(),
                r.pooled_pages_grown
            )
        })
        .collect();
    let audit_json: Vec<String> = audits
        .iter()
        .map(|a| {
            format!(
                "    {{\"backend\": \"{}\", \"freeze_point\": \"{}\", \"ops\": {}, \
                 \"pages_before\": {}, \"pages_grown\": {}, \"bound_pages\": {}, \
                 \"remote_frees_grown\": {}}}",
                a.backend,
                a.freeze_point,
                a.ops,
                a.pages_before,
                a.pages_grown,
                a.bound_pages,
                a.remote_frees_grown
            )
        })
        .collect();
    let per_page = list::node_alloc(true).pool().nodes_per_page();
    let json = format!(
        "{{\n  \"experiment\": \"e17_alloc\",\n  {},\n  \"oversubscribed\": {},\n  \
         \"threads_per_row\": {THREADS},\n  \"sustain_window\": {SUSTAIN_WINDOW},\n  \
         \"nodes_per_page\": {per_page},\n  \"rows\": [\n{}\n  ],\n  \"audit\": [\n{}\n  ]\n}}\n",
        dcas_bench::host_info_json(),
        dcas_bench::print_oversubscription_caveat(THREADS as usize),
        row_json.join(",\n"),
        audit_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e17.json");
    std::fs::write(out, json).expect("write BENCH_e17.json");
    println!("\nwrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
