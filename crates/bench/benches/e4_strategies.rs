//! E4 — the DCAS emulation choice: the same deque algorithm under each of
//! the four software DCAS strategies, sequentially and contended. This is
//! the experiment the paper could not run ("without detailed knowledge of
//! the implementation of a particular system supporting DCAS, we cannot
//! quantify this comparison") — we quantify it for software emulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::{DcasStrategy, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};
use dcas_bench::{sequential_churn, two_end_phase};
use dcas_deque::ListDeque;

const OPS: u64 = 4_000;

fn strategy<S: DcasStrategy>(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/strategies");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new(S::NAME, "sequential"), |b| {
        let d: ListDeque<u64, S> = ListDeque::new();
        b.iter(|| sequential_churn(&d, 1_000));
    });

    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new(S::NAME, format!("contended_{threads}")),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let d: ListDeque<u64, S> = ListDeque::new();
                        total += two_end_phase(&d, threads, OPS);
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    strategy::<GlobalLock>(c);
    strategy::<GlobalSeqLock>(c);
    strategy::<StripedLock>(c);
    strategy::<HarrisMcas>(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
