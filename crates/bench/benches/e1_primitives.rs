//! E1 — the paper's Section 2 cost model: "DCAS is a relatively
//! expensive operation, that is, has longer latency than traditional CAS,
//! which in turn has longer latency than either a read or a write. We
//! assume this is true even when operations are executed sequentially."
//!
//! Measures uncontended latency of read / write / CAS (native) and of
//! load / store / DCAS under each software emulation strategy.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use dcas::{DcasStrategy, DcasWord, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};
use std::hint::black_box;

fn native(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/native");
    let cell = AtomicU64::new(0);
    g.bench_function("read", |b| b.iter(|| black_box(cell.load(Ordering::SeqCst))));
    g.bench_function("write", |b| {
        b.iter(|| cell.store(black_box(4), Ordering::SeqCst))
    });
    g.bench_function("cas", |b| {
        b.iter(|| {
            let cur = cell.load(Ordering::Relaxed);
            let _ = black_box(cell.compare_exchange(cur, cur ^ 4, Ordering::SeqCst, Ordering::SeqCst));
        })
    });
    g.finish();
}

fn strategy<S: DcasStrategy>(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("e1/{}", S::NAME));
    let s = S::default();
    let a = DcasWord::new(0);
    let b_word = DcasWord::new(4);
    g.bench_function("load", |b| b.iter(|| black_box(s.load(&a))));
    g.bench_function("store", |b| b.iter(|| s.store(&a, black_box(8))));
    s.store(&a, 0);
    g.bench_function("dcas_success", |b| {
        b.iter(|| {
            // Identity DCAS: always succeeds, never drifts.
            black_box(s.dcas(&a, &b_word, 0, 4, 0, 4))
        })
    });
    g.bench_function("dcas_failure", |b| {
        b.iter(|| black_box(s.dcas(&a, &b_word, 60, 64, 0, 4)))
    });
    g.bench_function("dcas_strong_failure", |b| {
        b.iter(|| {
            let (mut o1, mut o2) = (60, 64);
            black_box(s.dcas_strong(&a, &b_word, &mut o1, &mut o2, 0, 4))
        })
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    native(c);
    strategy::<GlobalLock>(c);
    strategy::<GlobalSeqLock>(c);
    strategy::<StripedLock>(c);
    strategy::<HarrisMcas>(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
