//! E10 — raw DCAS hot-path microbenchmark (descriptor pooling × backoff
//! ablation).
//!
//! Unlike E1–E9 this target measures the [`dcas::DcasStrategy`] layer
//! directly, with no deque on top: an uncontended phase in which every
//! operation runs the full descriptor slow path, and contended phases
//! (2/4/8 threads) in which all workers fight over one pair of words.
//! The arms ablate the `McasConfig` knobs one at a time; `seed` is the
//! pre-optimization behaviour (fresh `Box` per descriptor, no backoff,
//! all-RDCSS installs) kept available via `McasConfig::seed_compat`, and
//! `optimized` is the default configuration with every knob on.
//!
//! Runs as a plain binary (`harness = false`), prints a table, and
//! writes the measurements to `BENCH_e10.json` at the workspace root so
//! the perf trajectory of this path is tracked in-repo. Build with
//! `--features stats` to append per-arm counter lines (descriptor reuse
//! rate, helps) to the printout.

use std::time::Duration;

use dcas::{HarrisMcas, McasConfig};
use dcas_bench::{
    format_stats, host_info_json, print_oversubscription_caveat, strategy_contended_phase,
    strategy_sequential_phase,
};

const UNCONTENDED_OPS: u64 = 100_000;
const CONTENDED_OPS_PER_THREAD: u64 = 20_000;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];
const REPEATS: usize = 9;

struct Arm {
    name: &'static str,
    config: McasConfig,
}

struct Measurement {
    arm: &'static str,
    /// 0 = uncontended single thread.
    threads: usize,
    ops: u64,
    nanos: u128,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.nanos as f64 / 1e9)
    }
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

fn main() {
    let seed = McasConfig::seed_compat();
    let arms = [
        Arm { name: "seed", config: seed },
        Arm { name: "pooled", config: McasConfig { pool_descriptors: true, ..seed } },
        Arm { name: "backoff", config: McasConfig { backoff: true, ..seed } },
        Arm { name: "fast-install", config: McasConfig { owner_fast_install: true, ..seed } },
        Arm { name: "optimized", config: McasConfig::default() },
    ];
    let strategies: Vec<HarrisMcas> =
        arms.iter().map(|a| HarrisMcas::with_config(a.config)).collect();

    // Repeats are interleaved round-robin across arms (rather than
    // measuring each arm to completion) so slow machine-wide drift —
    // frequency scaling, co-tenant load — lands on every arm equally and
    // cancels in the per-arm median.
    let mut samples: Vec<Vec<Vec<Duration>>> = vec![vec![Vec::new(); 4]; arms.len()];
    for _ in 0..REPEATS {
        for (ai, strategy) in strategies.iter().enumerate() {
            samples[ai][0].push(strategy_sequential_phase(strategy, UNCONTENDED_OPS));
            for (pi, &threads) in THREAD_COUNTS.iter().enumerate() {
                samples[ai][pi + 1].push(strategy_contended_phase(
                    strategy,
                    threads,
                    CONTENDED_OPS_PER_THREAD,
                ));
            }
        }
    }

    let mut results: Vec<Measurement> = Vec::new();
    for (ai, arm) in arms.iter().enumerate() {
        results.push(Measurement {
            arm: arm.name,
            threads: 1,
            ops: UNCONTENDED_OPS,
            nanos: median(samples[ai][0].clone()).as_nanos(),
        });
        for (pi, &threads) in THREAD_COUNTS.iter().enumerate() {
            results.push(Measurement {
                arm: arm.name,
                threads,
                ops: CONTENDED_OPS_PER_THREAD * threads as u64,
                nanos: median(samples[ai][pi + 1].clone()).as_nanos(),
            });
        }
        println!("{}", format_stats(arm.name, &strategies[ai].stats()));
    }

    let baseline = |threads: usize| -> f64 {
        results
            .iter()
            .find(|m| m.arm == "seed" && m.threads == threads)
            .expect("seed arm measured first")
            .ops_per_sec()
    };

    println!();
    println!("{:<16} {:>8} {:>14} {:>12}", "arm", "threads", "ops/sec", "vs seed");
    for m in &results {
        println!(
            "{:<16} {:>8} {:>14.0} {:>11.2}x",
            m.arm,
            m.threads,
            m.ops_per_sec(),
            m.ops_per_sec() / baseline(m.threads),
        );
    }

    // Hand-rolled JSON (the workspace deliberately has no serde): one
    // object per measurement, speedup precomputed for easy trending.
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"arm\": \"{}\", \"threads\": {}, \"ops\": {}, \"nanos\": {}, \"ops_per_sec\": {:.0}, \"speedup_vs_seed\": {:.3}}}",
                m.arm,
                m.threads,
                m.ops,
                m.nanos,
                m.ops_per_sec(),
                m.ops_per_sec() / baseline(m.threads),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e10_dcas_hotpath\",\n  {},\n  \"oversubscribed\": {},\n  \"uncontended_ops\": {UNCONTENDED_OPS},\n  \"contended_ops_per_thread\": {CONTENDED_OPS_PER_THREAD},\n  \"repeats\": {REPEATS},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        host_info_json(),
        print_oversubscription_caveat(*THREAD_COUNTS.iter().max().unwrap()),
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e10.json");
    std::fs::write(out, json).expect("write BENCH_e10.json");
    println!("\nwrote {out}");
}
