//! E6 — the motivating application (Section 1: deques are "currently
//! used in load balancing algorithms [4]"): a fork-join tree on the
//! work-stealing scheduler, per deque implementation, including the
//! CAS-only Arora–Blumofe–Plaxton baseline the paper cites.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas_workstealing::{
    AbpWorkDeque, ArrayWorkDeque, DynDeque, ListWorkDeque, MutexWorkDeque, Scheduler, WorkDeque,
    WorkerHandle,
};

fn spawn_tree(w: &WorkerHandle<'_, DynDeque>, depth: u32, leaves: Arc<AtomicU64>) {
    if depth == 0 {
        leaves.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let l = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, l));
    let r = leaves.clone();
    w.spawn(move |w| spawn_tree(w, depth - 1, r));
}

fn bench_deque<D: WorkDeque>(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6/workstealing");
    g.sample_size(10);
    // Contended (2) plus the host's full width (floored at the historical
    // 4-worker arm so curves stay comparable across machines).
    let max_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(4);
    for workers in [2usize, max_workers] {
        g.bench_with_input(
            BenchmarkId::new(D::name(), workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let leaves = Arc::new(AtomicU64::new(0));
                    let sched: Scheduler<D> = Scheduler::with_capacity(workers, 1 << 14);
                    let l = leaves.clone();
                    sched.run(move |w| spawn_tree(w, 11, l));
                    assert_eq!(leaves.load(Ordering::SeqCst), 1 << 11);
                });
            },
        );
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_deque::<AbpWorkDeque>(c);
    bench_deque::<ArrayWorkDeque>(c);
    bench_deque::<ListWorkDeque>(c);
    bench_deque::<MutexWorkDeque>(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
