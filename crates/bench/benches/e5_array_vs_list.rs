//! E5 — array vs linked-list representation: the static-allocation array
//! deque against the dynamically-allocating list deques (the per-pop
//! allocation overhead is what later motivated the "Hat Trick" bulk
//! allocation work the paper cites as \[24\]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::{GlobalSeqLock, HarrisMcas};
use dcas_bench::{sequential_churn, two_end_phase};
use dcas_deque::{ArrayDeque, ConcurrentDeque, DummyListDeque, LfrcListDeque, ListDeque};

const OPS: u64 = 4_000;

fn bench_impl<D: ConcurrentDeque<u64>>(c: &mut Criterion, name: &str, mk: impl Fn() -> D) {
    let mut g = c.benchmark_group("e5/array_vs_list");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new(name, "sequential"), |b| {
        let d = mk();
        b.iter(|| sequential_churn(&d, 1_000));
    });
    g.bench_function(BenchmarkId::new(name, "contended_4"), |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let d = mk();
                total += two_end_phase(&d, 4, OPS);
            }
            total
        });
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    // Lock-free strategy (allocation cost of descriptors included).
    bench_impl(c, "array/mcas", || ArrayDeque::<u64, HarrisMcas>::new(1 << 12));
    bench_impl(c, "list/mcas", ListDeque::<u64, HarrisMcas>::new);
    bench_impl(c, "list-dummy/mcas", DummyListDeque::<u64, HarrisMcas>::new);
    bench_impl(c, "list-lfrc/mcas", LfrcListDeque::<u64, HarrisMcas>::new);
    // Blocking strategy (isolates node allocation from descriptor
    // allocation).
    bench_impl(c, "array/seqlock", || ArrayDeque::<u64, GlobalSeqLock>::new(1 << 12));
    bench_impl(c, "list/seqlock", ListDeque::<u64, GlobalSeqLock>::new);
    bench_impl(c, "list-dummy/seqlock", DummyListDeque::<u64, GlobalSeqLock>::new);
    bench_impl(c, "list-lfrc/seqlock", LfrcListDeque::<u64, GlobalSeqLock>::new);
}

criterion_group!(benches, all);
criterion_main!(benches);
