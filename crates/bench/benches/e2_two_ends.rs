//! E2 — "uninterrupted concurrent access to both ends of the deque"
//! (Abstract, Section 1.2): two-end throughput as the thread count grows,
//! for both paper algorithms and the lock-based baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcas::HarrisMcas;
use dcas_baselines::{MutexDeque, SpinDeque};
use dcas_bench::two_end_phase;
use dcas_deque::{ArrayDeque, ConcurrentDeque, DummyListDeque, ListDeque};

const OPS: u64 = 4_000;

fn bench_impl<D: ConcurrentDeque<u64>>(
    c: &mut Criterion,
    name: &str,
    mk: impl Fn() -> D,
) {
    let mut g = c.benchmark_group("e2/two_ends");
    g.sample_size(10);
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let d = mk();
                    total += two_end_phase(&d, threads, OPS);
                }
                total
            });
        });
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_impl(c, "array-dcas", || ArrayDeque::<u64, HarrisMcas>::new(1 << 16));
    bench_impl(c, "list-dcas", ListDeque::<u64, HarrisMcas>::new);
    bench_impl(c, "list-dummy-dcas", DummyListDeque::<u64, HarrisMcas>::new);
    bench_impl(c, "mutex", MutexDeque::<u64>::new);
    bench_impl(c, "spinlock", SpinDeque::<u64>::new);
}

criterion_group!(benches, all);
criterion_main!(benches);
