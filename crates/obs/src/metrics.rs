//! Metrics registry: counters, log-bucketed histograms, and a JSON
//! exporter.
//!
//! No external serialization crates are available in this build
//! environment, so the exporter emits JSON by hand from a tiny value
//! tree. All hot-path instruments ([`LogHistogram`], counters) are
//! allocation-free atomics; building the registry/report is the cold
//! path.

use std::sync::atomic::{AtomicU64, Ordering};

use dcas::StrategyStats;
use dcas_workstealing::SchedStats;

/// Number of power-of-two buckets in a [`LogHistogram`] (covers the full
/// `u64` range).
pub const HIST_BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two buckets: bucket `0` counts
/// zeros, bucket `i >= 1` counts values whose highest set bit is `i-1`
/// (i.e. `2^(i-1) <= v < 2^i`). Suited to latency distributions spanning
/// many orders of magnitude.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0u64; HIST_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot (relaxed reads; approximate while
    /// writers run).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of a [`LogHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`LogHistogram`] for the bucket rule).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count != 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), `None` when empty. Log-bucketed, so correct to within
    /// a factor of two.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 });
            }
        }
        Some(self.max)
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// A JSON value tree for the exporter.
#[derive(Debug, Clone)]
pub enum Json {
    /// An unsigned integer.
    U64(u64),
    /// A float (emitted with enough precision to round-trip ratios).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    fn write(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        match self {
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    for _ in 0..indent + 2 {
                        out.push(' ');
                    }
                    let _ = write!(out, "\"{k}\": ");
                    v.write(out, indent + 2);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write(out, indent);
                }
                out.push(']');
            }
        }
    }

    /// Renders the tree as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }
}

/// An ordered collection of named metric sections, exportable as JSON.
///
/// Sections are plain `Json` objects; convenience methods ingest the
/// workspace's stats types ([`StrategyStats`], [`SchedStats`],
/// histogram snapshots) through their stable `fields()` iteration
/// surfaces.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    sections: Vec<(String, Json)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a section of plain counters.
    pub fn counters(&mut self, section: &str, fields: &[(&str, u64)]) -> &mut Self {
        self.sections.push((
            section.to_string(),
            Json::Obj(fields.iter().map(|&(k, v)| (k.to_string(), Json::U64(v))).collect()),
        ));
        self
    }

    /// Adds a DCAS strategy's counters (plus derived rates) as a section.
    pub fn strategy_stats(&mut self, section: &str, s: &StrategyStats) -> &mut Self {
        let mut fields: Vec<(String, Json)> =
            s.fields().iter().map(|&(k, v)| (k.to_string(), Json::U64(v))).collect();
        for (name, rate) in [
            ("dcas_failure_rate", s.failure_rate()),
            ("descriptor_reuse_rate", s.reuse_rate()),
            ("pair_hit_rate", s.pair_hit_rate()),
            ("elim_hit_rate", s.elim_hit_rate()),
        ] {
            if let Some(r) = rate {
                fields.push((name.to_string(), Json::F64(r)));
            }
        }
        self.sections.push((section.to_string(), Json::Obj(fields)));
        self
    }

    /// Adds a work-stealing scheduler run's counters as a section.
    pub fn sched_stats(&mut self, section: &str, s: &SchedStats) -> &mut Self {
        self.counters(section, &s.fields())
    }

    /// Adds a histogram snapshot as a section: count/sum/mean/max,
    /// a quantile-bound table, and the non-empty log buckets.
    pub fn histogram(&mut self, section: &str, h: &HistogramSnapshot) -> &mut Self {
        let mut fields = vec![
            ("count".to_string(), Json::U64(h.count)),
            ("sum".to_string(), Json::U64(h.sum)),
            ("max".to_string(), Json::U64(h.max)),
        ];
        if let Some(m) = h.mean() {
            fields.push(("mean".to_string(), Json::F64(m)));
        }
        for (label, q) in [("p50_le", 0.5), ("p90_le", 0.9), ("p99_le", 0.99)] {
            if let Some(b) = h.quantile_bound(q) {
                fields.push((label.to_string(), Json::U64(b)));
            }
        }
        fields.push((
            "log2_buckets".to_string(),
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, c)| Json::Arr(vec![Json::U64(lo), Json::U64(c)]))
                    .collect(),
            ),
        ));
        self.sections.push((section.to_string(), Json::Obj(fields)));
        self
    }

    /// Adds an arbitrary pre-built section.
    pub fn section(&mut self, name: &str, value: Json) -> &mut Self {
        self.sections.push((name.to_string(), value));
        self
    }

    /// The whole registry as one JSON object.
    pub fn to_json(&self) -> String {
        Json::Obj(self.sections.clone()).to_json()
    }

    /// A compact human-readable rendering (for terminal reports).
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.sections {
            let _ = writeln!(out, "[{name}]");
            if let Json::Obj(fields) = v {
                for (k, fv) in fields {
                    match fv {
                        Json::U64(n) => {
                            let _ = writeln!(out, "  {k:<24} {n}");
                        }
                        Json::F64(f) => {
                            let _ = writeln!(out, "  {k:<24} {f:.4}");
                        }
                        Json::Str(s) => {
                            let _ = writeln!(out, "  {k:<24} {s}");
                        }
                        other => {
                            let _ = writeln!(out, "  {k:<24} {}", other.to_json());
                        }
                    }
                }
            } else {
                let _ = writeln!(out, "  {}", v.to_json());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[4], 1); // 8
        assert_eq!(s.buckets[10], 1); // 1000 (512..1024)
        assert!(s.mean().unwrap() > 168.0);
        // p50 of [0,1,1,3,8,1000] is in the ones bucket (bound 1).
        assert_eq!(s.quantile_bound(0.5), Some(1));
        assert_eq!(s.quantile_bound(1.0), Some(1023));
    }

    #[test]
    fn histogram_full_range() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn json_escaping_and_shape() {
        let j = Json::Obj(vec![
            ("a".into(), Json::U64(3)),
            ("b".into(), Json::Str("x\"y\\z\n".into())),
            ("c".into(), Json::Arr(vec![Json::U64(1), Json::F64(0.5)])),
        ]);
        let s = j.to_json();
        assert!(s.contains("\"a\": 3"));
        assert!(s.contains("\\\"y\\\\z\\n"));
        assert!(s.contains("[1, 0.500000]"));
    }

    #[test]
    fn registry_sections_roundtrip() {
        let mut reg = MetricsRegistry::new();
        reg.counters("ops", &[("push_right", 10), ("pop_left", 9)]);
        reg.strategy_stats("dcas", &StrategyStats::default());
        reg.sched_stats("sched", &SchedStats::default());
        let h = LogHistogram::new();
        h.record(100);
        reg.histogram("latency_ns", &h.snapshot());
        let json = reg.to_json();
        for key in ["\"ops\"", "\"dcas\"", "\"sched\"", "\"latency_ns\"", "\"dcas_ops\"", "\"steals\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let pretty = reg.pretty();
        assert!(pretty.contains("[ops]"));
        assert!(pretty.contains("push_right"));
    }
}
