//! Record-and-verify observability for the DCAS deques.
//!
//! The paper's Section 5 correctness arguments are reproduced in this
//! workspace over *abstract* machines (`crates/modelcheck`); this crate
//! closes the gap to the **real** Rust implementations by recording what
//! they actually do and checking it:
//!
//! * [`recorder`] — a lock-free, allocation-bounded per-thread op
//!   recorder: fixed-capacity seqlock ring buffers, monotone per-thread
//!   sequence numbers, one global logical clock for conservative
//!   real-time intervals. Readable concurrently (auditors, watchdog
//!   dumps) while writers run.
//! * [`recorded`] — the [`Recorded`] wrapper that makes any
//!   [`ConcurrentDeque`](dcas_deque::ConcurrentDeque) wear the recorder,
//!   plus per-op-kind latency histograms.
//! * [`metrics`] — a metrics registry (op counters, DCAS strategy
//!   counters via [`dcas::StrategyStats`], scheduler counters via
//!   [`dcas_workstealing::SchedStats`], log-bucketed latency histograms)
//!   with a hand-rolled JSON exporter.
//! * [`bridge`] — converts captured rings into `dcas-linearize`
//!   histories and audits them: post-hoc over a whole run ([`audit`]),
//!   or *online* in bounded windows while the run is still going
//!   ([`OnlineAuditor`]), failing fast on the first non-linearizable
//!   window.
//!
//! Everything here lives outside the deque hot paths: a deque used
//! without the [`Recorded`] wrapper carries no hooks at all, which is
//! what lets the umbrella crate expose this as a default feature at
//! zero cost to unrecorded code.

#![warn(missing_docs)]

pub mod bridge;
pub mod metrics;
pub mod recorded;
pub mod recorder;

pub use bridge::{
    audit, completed_history, to_completed, AuditError, AuditReport, OnlineAuditor, PollReport,
    TraceError, TraceStats,
};
pub use metrics::{HistogramSnapshot, Json, LogHistogram, MetricsRegistry};
pub use recorded::{BatchTracing, OpMetrics, Recorded};
pub use recorder::{OpKind, OpRecorder, Outcome, RecordedOp, SlotRead, ThreadRing};
