//! Trace→history bridge: converts captured recorder rings into
//! `dcas-linearize` histories and audits them — post-hoc over a whole
//! run, or *online* in bounded windows while the run is still going.
//!
//! The conversion is mechanical: every completed [`RecordedOp`] becomes
//! one [`Completed`] with the conservative `[invoke_ts, respond_ts]`
//! interval stamped by the recorder's global clock. In-flight
//! operations (a thread killed mid-operation by the fault injector, or
//! simply caught mid-call by an online poll) have no response and are
//! excluded — the caller decides whether exclusions are acceptable
//! (they are for the fault injector's *effect-free* panic kills, whose
//! crashed op by construction did not change the deque).

use std::sync::Arc;

use dcas_linearize::window::{WindowError, WindowReport, WindowedChecker};
use dcas_linearize::{Batch, Completed, DequeOp, DequeRet, SeqDeque};

use crate::recorder::{OpKind, OpRecorder, Outcome, RecordedOp, SlotRead};

/// Why a trace could not be captured faithfully.
#[derive(Debug)]
pub enum TraceError {
    /// The ring wrapped before this operation was read: the trace has a
    /// hole and cannot be audited. Size rings for the run, or poll the
    /// online auditor more often.
    Truncated {
        /// Ring (thread) index.
        thread: usize,
        /// First sequence number whose slot was recycled unread.
        first_lost: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Truncated { thread, first_lost } => write!(
                f,
                "trace truncated: thread {thread} op #{first_lost} was \
                 overwritten before it could be read"
            ),
        }
    }
}

/// Why an audit failed.
#[derive(Debug)]
pub enum AuditError {
    /// The trace itself was unusable.
    Trace(TraceError),
    /// The trace is **not linearizable** against the deque spec.
    Violation(WindowError),
}

impl From<TraceError> for AuditError {
    fn from(e: TraceError) -> Self {
        AuditError::Trace(e)
    }
}

impl From<WindowError> for AuditError {
    fn from(e: WindowError) -> Self {
        AuditError::Violation(e)
    }
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Trace(e) => write!(f, "{e}"),
            AuditError::Violation(e) => write!(f, "{e}"),
        }
    }
}

/// Converts one completed recorder entry into a spec-level operation.
///
/// # Panics
///
/// Panics on a malformed record (e.g. a completed op whose outcome is
/// still `Pending`) — these indicate recorder bugs, not workload
/// behaviour.
pub fn to_completed(op: &RecordedOp) -> Completed {
    let respond_ts =
        op.respond_ts.expect("to_completed requires a completed record");
    let (deque_op, ret) = match op.kind {
        OpKind::PushRight | OpKind::PushLeft => {
            let v = op.vals()[0];
            let o = if op.kind == OpKind::PushRight {
                DequeOp::PushRight(v)
            } else {
                DequeOp::PushLeft(v)
            };
            let ret = match op.outcome {
                Outcome::Okay => DequeRet::Okay,
                Outcome::Full => DequeRet::Full,
                other => panic!("push completed with outcome {other:?}"),
            };
            (o, ret)
        }
        OpKind::PopRight | OpKind::PopLeft => {
            let o = if op.kind == OpKind::PopRight { DequeOp::PopRight } else { DequeOp::PopLeft };
            let ret = match op.outcome {
                Outcome::Okay => DequeRet::Value(op.vals()[0]),
                Outcome::Empty => DequeRet::Empty,
                other => panic!("pop completed with outcome {other:?}"),
            };
            (o, ret)
        }
        OpKind::PushRightN | OpKind::PushLeftN => {
            let b = Batch::new(op.vals());
            let o = if op.kind == OpKind::PushRightN {
                DequeOp::PushRightN(b)
            } else {
                DequeOp::PushLeftN(b)
            };
            let ret = match op.outcome {
                Outcome::Okay => DequeRet::Okay,
                Outcome::Full => DequeRet::Full,
                other => panic!("batch push completed with outcome {other:?}"),
            };
            (o, ret)
        }
        OpKind::PopRightN | OpKind::PopLeftN => {
            let o = if op.kind == OpKind::PopRightN {
                DequeOp::PopRightN(op.requested)
            } else {
                DequeOp::PopLeftN(op.requested)
            };
            (o, DequeRet::Values(Batch::new(op.vals())))
        }
    };
    Completed { invoke_ts: op.invoke_ts, respond_ts, op: deque_op, ret }
}

/// Capture statistics of a trace extraction.
#[derive(Debug, Default, Clone, Copy)]
pub struct TraceStats {
    /// Completed operations extracted.
    pub completed: usize,
    /// Operations excluded because they never responded (crashed thread
    /// or caught mid-call).
    pub in_flight_excluded: usize,
}

/// Extracts every completed operation from the recorder's rings, sorted
/// by invocation timestamp. In-flight operations are counted in
/// [`TraceStats::in_flight_excluded`].
pub fn completed_history(
    rec: &OpRecorder,
) -> Result<(Vec<Completed>, TraceStats), TraceError> {
    let mut out = Vec::new();
    let mut stats = TraceStats::default();
    for t in 0..rec.threads() {
        let ring = rec.ring(t);
        let started = ring.started();
        for seq in 0..started {
            match ring.read(t, seq) {
                SlotRead::Completed(op) => {
                    out.push(to_completed(&op));
                    stats.completed += 1;
                }
                SlotRead::InFlight(_) => {
                    stats.in_flight_excluded += 1;
                }
                SlotRead::Overwritten => {
                    return Err(TraceError::Truncated { thread: t, first_lost: seq })
                }
                SlotRead::NotYetStable => {
                    // A slot can only stay unstable while its owner is
                    // mid-call; for a quiesced post-hoc capture that
                    // means a crashed writer — treat as in-flight.
                    stats.in_flight_excluded += 1;
                }
            }
        }
    }
    out.sort_by_key(|c| c.invoke_ts);
    Ok((out, stats))
}

/// Result of a successful audit.
#[derive(Debug)]
pub struct AuditReport {
    /// The windowed-checker summary.
    pub window: WindowReport,
    /// Capture statistics (how many ops were checked / excluded).
    pub trace: TraceStats,
}

/// Post-hoc audit: extracts the recorder's trace and checks it
/// linearizable from `initial`, windowing at quiescent cuts with at
/// most `max_window` operations per window.
///
/// Call after the recorded run has quiesced (worker threads joined, or
/// dead). Crashed threads' pending operations are excluded — sound for
/// the fault injector's effect-free panic kills.
pub fn audit(
    rec: &OpRecorder,
    initial: SeqDeque,
    max_window: usize,
) -> Result<AuditReport, AuditError> {
    let (ops, trace) = completed_history(rec)?;
    let mut checker = WindowedChecker::new(initial, max_window);
    checker.feed(ops);
    let window = checker.finish()?;
    Ok(AuditReport { window, trace })
}

/// Outcome of one [`OnlineAuditor::poll`].
#[derive(Debug, Default, Clone, Copy)]
pub struct PollReport {
    /// Completed operations consumed by this poll.
    pub fed: usize,
    /// Windows closed and checked by this poll.
    pub windows_checked: usize,
}

/// Incremental auditor for a *live* run: periodically [`poll`]s the
/// rings, feeds newly completed operations to a [`WindowedChecker`],
/// and checks every window already closed by a quiescent cut — so a
/// linearizability violation surfaces **during** the run, bounded by
/// the window size, instead of after a post-hoc capture.
///
/// [`poll`]: OnlineAuditor::poll
pub struct OnlineAuditor {
    rec: Arc<OpRecorder>,
    consumed: Vec<u64>,
    checker: WindowedChecker,
    in_flight_excluded: usize,
}

impl OnlineAuditor {
    /// Creates an auditor over `rec` starting from `initial`, checking
    /// windows of at most `max_window` operations.
    pub fn new(rec: Arc<OpRecorder>, initial: SeqDeque, max_window: usize) -> Self {
        let threads = rec.threads();
        OnlineAuditor {
            rec,
            consumed: vec![0; threads],
            checker: WindowedChecker::new(initial, max_window),
            in_flight_excluded: 0,
        }
    }

    /// Operations checked so far.
    pub fn ops_checked(&self) -> usize {
        self.checker.ops_checked()
    }

    /// Windows checked so far.
    pub fn windows(&self) -> usize {
        self.checker.windows()
    }

    /// Consumes newly completed operations and checks every
    /// quiescent-cut window that is now safely closed.
    ///
    /// Safe-timestamp rule: the global clock is read **before** the
    /// rings are scanned, so every operation invoked after the scan
    /// carries a later stamp; the windows advanced here can never be
    /// invalidated by an operation the scan missed.
    pub fn poll(&mut self) -> Result<PollReport, AuditError> {
        // Clock first — see the doc comment.
        let clock_bound = self.rec.clock_now();
        let mut safe_ts = clock_bound;
        let mut fed = 0;
        for t in 0..self.rec.threads() {
            let ring = self.rec.ring(t);
            let started = ring.started();
            while self.consumed[t] < started {
                let seq = self.consumed[t];
                match ring.read(t, seq) {
                    SlotRead::Completed(op) => {
                        self.checker.feed([to_completed(&op)]);
                        self.consumed[t] += 1;
                        fed += 1;
                    }
                    SlotRead::InFlight(op) => {
                        // At most one per ring (ops are sequential per
                        // thread), always the newest.
                        safe_ts = safe_ts.min(op.invoke_ts);
                        break;
                    }
                    SlotRead::Overwritten => {
                        return Err(TraceError::Truncated { thread: t, first_lost: seq }.into())
                    }
                    SlotRead::NotYetStable => {
                        // Mid-transition (owner inside begin/finish) and
                        // its invocation stamp is unreadable: freeze
                        // window advancement this round rather than risk
                        // cutting past it. Transient — the next poll
                        // reads it.
                        safe_ts = 0;
                        break;
                    }
                }
            }
        }
        let windows_checked = self.checker.advance(safe_ts)?;
        Ok(PollReport { fed, windows_checked })
    }

    /// Final drain and check, to call after the run has quiesced
    /// (threads joined or confirmed dead). Operations still pending are
    /// excluded as crashed and counted in the report.
    pub fn finish(mut self) -> Result<AuditReport, AuditError> {
        // Drain whatever completed since the last poll.
        self.poll()?;
        // Any op still unconsumed is in-flight forever (crashed).
        for t in 0..self.rec.threads() {
            self.in_flight_excluded +=
                (self.rec.ring(t).started() - self.consumed[t]) as usize;
        }
        let in_flight_excluded = self.in_flight_excluded;
        let completed = self.checker.ops_checked() + self.checker.buffered();
        let window = self.checker.finish()?;
        Ok(AuditReport {
            window,
            trace: TraceStats { completed, in_flight_excluded },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorded::Recorded;
    use dcas_deque::{ConcurrentDeque, ListDeque};

    #[test]
    fn sequential_trace_audits_clean() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 256);
        for i in 0..50 {
            d.push_right(i).unwrap();
        }
        for i in 0..50 {
            assert_eq!(d.pop_left(), Some(i));
        }
        let report = audit(d.recorder(), SeqDeque::unbounded(), 16).unwrap();
        assert_eq!(report.window.ops_checked, 100);
        assert_eq!(report.trace.in_flight_excluded, 0);
        assert!(report.window.final_states.iter().all(SeqDeque::is_empty));
    }

    #[test]
    fn crashed_op_is_excluded_not_fatal() {
        let rec = Arc::new(OpRecorder::new(1, 16));
        rec.begin(OpKind::PushRight, 0, &[5]);
        rec.finish(Outcome::Okay, &[]);
        rec.begin(OpKind::PopLeft, 0, &[]); // never finishes: "crashed"
        let report = audit(&rec, SeqDeque::unbounded(), 8).unwrap();
        assert_eq!(report.trace.completed, 1);
        assert_eq!(report.trace.in_flight_excluded, 1);
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 4);
        for i in 0..20 {
            d.push_right(i).unwrap();
        }
        match audit(d.recorder(), SeqDeque::unbounded(), 8) {
            Err(AuditError::Trace(TraceError::Truncated { thread: 0, .. })) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn online_auditor_checks_during_the_run() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 64);
        let mut auditor =
            OnlineAuditor::new(d.recorder().clone(), SeqDeque::unbounded(), 8);
        let mut polled_windows = 0;
        for round in 0..8u32 {
            for i in 0..8 {
                d.push_right(round * 8 + i).unwrap();
            }
            for _ in 0..8 {
                d.pop_left().unwrap();
            }
            let r = auditor.poll().unwrap();
            polled_windows += r.windows_checked;
        }
        assert!(polled_windows > 0, "online mode must close windows mid-run");
        let report = auditor.finish().unwrap();
        assert_eq!(report.window.ops_checked, 128);
        assert_eq!(report.trace.in_flight_excluded, 0);
    }

    #[test]
    fn corrupted_trace_is_rejected() {
        // A genuine recorded trace, then values of two pops swapped: a
        // FIFO history claiming LIFO observations must be refused.
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 64);
        d.push_right(1).unwrap();
        d.push_right(2).unwrap();
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_left(), Some(2));
        let (mut ops, _) = completed_history(d.recorder()).unwrap();
        assert!(matches!(ops[2].ret, DequeRet::Value(1)));
        ops[2].ret = DequeRet::Value(2);
        ops[3].ret = DequeRet::Value(1);
        let mut checker = WindowedChecker::new(SeqDeque::unbounded(), 64);
        checker.feed(ops);
        assert!(
            matches!(checker.finish(), Err(WindowError::Violation { .. })),
            "swapped pop values must fail the audit"
        );
    }
}
