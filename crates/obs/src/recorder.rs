//! Lock-free per-thread op recorder.
//!
//! An [`OpRecorder`] owns one fixed-capacity ring buffer per
//! participating thread plus one global logical clock. Each deque
//! operation occupies one ring slot holding its invocation timestamp,
//! response timestamp, packed descriptor (kind, end, batch size,
//! outcome) and up to [`MAX_BATCH`] traced value identities. Threads are
//! assigned rings automatically on first use (thread-local cache), so
//! the recording wrapper works with plain `&self` deque methods.
//!
//! # Concurrent reads
//!
//! Slots are written only by their owning thread but may be read at any
//! time by an auditor or a watchdog dump. Each slot is a seqlock in the
//! crossbeam `AtomicCell` style, with **two** stable phases per
//! generation `s`:
//!
//! * `4s+1` — invocation fields being written (unstable);
//! * `4s+2` — operation in flight: invocation fields readable;
//! * `4s+3` — response fields being written (unstable);
//! * `4s+4` — operation complete: all fields readable.
//!
//! A reader loads the state (Acquire), reads the payload (Relaxed
//! atomics, so no torn reads are UB), issues an Acquire fence, and
//! re-reads the state; an unchanged stable state certifies a consistent
//! snapshot. Generations advance by the ring capacity between reuses of
//! a slot, so a reader asking for operation `s` detects overwriting
//! (state from a later generation) rather than mistaking recycled data
//! for it.
//!
//! The recorder never allocates after construction: recording is two
//! atomic clock increments, a handful of relaxed stores, and the seqlock
//! transitions.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use dcas_deque::MAX_BATCH;

/// Operation kinds as stored in slot descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `push_right(v)`
    PushRight = 0,
    /// `push_left(v)`
    PushLeft = 1,
    /// `pop_right()`
    PopRight = 2,
    /// `pop_left()`
    PopLeft = 3,
    /// One chunk-atomic `push_right_n` transition.
    PushRightN = 4,
    /// One chunk-atomic `push_left_n` transition.
    PushLeftN = 5,
    /// One chunk-atomic `pop_right_n` transition.
    PopRightN = 6,
    /// One chunk-atomic `pop_left_n` transition.
    PopLeftN = 7,
}

impl OpKind {
    fn from_bits(b: u64) -> OpKind {
        match b & 0x7 {
            0 => OpKind::PushRight,
            1 => OpKind::PushLeft,
            2 => OpKind::PopRight,
            3 => OpKind::PopLeft,
            4 => OpKind::PushRightN,
            5 => OpKind::PushLeftN,
            6 => OpKind::PopRightN,
            _ => OpKind::PopLeftN,
        }
    }

    /// Short display name (`pushRight`, `popLeftN`, ...).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::PushRight => "pushRight",
            OpKind::PushLeft => "pushLeft",
            OpKind::PopRight => "popRight",
            OpKind::PopLeft => "popLeft",
            OpKind::PushRightN => "pushRightN",
            OpKind::PushLeftN => "pushLeftN",
            OpKind::PopRightN => "popRightN",
            OpKind::PopLeftN => "popLeftN",
        }
    }

    /// Whether this kind carries its traced values at invocation (pushes)
    /// rather than at response (pops).
    pub fn is_push(self) -> bool {
        matches!(
            self,
            OpKind::PushRight | OpKind::PushLeft | OpKind::PushRightN | OpKind::PushLeftN
        )
    }
}

/// Operation outcome as stored in slot descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Still in flight (no response recorded).
    Pending,
    /// Push succeeded / pop returned value(s).
    Okay,
    /// Push hit a full bounded deque.
    Full,
    /// Pop found the deque empty.
    Empty,
}

impl Outcome {
    fn to_bits(self) -> u64 {
        match self {
            Outcome::Pending => 0,
            Outcome::Okay => 1,
            Outcome::Full => 2,
            Outcome::Empty => 3,
        }
    }

    fn from_bits(b: u64) -> Outcome {
        match b & 0x3 {
            0 => Outcome::Pending,
            1 => Outcome::Okay,
            2 => Outcome::Full,
            _ => Outcome::Empty,
        }
    }
}

// Descriptor word layout: kind in bits 0..3, requested batch size in
// bits 4..8, value count in bits 8..12, outcome in bits 12..14.
fn pack_desc(kind: OpKind, requested: u8, count: u8, outcome: Outcome) -> u64 {
    debug_assert!(requested as usize <= MAX_BATCH && count as usize <= MAX_BATCH);
    (kind as u64) | ((requested as u64) << 4) | ((count as u64) << 8) | (outcome.to_bits() << 12)
}

/// One decoded recorder entry.
#[derive(Debug, Clone, Copy)]
pub struct RecordedOp {
    /// Ring (thread) index.
    pub thread: usize,
    /// Per-thread monotone sequence number.
    pub seq: u64,
    /// Global-clock stamp taken immediately before invoking the inner
    /// operation.
    pub invoke_ts: u64,
    /// Stamp taken immediately after it returned; `None` while in
    /// flight.
    pub respond_ts: Option<u64>,
    /// What was invoked.
    pub kind: OpKind,
    /// Requested batch size (batched pops; 0 otherwise).
    pub requested: u8,
    /// How it ended.
    pub outcome: Outcome,
    /// Traced value identities: the pushed values for pushes, the popped
    /// values for pops (empty while a pop is in flight).
    pub vals: [u64; MAX_BATCH],
    /// Number of live entries in `vals`.
    pub count: u8,
}

impl RecordedOp {
    /// The live prefix of [`vals`](Self::vals).
    pub fn vals(&self) -> &[u64] {
        &self.vals[..self.count as usize]
    }
}

impl std::fmt::Display for RecordedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} {}(", self.seq, self.kind.name())?;
        if self.kind.is_push() {
            for (i, v) in self.vals().iter().enumerate() {
                write!(f, "{}{v}", if i == 0 { "" } else { "," })?;
            }
        } else if self.requested > 0 {
            write!(f, "{}", self.requested)?;
        }
        write!(f, ") @[{},", self.invoke_ts)?;
        match self.respond_ts {
            None => write!(f, "…] IN-FLIGHT"),
            Some(r) => {
                write!(f, "{r}] -> ")?;
                match self.outcome {
                    Outcome::Pending => write!(f, "?"),
                    Outcome::Full => write!(f, "full"),
                    Outcome::Empty => write!(f, "empty"),
                    Outcome::Okay if self.kind.is_push() => write!(f, "okay"),
                    Outcome::Okay => {
                        write!(f, "[")?;
                        for (i, v) in self.vals().iter().enumerate() {
                            write!(f, "{}{v}", if i == 0 { "" } else { "," })?;
                        }
                        write!(f, "]")
                    }
                }
            }
        }
    }
}

/// What a concurrent reader found at a given (thread, seq).
#[derive(Debug, Clone, Copy)]
pub enum SlotRead {
    /// The operation completed; full record.
    Completed(RecordedOp),
    /// The operation is still executing; invocation-side record (for
    /// pops, `vals` is empty until the response lands).
    InFlight(RecordedOp),
    /// The ring wrapped: this sequence number's slot was recycled before
    /// it could be read.
    Overwritten,
    /// The sequence number has not been issued yet (or its slot is
    /// mid-transition; retry).
    NotYetStable,
}

struct Slot {
    state: AtomicU64,
    invoke_ts: AtomicU64,
    respond_ts: AtomicU64,
    desc: AtomicU64,
    vals: [AtomicU64; MAX_BATCH],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            invoke_ts: AtomicU64::new(0),
            respond_ts: AtomicU64::new(0),
            desc: AtomicU64::new(0),
            vals: Default::default(),
        }
    }
}

/// One thread's ring. Written only by the owning thread; read by anyone.
pub struct ThreadRing {
    /// Operations begun on this ring (`seq` of the next op). Published
    /// with Release after the slot reaches its in-flight stable phase.
    started: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(capacity: usize) -> ThreadRing {
        ThreadRing {
            started: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Operations begun on this ring so far.
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Acquire)
    }

    // Owner-side: begin op `seq` (= current `started`).
    fn begin(&self, invoke_ts: u64, kind: OpKind, requested: u8, input: &[u64]) -> u64 {
        let seq = self.started.load(Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        slot.state.swap(4 * seq + 1, Ordering::Acquire);
        fence(Ordering::Release);
        slot.invoke_ts.store(invoke_ts, Ordering::Relaxed);
        slot.desc.store(
            pack_desc(kind, requested, input.len() as u8, Outcome::Pending),
            Ordering::Relaxed,
        );
        for (i, &v) in input.iter().enumerate() {
            slot.vals[i].store(v, Ordering::Relaxed);
        }
        slot.state.store(4 * seq + 2, Ordering::Release);
        self.started.store(seq + 1, Ordering::Release);
        seq
    }

    // Owner-side: finish the in-flight op (`started - 1`).
    fn finish(&self, respond_ts: u64, outcome: Outcome, result: &[u64]) {
        let seq = self.started.load(Ordering::Relaxed) - 1;
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        slot.state.swap(4 * seq + 3, Ordering::Acquire);
        fence(Ordering::Release);
        slot.respond_ts.store(respond_ts, Ordering::Relaxed);
        let desc = slot.desc.load(Ordering::Relaxed);
        let kind = OpKind::from_bits(desc);
        let requested = ((desc >> 4) & 0xF) as u8;
        let count = if kind.is_push() { ((desc >> 8) & 0xF) as u8 } else { result.len() as u8 };
        if !kind.is_push() {
            for (i, &v) in result.iter().enumerate() {
                slot.vals[i].store(v, Ordering::Relaxed);
            }
        }
        slot.desc.store(pack_desc(kind, requested, count, outcome), Ordering::Relaxed);
        slot.state.store(4 * seq + 4, Ordering::Release);
    }

    /// Concurrent-safe read of operation `seq` on this ring.
    pub fn read(&self, thread: usize, seq: u64) -> SlotRead {
        if seq >= self.started() {
            return SlotRead::NotYetStable;
        }
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        for _ in 0..64 {
            let stamp = slot.state.load(Ordering::Acquire);
            if stamp > 4 * seq + 4 {
                return SlotRead::Overwritten;
            }
            if stamp != 4 * seq + 2 && stamp != 4 * seq + 4 {
                // Mid-transition (the owning thread is inside begin or
                // finish); spin briefly for stability.
                std::hint::spin_loop();
                continue;
            }
            let invoke_ts = slot.invoke_ts.load(Ordering::Relaxed);
            let respond_ts = slot.respond_ts.load(Ordering::Relaxed);
            let desc = slot.desc.load(Ordering::Relaxed);
            let mut vals = [0u64; MAX_BATCH];
            for (i, v) in slot.vals.iter().enumerate() {
                vals[i] = v.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.state.load(Ordering::Relaxed) != stamp {
                continue;
            }
            let op = RecordedOp {
                thread,
                seq,
                invoke_ts,
                respond_ts: (stamp == 4 * seq + 4).then_some(respond_ts),
                kind: OpKind::from_bits(desc),
                requested: ((desc >> 4) & 0xF) as u8,
                outcome: Outcome::from_bits(desc >> 12),
                count: ((desc >> 8) & 0xF) as u8,
                vals,
            };
            // In-flight pops have no values yet regardless of the stale
            // count field from a previous generation... which cannot
            // happen: begin() rewrote desc with this generation's count.
            return if stamp == 4 * seq + 4 {
                SlotRead::Completed(op)
            } else {
                SlotRead::InFlight(op)
            };
        }
        SlotRead::NotYetStable
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// The recorder: one ring per participating thread, one global logical
/// clock, automatic thread→ring assignment.
pub struct OpRecorder {
    id: u64,
    clock: AtomicU64,
    rings: Box<[ThreadRing]>,
    next_ring: AtomicUsize,
}

thread_local! {
    // (recorder id, ring index) of the most recently used recorder —
    // the common case of one recorder per test hits this cache on every
    // op after the first.
    static RING_CACHE: std::cell::Cell<(u64, usize)> = const { std::cell::Cell::new((0, usize::MAX)) };
    static RING_MAP: std::cell::RefCell<std::collections::HashMap<u64, usize>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

impl OpRecorder {
    /// Creates a recorder for up to `threads` participating threads,
    /// each with a ring of `capacity_per_thread` slots (rounded up to at
    /// least 2).
    pub fn new(threads: usize, capacity_per_thread: usize) -> OpRecorder {
        assert!(threads >= 1);
        let cap = capacity_per_thread.max(2);
        OpRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            clock: AtomicU64::new(0),
            rings: (0..threads).map(|_| ThreadRing::new(cap)).collect(),
            next_ring: AtomicUsize::new(0),
        }
    }

    /// Number of rings (maximum participating threads).
    pub fn threads(&self) -> usize {
        self.rings.len()
    }

    /// Rings assigned to a thread so far.
    pub fn threads_used(&self) -> usize {
        self.next_ring.load(Ordering::Acquire).min(self.rings.len())
    }

    /// Slots per ring.
    pub fn capacity_per_thread(&self) -> usize {
        self.rings[0].slots.len()
    }

    /// The ring of thread index `t` (assigned order, not OS thread id).
    pub fn ring(&self, t: usize) -> &ThreadRing {
        &self.rings[t]
    }

    /// Current logical clock value: every operation invoked after this
    /// call observes a stamp `>=` the returned value (the safe-timestamp
    /// bound for online auditing).
    pub fn clock_now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    #[inline]
    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// This thread's ring index, assigned on first use.
    ///
    /// # Panics
    ///
    /// Panics when more distinct threads record than the recorder has
    /// rings.
    pub fn my_ring_index(&self) -> usize {
        let cached = RING_CACHE.with(|c| c.get());
        if cached.0 == self.id {
            return cached.1;
        }
        let idx = RING_MAP.with(|m| {
            let mut m = m.borrow_mut();
            match m.get(&self.id) {
                Some(&i) => i,
                None => {
                    let i = self.next_ring.fetch_add(1, Ordering::AcqRel);
                    assert!(
                        i < self.rings.len(),
                        "OpRecorder sized for {} threads; a {}th thread started recording",
                        self.rings.len(),
                        i + 1
                    );
                    m.insert(self.id, i);
                    i
                }
            }
        });
        RING_CACHE.with(|c| c.set((self.id, idx)));
        idx
    }

    /// Records an invocation on the calling thread's ring. Returns the
    /// per-thread sequence number. `input` carries the traced identities
    /// of pushed values (empty for pops); `requested` the batch size of
    /// batched pops.
    #[inline]
    pub fn begin(&self, kind: OpKind, requested: u8, input: &[u64]) -> u64 {
        let ring = &self.rings[self.my_ring_index()];
        let ts = self.stamp();
        ring.begin(ts, kind, requested, input)
    }

    /// Records the response of the calling thread's in-flight operation.
    /// `result` carries the traced identities of popped values (empty
    /// for pushes).
    #[inline]
    pub fn finish(&self, outcome: Outcome, result: &[u64]) {
        let ring = &self.rings[self.my_ring_index()];
        let ts = self.stamp();
        ring.finish(ts, outcome, result);
    }

    /// The last up-to-`k` operations of thread `t`, oldest first
    /// (concurrent-safe; skips slots that are mid-transition).
    pub fn tail(&self, t: usize, k: usize) -> Vec<RecordedOp> {
        let ring = &self.rings[t];
        let started = ring.started();
        let from = started.saturating_sub(k as u64);
        (from..started)
            .filter_map(|seq| match ring.read(t, seq) {
                SlotRead::Completed(op) | SlotRead::InFlight(op) => Some(op),
                _ => None,
            })
            .collect()
    }

    /// Multi-line dump of every ring's last `k` operations — the
    /// watchdog's diagnostic payload.
    pub fn dump_tails(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in 0..self.threads_used() {
            let _ = writeln!(out, "thread {t} (ops started: {}):", self.rings[t].started());
            for op in self.tail(t, k) {
                let _ = writeln!(out, "  {op}");
            }
        }
        if out.is_empty() {
            out.push_str("(no operations recorded)\n");
        }
        out
    }
}

impl std::fmt::Debug for OpRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpRecorder")
            .field("threads", &self.threads())
            .field("capacity_per_thread", &self.capacity_per_thread())
            .field("threads_used", &self.threads_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_read_back() {
        let rec = OpRecorder::new(1, 8);
        let s0 = rec.begin(OpKind::PushRight, 0, &[41]);
        rec.finish(Outcome::Okay, &[]);
        let s1 = rec.begin(OpKind::PopLeft, 0, &[]);
        rec.finish(Outcome::Okay, &[41]);
        assert_eq!((s0, s1), (0, 1));
        let SlotRead::Completed(a) = rec.ring(0).read(0, 0) else {
            panic!("op 0 must be complete");
        };
        assert_eq!(a.kind, OpKind::PushRight);
        assert_eq!(a.vals(), &[41]);
        assert_eq!(a.outcome, Outcome::Okay);
        let SlotRead::Completed(b) = rec.ring(0).read(0, 1) else {
            panic!("op 1 must be complete");
        };
        assert_eq!(b.kind, OpKind::PopLeft);
        assert_eq!(b.vals(), &[41]);
        assert!(a.invoke_ts < a.respond_ts.unwrap());
        assert!(a.respond_ts.unwrap() < b.invoke_ts);
    }

    #[test]
    fn in_flight_op_is_visible() {
        let rec = OpRecorder::new(1, 8);
        rec.begin(OpKind::PopRight, 0, &[]);
        match rec.ring(0).read(0, 0) {
            SlotRead::InFlight(op) => {
                assert_eq!(op.kind, OpKind::PopRight);
                assert_eq!(op.respond_ts, None);
                assert_eq!(op.outcome, Outcome::Pending);
            }
            other => panic!("expected in-flight, got {other:?}"),
        }
        rec.finish(Outcome::Empty, &[]);
        assert!(matches!(rec.ring(0).read(0, 0), SlotRead::Completed(_)));
    }

    #[test]
    fn wrapped_slot_reports_overwritten() {
        let rec = OpRecorder::new(1, 2);
        for i in 0..5u64 {
            rec.begin(OpKind::PushLeft, 0, &[i]);
            rec.finish(Outcome::Okay, &[]);
        }
        assert!(matches!(rec.ring(0).read(0, 0), SlotRead::Overwritten));
        assert!(matches!(rec.ring(0).read(0, 2), SlotRead::Overwritten));
        assert!(matches!(rec.ring(0).read(0, 3), SlotRead::Completed(_)));
        assert!(matches!(rec.ring(0).read(0, 4), SlotRead::Completed(_)));
        assert!(matches!(rec.ring(0).read(0, 5), SlotRead::NotYetStable));
    }

    #[test]
    fn batch_descriptor_roundtrip() {
        let rec = OpRecorder::new(1, 8);
        rec.begin(OpKind::PushRightN, 0, &[10, 11, 12]);
        rec.finish(Outcome::Okay, &[]);
        rec.begin(OpKind::PopLeftN, 3, &[]);
        rec.finish(Outcome::Okay, &[10, 11]);
        let SlotRead::Completed(push) = rec.ring(0).read(0, 0) else { panic!() };
        assert_eq!(push.vals(), &[10, 11, 12]);
        let SlotRead::Completed(pop) = rec.ring(0).read(0, 1) else { panic!() };
        assert_eq!(pop.requested, 3);
        assert_eq!(pop.vals(), &[10, 11]);
    }

    #[test]
    fn threads_get_distinct_rings_and_unique_stamps() {
        let rec = Arc::new(OpRecorder::new(4, 256));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        rec.begin(OpKind::PushRight, 0, &[i]);
                        rec.finish(Outcome::Okay, &[]);
                    }
                });
            }
        });
        assert_eq!(rec.threads_used(), 4);
        let mut stamps = Vec::new();
        for t in 0..4 {
            assert_eq!(rec.ring(t).started(), 200);
            for s in 0..200 {
                let SlotRead::Completed(op) = rec.ring(t).read(t, s) else {
                    panic!("thread {t} op {s} incomplete");
                };
                stamps.push(op.invoke_ts);
                stamps.push(op.respond_ts.unwrap());
            }
        }
        let n = stamps.len();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), n, "clock stamps must be unique");
    }

    #[test]
    fn concurrent_tail_reads_do_not_wedge_writers() {
        // A reader hammering the ring while the owner records; the
        // seqlock must keep both sides making progress and every read
        // either consistent or explicitly skipped.
        let rec = Arc::new(OpRecorder::new(1, 16));
        let writer = {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    rec.begin(OpKind::PushRight, 0, &[i + 1]);
                    rec.finish(Outcome::Okay, &[]);
                }
            })
        };
        let mut consistent = 0u64;
        // One guaranteed pass after the writer finishes (in release the
        // writer can complete all 20k ops before the first is_finished
        // poll, and the tail of completed ops must still read cleanly).
        loop {
            let done = writer.is_finished();
            for op in rec.tail(0, 8) {
                // A consistent snapshot never mixes generations: a
                // completed pushRight's value is its seq + 1.
                if op.respond_ts.is_some() {
                    assert_eq!(op.vals()[0], op.seq + 1, "torn read leaked through");
                    consistent += 1;
                }
            }
            if done {
                break;
            }
        }
        writer.join().unwrap();
        assert!(consistent > 0, "reader never observed a completed op");
    }

    #[test]
    #[should_panic(expected = "a 2th thread started recording")]
    fn too_many_threads_panics() {
        let rec = Arc::new(OpRecorder::new(1, 8));
        rec.begin(OpKind::PushRight, 0, &[1]);
        rec.finish(Outcome::Okay, &[]);
        let rec2 = rec.clone();
        let res = std::thread::spawn(move || {
            rec2.begin(OpKind::PushRight, 0, &[2]);
        })
        .join();
        std::panic::resume_unwind(res.unwrap_err());
    }

    #[test]
    fn dump_tails_renders() {
        let rec = OpRecorder::new(2, 8);
        rec.begin(OpKind::PushRightN, 0, &[1, 2]);
        rec.finish(Outcome::Okay, &[]);
        rec.begin(OpKind::PopLeft, 0, &[]);
        let dump = rec.dump_tails(8);
        assert!(dump.contains("pushRightN(1,2)"));
        assert!(dump.contains("IN-FLIGHT"));
    }
}
