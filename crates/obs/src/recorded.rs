//! The recording deque wrapper.
//!
//! [`Recorded<D>`] implements [`ConcurrentDeque`] by delegating to the
//! wrapped deque while logging every operation's invocation/response
//! interval, traced value identities, and outcome into an
//! [`OpRecorder`], plus wall-clock latency into per-kind
//! [`LogHistogram`]s. The hooks live entirely in this wrapper: deques
//! taken without it carry zero recording cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dcas_deque::{ConcurrentDeque, Full, TraceId, MAX_BATCH};

use crate::metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry};
use crate::recorder::{OpKind, OpRecorder, Outcome};

/// How the wrapper traces the batched (`*_n`) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchTracing {
    /// Record each batched call as its per-element expansion, invoking
    /// the inner deque's *single* push/pop once per element. Sound for
    /// **every** deque — including those whose batch methods are
    /// per-element loops ([`DummyListDeque`](dcas_deque::DummyListDeque),
    /// [`LfrcListDeque`](dcas_deque::LfrcListDeque)), where a
    /// multi-element op has no single linearization point to record.
    PerElement,
    /// Record batched calls in chunk-atomic units of up to
    /// [`MAX_BATCH`]: one trace entry per chunk, delegated to the inner
    /// deque's batch methods. Only sound for deques whose batch
    /// operations commit each ≤[`MAX_BATCH`] chunk at a single
    /// linearization point — the paper deques
    /// ([`ArrayDeque`](dcas_deque::ArrayDeque) with capacity ≥
    /// [`MAX_BATCH`], [`ListDeque`](dcas_deque::ListDeque)).
    Atomic,
}

/// Per-kind op counters and latency histograms for one wrapped deque.
#[derive(Debug, Default)]
pub struct OpMetrics {
    counts: [AtomicU64; 8],
    latency_ns: [LogHistogram; 8],
}

impl OpMetrics {
    #[inline]
    fn record(&self, kind: OpKind, elapsed_ns: u64) {
        self.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        self.latency_ns[kind as usize].record(elapsed_ns);
    }

    /// Snapshot of `(kind name, op count, latency histogram)` for every
    /// kind that ran at least once.
    pub fn snapshot(&self) -> Vec<(&'static str, u64, HistogramSnapshot)> {
        const KINDS: [OpKind; 8] = [
            OpKind::PushRight,
            OpKind::PushLeft,
            OpKind::PopRight,
            OpKind::PopLeft,
            OpKind::PushRightN,
            OpKind::PushLeftN,
            OpKind::PopRightN,
            OpKind::PopLeftN,
        ];
        KINDS
            .iter()
            .filter_map(|&k| {
                let c = self.counts[k as usize].load(Ordering::Relaxed);
                (c != 0).then(|| (k.name(), c, self.latency_ns[k as usize].snapshot()))
            })
            .collect()
    }

    /// Registers an `ops` counter section and one latency section per
    /// active op kind into `reg`.
    pub fn register_into(&self, reg: &mut MetricsRegistry) {
        let snap = self.snapshot();
        let counts: Vec<(&str, u64)> = snap.iter().map(|(k, c, _)| (*k, *c)).collect();
        reg.counters("ops", &counts);
        for (kind, _, hist) in &snap {
            reg.histogram(&format!("latency_ns/{kind}"), hist);
        }
    }
}

/// A deque wearing the observability layer: every operation is traced
/// into a lock-free ring recorder and timed into latency histograms.
///
/// The wrapper is itself a [`ConcurrentDeque`]; element types must
/// additionally implement [`TraceId`] so pushed/popped values can be
/// identified in the trace.
pub struct Recorded<D> {
    inner: D,
    rec: Arc<OpRecorder>,
    batch: BatchTracing,
    metrics: OpMetrics,
}

impl<D> Recorded<D> {
    /// Wraps `inner` with a fresh recorder sized for `threads`
    /// participating threads and `capacity_per_thread` trace slots each,
    /// tracing batched calls per element (sound for every deque — see
    /// [`BatchTracing`]).
    pub fn new(inner: D, threads: usize, capacity_per_thread: usize) -> Self {
        Self::with_batch_tracing(inner, threads, capacity_per_thread, BatchTracing::PerElement)
    }

    /// Like [`new`](Self::new), but traces batched calls as chunk-atomic
    /// multi-element operations. Only use with deques whose batch
    /// methods are chunk-atomic (see [`BatchTracing::Atomic`]).
    pub fn with_atomic_batches(inner: D, threads: usize, capacity_per_thread: usize) -> Self {
        Self::with_batch_tracing(inner, threads, capacity_per_thread, BatchTracing::Atomic)
    }

    /// Fully explicit constructor.
    pub fn with_batch_tracing(
        inner: D,
        threads: usize,
        capacity_per_thread: usize,
        batch: BatchTracing,
    ) -> Self {
        Recorded {
            inner,
            rec: Arc::new(OpRecorder::new(threads, capacity_per_thread)),
            batch,
            metrics: OpMetrics::default(),
        }
    }

    /// The trace recorder (clone the `Arc` to audit or dump from other
    /// threads).
    pub fn recorder(&self) -> &Arc<OpRecorder> {
        &self.rec
    }

    /// The wrapped deque.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The per-kind op counters and latency histograms.
    pub fn metrics(&self) -> &OpMetrics {
        &self.metrics
    }

    /// Unwraps the inner deque, dropping the recording layer.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: std::fmt::Debug> std::fmt::Debug for Recorded<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorded")
            .field("inner", &self.inner)
            .field("recorder", &self.rec)
            .field("batch", &self.batch)
            .finish()
    }
}

impl<D> Recorded<D> {
    #[inline]
    fn traced<R>(
        &self,
        kind: OpKind,
        requested: u8,
        input: &[u64],
        op: impl FnOnce() -> R,
        respond: impl FnOnce(&R) -> (Outcome, Vec<u64>),
    ) -> R {
        let t0 = Instant::now();
        self.rec.begin(kind, requested, input);
        let r = op();
        let (outcome, result) = respond(&r);
        self.rec.finish(outcome, &result);
        self.metrics.record(kind, t0.elapsed().as_nanos() as u64);
        r
    }
}

impl<T, D> ConcurrentDeque<T> for Recorded<D>
where
    T: TraceId + Send,
    D: ConcurrentDeque<T>,
{
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        let id = v.trace_id();
        self.traced(
            OpKind::PushRight,
            0,
            &[id],
            || self.inner.push_right(v),
            |r| (if r.is_ok() { Outcome::Okay } else { Outcome::Full }, Vec::new()),
        )
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        let id = v.trace_id();
        self.traced(
            OpKind::PushLeft,
            0,
            &[id],
            || self.inner.push_left(v),
            |r| (if r.is_ok() { Outcome::Okay } else { Outcome::Full }, Vec::new()),
        )
    }

    fn pop_right(&self) -> Option<T> {
        self.traced(
            OpKind::PopRight,
            0,
            &[],
            || self.inner.pop_right(),
            |r| match r {
                Some(v) => (Outcome::Okay, vec![v.trace_id()]),
                None => (Outcome::Empty, Vec::new()),
            },
        )
    }

    fn pop_left(&self) -> Option<T> {
        self.traced(
            OpKind::PopLeft,
            0,
            &[],
            || self.inner.pop_left(),
            |r| match r {
                Some(v) => (Outcome::Okay, vec![v.trace_id()]),
                None => (Outcome::Empty, Vec::new()),
            },
        )
    }

    fn impl_name(&self) -> &'static str {
        self.inner.impl_name()
    }

    fn push_right_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        match self.batch {
            BatchTracing::PerElement => {
                let mut it = vals.into_iter();
                while let Some(v) = it.next() {
                    if let Err(Full(v)) = self.push_right(v) {
                        let mut rest = vec![v];
                        rest.extend(it);
                        return Err(Full(rest));
                    }
                }
                Ok(())
            }
            BatchTracing::Atomic => {
                let mut it = vals.into_iter();
                loop {
                    let chunk: Vec<T> = it.by_ref().take(MAX_BATCH).collect();
                    if chunk.is_empty() {
                        return Ok(());
                    }
                    let mut ids = [0u64; MAX_BATCH];
                    for (i, v) in chunk.iter().enumerate() {
                        ids[i] = v.trace_id();
                    }
                    let n = chunk.len();
                    let res = self.traced(
                        OpKind::PushRightN,
                        0,
                        &ids[..n],
                        || self.inner.push_right_n(chunk),
                        |r| (if r.is_ok() { Outcome::Okay } else { Outcome::Full }, Vec::new()),
                    );
                    if let Err(Full(rest)) = res {
                        debug_assert_eq!(
                            rest.len(),
                            n,
                            "chunk-atomic push must reject all-or-nothing"
                        );
                        return Err(Full(rest.into_iter().chain(it).collect()));
                    }
                }
            }
        }
    }

    fn push_left_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        match self.batch {
            BatchTracing::PerElement => {
                let mut it = vals.into_iter();
                while let Some(v) = it.next() {
                    if let Err(Full(v)) = self.push_left(v) {
                        let mut rest = vec![v];
                        rest.extend(it);
                        return Err(Full(rest));
                    }
                }
                Ok(())
            }
            BatchTracing::Atomic => {
                let mut it = vals.into_iter();
                loop {
                    let chunk: Vec<T> = it.by_ref().take(MAX_BATCH).collect();
                    if chunk.is_empty() {
                        return Ok(());
                    }
                    let mut ids = [0u64; MAX_BATCH];
                    for (i, v) in chunk.iter().enumerate() {
                        ids[i] = v.trace_id();
                    }
                    let n = chunk.len();
                    let res = self.traced(
                        OpKind::PushLeftN,
                        0,
                        &ids[..n],
                        || self.inner.push_left_n(chunk),
                        |r| (if r.is_ok() { Outcome::Okay } else { Outcome::Full }, Vec::new()),
                    );
                    if let Err(Full(rest)) = res {
                        debug_assert_eq!(
                            rest.len(),
                            n,
                            "chunk-atomic push must reject all-or-nothing"
                        );
                        return Err(Full(rest.into_iter().chain(it).collect()));
                    }
                }
            }
        }
    }

    fn pop_right_n(&self, n: usize) -> Vec<T> {
        match self.batch {
            BatchTracing::PerElement => {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    match self.pop_right() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                out
            }
            BatchTracing::Atomic => {
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let k = (n - out.len()).min(MAX_BATCH);
                    let got = self.traced(
                        OpKind::PopRightN,
                        k as u8,
                        &[],
                        || self.inner.pop_right_n(k),
                        |r| (Outcome::Okay, r.iter().map(TraceId::trace_id).collect()),
                    );
                    let short = got.len() < k;
                    out.extend(got);
                    if short {
                        break;
                    }
                }
                out
            }
        }
    }

    fn pop_left_n(&self, n: usize) -> Vec<T> {
        match self.batch {
            BatchTracing::PerElement => {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    match self.pop_left() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                out
            }
            BatchTracing::Atomic => {
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let k = (n - out.len()).min(MAX_BATCH);
                    let got = self.traced(
                        OpKind::PopLeftN,
                        k as u8,
                        &[],
                        || self.inner.pop_left_n(k),
                        |r| (Outcome::Okay, r.iter().map(TraceId::trace_id).collect()),
                    );
                    let short = got.len() < k;
                    out.extend(got);
                    if short {
                        break;
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SlotRead;
    use dcas_deque::{ArrayDeque, ListDeque};

    #[test]
    fn single_ops_trace_values_and_outcomes() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 64);
        d.push_right(7).unwrap();
        d.push_left(8).unwrap();
        assert_eq!(d.pop_right(), Some(7));
        assert_eq!(d.pop_right(), Some(8));
        assert_eq!(d.pop_left(), None);
        let rec = d.recorder();
        let tail = rec.tail(0, 10);
        assert_eq!(tail.len(), 5);
        assert_eq!(tail[0].kind, OpKind::PushRight);
        assert_eq!(tail[0].vals(), &[7]);
        assert_eq!(tail[2].kind, OpKind::PopRight);
        assert_eq!(tail[2].vals(), &[7]);
        assert_eq!(tail[4].outcome, Outcome::Empty);
        let snap = d.metrics().snapshot();
        let total: u64 = snap.iter().map(|(_, c, _)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn full_bounded_push_traced() {
        let d: Recorded<ArrayDeque<u32>> = Recorded::new(ArrayDeque::new(1), 1, 16);
        d.push_right(1).unwrap();
        assert!(d.push_right(2).is_err());
        let SlotRead::Completed(op) = d.recorder().ring(0).read(0, 1) else { panic!() };
        assert_eq!(op.outcome, Outcome::Full);
    }

    #[test]
    fn atomic_batches_trace_chunks() {
        let d: Recorded<ListDeque<u32>> =
            Recorded::with_atomic_batches(ListDeque::new(), 1, 64);
        d.push_right_n((0..11u32).collect()).unwrap();
        let out = d.pop_left_n(11);
        assert_eq!(out, (0..11u32).collect::<Vec<_>>());
        let tail = d.recorder().tail(0, 16);
        // 11 pushes → chunks of 8+3; 11 pops → chunks of 8+3.
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].kind, OpKind::PushRightN);
        assert_eq!(tail[0].vals().len(), 8);
        assert_eq!(tail[1].vals().len(), 3);
        assert_eq!(tail[2].kind, OpKind::PopLeftN);
        assert_eq!(tail[2].vals(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(tail[3].vals(), &[8, 9, 10]);
    }

    #[test]
    fn per_element_batches_trace_singles() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 64);
        d.push_left_n(vec![1, 2, 3]).unwrap();
        assert_eq!(d.pop_right_n(5), vec![1, 2, 3]);
        let tail = d.recorder().tail(0, 16);
        // 3 single pushes + 3 single pops + 1 empty pop.
        assert_eq!(tail.len(), 7);
        assert!(tail[..3].iter().all(|op| op.kind == OpKind::PushLeft));
        assert!(tail[3..].iter().all(|op| op.kind == OpKind::PopRight));
        assert_eq!(tail[6].outcome, Outcome::Empty);
    }

    #[test]
    fn metrics_register_into_registry() {
        let d: Recorded<ListDeque<u32>> = Recorded::new(ListDeque::new(), 1, 16);
        d.push_right(1).unwrap();
        d.pop_left();
        let mut reg = MetricsRegistry::new();
        d.metrics().register_into(&mut reg);
        let json = reg.to_json();
        assert!(json.contains("\"pushRight\": 1"));
        assert!(json.contains("latency_ns/popLeft"));
    }
}
