//! Baseline deque implementations the paper's algorithms are measured
//! against.
//!
//! * [`MutexDeque`] / [`SpinDeque`] — `VecDeque` behind a `parking_lot`
//!   mutex / a test-and-test-and-set spinlock: the blocking comparators.
//! * [`AbpDeque`] — the CAS-only work-stealing deque of Arora, Blumofe &
//!   Plaxton (the paper's reference \[4\]): one end restricted to a single
//!   owner, the other to pops only. The paper cites it as the elegant
//!   special case its general deques relax.
//! * [`GreenwaldDeque`] — a deque in the style of Greenwald's first
//!   algorithm (PhD thesis pp. 196–197, discussed in the paper's
//!   Section 1.1): both end indices packed into **one** memory word, so a
//!   two-word DCAS acts like a three-word operation. It is correct, but
//!   every operation — on either end — contends on the shared index word,
//!   which is precisely the drawback the paper's algorithms remove
//!   (bench `e8_greenwald` quantifies it).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod abp;
pub mod greenwald;
pub mod locked;

pub use abp::{AbpDeque, Steal};
pub use greenwald::{GreenwaldDeque, RawGreenwaldDeque};
pub use locked::{MutexDeque, SpinDeque};
