//! A deque in the style of Greenwald's first DCAS algorithm.
//!
//! Section 1.1 of the paper critiques Greenwald's array deque (pages
//! 196–197 of his PhD thesis): it keeps **both** end pointers in a single
//! memory word and DCASes on that word plus a value cell, "using the
//! two-word DCAS as if it were a three-word operation". The paper notes
//! two consequences: the index range is cut to a fraction of a word, and
//! — the important one — **concurrent access to the two deque ends is
//! impossible**, because every operation on either end must CAS the same
//! index word.
//!
//! This module reproduces that design point as a baseline: `(l, r, count)`
//! are packed into one word (20 bits each — the range reduction the paper
//! mentions), every operation DCASes `(indices, cell)`, and boundary
//! detection is trivial because one atomic read yields both ends. Bench
//! `e8_greenwald` measures the two-ends scalability gap against the
//! paper's algorithm.

use std::marker::PhantomData;

use crossbeam_utils::CachePadded;
use dcas::{Backoff, DcasStrategy, DcasWord, HarrisMcas};
use dcas_deque::reserved::NULL;
use dcas_deque::value::{Boxed, WordValue};
use dcas_deque::{ConcurrentDeque, Full};

const FIELD_BITS: u32 = 20;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;

/// Maximum capacity imposed by the packed index encoding.
pub const MAX_CAPACITY: usize = (FIELD_MASK as usize) - 1;

#[inline]
fn enc(l: usize, r: usize, count: usize) -> u64 {
    debug_assert!(l as u64 <= FIELD_MASK && r as u64 <= FIELD_MASK && count as u64 <= FIELD_MASK);
    (((l as u64) << (2 * FIELD_BITS)) | ((r as u64) << FIELD_BITS) | count as u64) << 2
}

#[inline]
fn dec(w: u64) -> (usize, usize, usize) {
    let w = w >> 2;
    (
        ((w >> (2 * FIELD_BITS)) & FIELD_MASK) as usize,
        ((w >> FIELD_BITS) & FIELD_MASK) as usize,
        (w & FIELD_MASK) as usize,
    )
}

/// Word-level Greenwald-style deque; use [`GreenwaldDeque`] for arbitrary
/// element types.
pub struct RawGreenwaldDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    /// `(L, R, count)` packed into one word — the design the paper
    /// critiques.
    lr: CachePadded<DcasWord>,
    slots: Box<[DcasWord]>,
    _marker: PhantomData<fn(V) -> V>,
}

impl<V: WordValue, S: DcasStrategy> RawGreenwaldDeque<V, S> {
    /// Creates a deque with capacity `length`.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0` or `length > MAX_CAPACITY`.
    pub fn new(length: usize) -> Self {
        assert!(length >= 1, "capacity must be at least 1");
        assert!(length <= MAX_CAPACITY, "packed indices limit capacity to {MAX_CAPACITY}");
        RawGreenwaldDeque {
            strategy: S::default(),
            lr: CachePadded::new(DcasWord::new(enc(0, 1 % length, 0))),
            slots: (0..length).map(|_| DcasWord::new(NULL)).collect(),
            _marker: PhantomData,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The DCAS strategy instance (for [`dcas::Counting`] statistics).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    #[inline]
    fn add1(&self, i: usize) -> usize {
        (i + 1) % self.slots.len()
    }

    #[inline]
    fn sub1(&self, i: usize) -> usize {
        (i + self.slots.len() - 1) % self.slots.len()
    }

    /// Pushes at the right end.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        let val = v.encode();
        let mut backoff = Backoff::new();
        loop {
            let old = self.strategy.load(&self.lr);
            let (l, r, count) = dec(old);
            if count == self.slots.len() {
                // One atomic read of the packed word suffices to decide
                // fullness — Greenwald's advantage.
                // SAFETY: `val` encoded above, unconsumed.
                return Err(Full(unsafe { V::decode(val) }));
            }
            let new = enc(l, self.add1(r), count + 1);
            if self.strategy.dcas(&self.lr, &self.slots[r], old, NULL, new, val) {
                return Ok(());
            }
            backoff.snooze();
        }
    }

    /// Pushes at the left end.
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let val = v.encode();
        let mut backoff = Backoff::new();
        loop {
            let old = self.strategy.load(&self.lr);
            let (l, r, count) = dec(old);
            if count == self.slots.len() {
                // SAFETY: as above.
                return Err(Full(unsafe { V::decode(val) }));
            }
            let new = enc(self.sub1(l), r, count + 1);
            if self.strategy.dcas(&self.lr, &self.slots[l], old, NULL, new, val) {
                return Ok(());
            }
            backoff.snooze();
        }
    }

    /// Pops from the right end.
    pub fn pop_right(&self) -> Option<V> {
        let mut backoff = Backoff::new();
        loop {
            let old = self.strategy.load(&self.lr);
            let (l, r, count) = dec(old);
            if count == 0 {
                return None;
            }
            let slot = self.sub1(r);
            let old_s = self.strategy.load(&self.slots[slot]);
            if old_s == NULL {
                backoff.snooze(); // torn view; the DCAS would fail anyway
                continue;
            }
            let new = enc(l, slot, count - 1);
            if self.strategy.dcas(&self.lr, &self.slots[slot], old, old_s, new, NULL) {
                // SAFETY: successful DCAS transfers ownership.
                return Some(unsafe { V::decode(old_s) });
            }
            backoff.snooze();
        }
    }

    /// Pops from the left end.
    pub fn pop_left(&self) -> Option<V> {
        let mut backoff = Backoff::new();
        loop {
            let old = self.strategy.load(&self.lr);
            let (l, r, count) = dec(old);
            if count == 0 {
                return None;
            }
            let slot = self.add1(l);
            let old_s = self.strategy.load(&self.slots[slot]);
            if old_s == NULL {
                backoff.snooze();
                continue;
            }
            let new = enc(slot, r, count - 1);
            if self.strategy.dcas(&self.lr, &self.slots[slot], old, old_s, new, NULL) {
                // SAFETY: as above.
                return Some(unsafe { V::decode(old_s) });
            }
            backoff.snooze();
        }
    }

    /// Quiescent element count.
    pub fn len_quiescent(&self) -> usize {
        dec(self.strategy.load(&self.lr)).2
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawGreenwaldDeque<V, S> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let w = slot.unsync_load();
            if w != NULL {
                // SAFETY: exclusive access; slot holds an unconsumed value.
                unsafe { V::drop_encoded(w) };
            }
        }
    }
}

/// Typed Greenwald-style bounded deque (heap-boxed elements).
pub struct GreenwaldDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawGreenwaldDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> GreenwaldDeque<T, S> {
    /// Creates a deque with capacity `length`.
    pub fn new(length: usize) -> Self {
        GreenwaldDeque { raw: RawGreenwaldDeque::new(length) }
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for GreenwaldDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw.push_right(Boxed::new(v)).map_err(|Full(b)| Full(b.into_inner()))
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw.push_left(Boxed::new(v)).map_err(|Full(b)| Full(b.into_inner()))
    }

    fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }

    fn impl_name(&self) -> &'static str {
        "greenwald-one-word"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcas::{GlobalLock, GlobalSeqLock};

    #[test]
    fn encoding_roundtrip() {
        for (l, r, c) in [(0, 1, 0), (5, 5, 3), (1_000_000, 999_999, 1_000_000)] {
            assert_eq!(dec(enc(l, r, c)), (l, r, c));
        }
    }

    #[test]
    fn paper_running_example() {
        let d = RawGreenwaldDeque::<u32, GlobalSeqLock>::new(8);
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        d.push_right(3).unwrap();
        assert_eq!(d.pop_left(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_left(), Some(3));
        assert_eq!(d.pop_left(), None);
    }

    #[test]
    fn full_and_empty_boundaries() {
        let d = RawGreenwaldDeque::<u32, GlobalLock>::new(2);
        assert_eq!(d.pop_right(), None);
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        assert!(d.push_right(3).is_err());
        assert!(d.push_left(3).is_err());
        assert_eq!(d.pop_right(), Some(1));
        assert_eq!(d.pop_right(), Some(2));
        assert_eq!(d.pop_right(), None);
    }

    #[test]
    fn wraparound() {
        let d = RawGreenwaldDeque::<u32, GlobalSeqLock>::new(3);
        d.push_right(0).unwrap();
        d.push_right(1).unwrap();
        for i in 2..50 {
            d.push_right(i).unwrap();
            assert_eq!(d.pop_left(), Some(i - 2));
        }
    }

    #[test]
    fn typed_wrapper() {
        let d: GreenwaldDeque<String, GlobalLock> = GreenwaldDeque::new(4);
        d.push_left("x".into()).unwrap();
        assert_eq!(d.pop_right().as_deref(), Some("x"));
    }

    #[test]
    fn capacity_validation() {
        assert!(std::panic::catch_unwind(|| RawGreenwaldDeque::<u32, GlobalLock>::new(0)).is_err());
    }
}
