//! Lock-based baseline deques.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use dcas_deque::{ConcurrentDeque, Full};
use parking_lot::Mutex;

/// `VecDeque` behind a `parking_lot::Mutex`: the conventional blocking
/// implementation every non-blocking claim is measured against.
pub struct MutexDeque<T> {
    capacity: Option<usize>,
    inner: Mutex<VecDeque<T>>,
}

impl<T> MutexDeque<T> {
    /// Unbounded variant.
    pub fn new() -> Self {
        MutexDeque { capacity: None, inner: Mutex::new(VecDeque::new()) }
    }

    /// Bounded variant with capacity `length` (for apples-to-apples
    /// comparison with the array deque).
    pub fn bounded(length: usize) -> Self {
        assert!(length >= 1);
        MutexDeque { capacity: Some(length), inner: Mutex::new(VecDeque::with_capacity(length)) }
    }
}

impl<T> Default for MutexDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentDeque<T> for MutexDeque<T> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        let mut g = self.inner.lock();
        if self.capacity.is_some_and(|c| g.len() == c) {
            return Err(Full(v));
        }
        g.push_back(v);
        Ok(())
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        let mut g = self.inner.lock();
        if self.capacity.is_some_and(|c| g.len() == c) {
            return Err(Full(v));
        }
        g.push_front(v);
        Ok(())
    }

    fn pop_right(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    fn pop_left(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    fn impl_name(&self) -> &'static str {
        "mutex-vecdeque"
    }
}

/// A test-and-test-and-set spinlock, the cheapest blocking protection for
/// short critical sections (no OS parking machinery).
struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    const fn new() -> Self {
        SpinLock { locked: AtomicBool::new(false) }
    }

    #[inline]
    fn lock(&self) {
        let mut backoff = dcas::Backoff::new();
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Test-and-test-and-set: wait on the cheap load, with
            // exponential backoff so waiters stop hammering the line (and
            // eventually yield, which matters when the holder is
            // preempted on an oversubscribed box).
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// `VecDeque` behind a spinlock: the best-case blocking baseline for
/// short, uncontended critical sections.
pub struct SpinDeque<T> {
    capacity: Option<usize>,
    lock: SpinLock,
    inner: std::cell::UnsafeCell<VecDeque<T>>,
}

// SAFETY: the UnsafeCell is only accessed while holding `lock`.
unsafe impl<T: Send> Send for SpinDeque<T> {}
unsafe impl<T: Send> Sync for SpinDeque<T> {}

impl<T> SpinDeque<T> {
    /// Unbounded variant.
    pub fn new() -> Self {
        SpinDeque {
            capacity: None,
            lock: SpinLock::new(),
            inner: std::cell::UnsafeCell::new(VecDeque::new()),
        }
    }

    /// Bounded variant with capacity `length`.
    pub fn bounded(length: usize) -> Self {
        assert!(length >= 1);
        SpinDeque {
            capacity: Some(length),
            lock: SpinLock::new(),
            inner: std::cell::UnsafeCell::new(VecDeque::with_capacity(length)),
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        self.lock.lock();
        // SAFETY: lock held; unique access.
        let r = f(unsafe { &mut *self.inner.get() });
        self.lock.unlock();
        r
    }
}

impl<T> Default for SpinDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> ConcurrentDeque<T> for SpinDeque<T> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        let cap = self.capacity;
        self.with(|d| {
            if cap.is_some_and(|c| d.len() == c) {
                Err(Full(v))
            } else {
                d.push_back(v);
                Ok(())
            }
        })
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        let cap = self.capacity;
        self.with(|d| {
            if cap.is_some_and(|c| d.len() == c) {
                Err(Full(v))
            } else {
                d.push_front(v);
                Ok(())
            }
        })
    }

    fn pop_right(&self) -> Option<T> {
        self.with(|d| d.pop_back())
    }

    fn pop_left(&self) -> Option<T> {
        self.with(|d| d.pop_front())
    }

    fn impl_name(&self) -> &'static str {
        "spin-vecdeque"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<D: ConcurrentDeque<u64>>(d: &D, bounded_at: Option<usize>) {
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        d.push_right(3).unwrap();
        if let Some(cap) = bounded_at {
            assert_eq!(cap, 3);
            assert_eq!(d.push_right(4).unwrap_err().into_inner(), 4);
        }
        assert_eq!(d.pop_left(), Some(2));
        assert_eq!(d.pop_right(), Some(3));
        assert_eq!(d.pop_right(), Some(1));
        assert_eq!(d.pop_right(), None);
        assert_eq!(d.pop_left(), None);
    }

    #[test]
    fn mutex_deque_semantics() {
        exercise(&MutexDeque::new(), None);
        exercise(&MutexDeque::bounded(3), Some(3));
    }

    #[test]
    fn spin_deque_semantics() {
        exercise(&SpinDeque::new(), None);
        exercise(&SpinDeque::bounded(3), Some(3));
    }

    #[test]
    fn spin_deque_concurrent_sum() {
        use std::sync::Arc;
        let d = Arc::new(SpinDeque::new());
        let mut handles = vec![];
        for t in 0..4u64 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                let mut popped = 0u64;
                for i in 0..10_000u64 {
                    d.push_right(t * 10_000 + i).unwrap();
                    if i % 2 == 0 {
                        if let Some(v) = d.pop_left() {
                            popped += v;
                        }
                    }
                }
                popped
            }));
        }
        let mut total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        while let Some(v) = d.pop_left() {
            total += v;
        }
        let expect: u64 = (0..40_000u64).sum();
        assert_eq!(total, expect);
    }
}
