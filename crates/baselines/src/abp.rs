//! The Arora–Blumofe–Plaxton CAS-only work-stealing deque.
//!
//! Reference \[4\] of the paper (*Thread scheduling for multiprogrammed
//! multiprocessors*, SPAA 1998). The paper describes it as "an elegant
//! CAS-based deque with applications in job-stealing algorithms" in which
//! "one side of the deque is accessed by only a single processor, and the
//! other side allows only pop operations" — restrictions the DCAS deques
//! remove. We implement it as the CAS-only baseline for the work-stealing
//! benchmark (E6).
//!
//! The implementation follows the original pseudocode: a bounded array, a
//! `bot` index only the owner moves, and an `age` word packing `(tag,
//! top)` so that the thieves' CAS is ABA-safe across the owner's resets.
//!
//! Values are machine words (use the [`dcas_deque::value::WordValue`]
//! encodings for richer types); slots are atomic so a racing thief never
//! performs a torn read.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retry elsewhere.
    Abort,
    /// Stole a value.
    Success(u64),
}

#[inline]
fn pack_age(tag: u32, top: u32) -> u64 {
    ((tag as u64) << 32) | top as u64
}

#[inline]
fn age_top(age: u64) -> u32 {
    age as u32
}

#[inline]
fn age_tag(age: u64) -> u32 {
    (age >> 32) as u32
}

/// The ABP deque. The *bottom* end is owner-only (`push_bottom`,
/// `pop_bottom`); the *top* end supports only [`steal`](AbpDeque::steal).
pub struct AbpDeque {
    /// `(tag, top)` in one CAS-able word.
    age: CachePadded<AtomicU64>,
    /// Next free bottom slot; written only by the owner.
    bot: CachePadded<AtomicUsize>,
    deck: Box<[AtomicU64]>,
}

impl AbpDeque {
    /// Creates a deque with capacity `length`.
    pub fn new(length: usize) -> Self {
        assert!(length >= 1);
        AbpDeque {
            age: CachePadded::new(AtomicU64::new(0)),
            bot: CachePadded::new(AtomicUsize::new(0)),
            deck: (0..length).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.deck.len()
    }

    /// Owner-only: pushes `v` at the bottom. Returns `false` if the array
    /// is exhausted.
    pub fn push_bottom(&self, v: u64) -> bool {
        let b = self.bot.load(Ordering::Relaxed);
        if b == self.deck.len() {
            return false;
        }
        self.deck[b].store(v, Ordering::Relaxed);
        // Publish the slot before advancing bot (release pairs with the
        // thieves' acquire of bot).
        self.bot.store(b + 1, Ordering::Release);
        true
    }

    /// Owner-only: pops from the bottom.
    pub fn pop_bottom(&self) -> Option<u64> {
        let b = self.bot.load(Ordering::Relaxed);
        if b == 0 {
            return None;
        }
        let b = b - 1;
        self.bot.store(b, Ordering::SeqCst);
        let v = self.deck[b].load(Ordering::SeqCst);
        let old_age = self.age.load(Ordering::SeqCst);
        if b > age_top(old_age) as usize {
            return Some(v);
        }
        // The popped slot is also the top: race the thieves.
        self.bot.store(0, Ordering::SeqCst);
        let new_age = pack_age(age_tag(old_age).wrapping_add(1), 0);
        if b == age_top(old_age) as usize
            && self
                .age
                .compare_exchange(old_age, new_age, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return Some(v);
        }
        // A thief got it; reset for the next epoch.
        self.age.store(new_age, Ordering::SeqCst);
        None
    }

    /// Any thread: attempts to steal from the top.
    pub fn steal(&self) -> Steal {
        let old_age = self.age.load(Ordering::SeqCst);
        let b = self.bot.load(Ordering::Acquire);
        let top = age_top(old_age) as usize;
        if b <= top {
            return Steal::Empty;
        }
        let v = self.deck[top].load(Ordering::SeqCst);
        let new_age = pack_age(age_tag(old_age), age_top(old_age) + 1);
        if self
            .age
            .compare_exchange(old_age, new_age, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            Steal::Success(v)
        } else {
            Steal::Abort
        }
    }

    /// Observed size (racy; diagnostic only).
    pub fn len_approx(&self) -> usize {
        let b = self.bot.load(Ordering::Relaxed);
        let t = age_top(self.age.load(Ordering::Relaxed)) as usize;
        b.saturating_sub(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_lifo() {
        let d = AbpDeque::new(16);
        for i in 1..=5 {
            assert!(d.push_bottom(i * 4));
        }
        for i in (1..=5).rev() {
            assert_eq!(d.pop_bottom(), Some(i * 4));
        }
        assert_eq!(d.pop_bottom(), None);
    }

    #[test]
    fn thief_fifo() {
        let d = AbpDeque::new(16);
        for i in 1..=5 {
            assert!(d.push_bottom(i * 4));
        }
        for i in 1..=5 {
            assert_eq!(d.steal(), Steal::Success(i * 4));
        }
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_limit() {
        let d = AbpDeque::new(2);
        assert!(d.push_bottom(4));
        assert!(d.push_bottom(8));
        assert!(!d.push_bottom(12));
    }

    #[test]
    fn owner_and_thief_race_for_last() {
        // After the owner drains, steal sees empty; after thieves drain,
        // owner sees empty.
        let d = AbpDeque::new(4);
        d.push_bottom(4);
        assert_eq!(d.pop_bottom(), Some(4));
        assert_eq!(d.steal(), Steal::Empty);
        d.push_bottom(8);
        assert_eq!(d.steal(), Steal::Success(8));
        assert_eq!(d.pop_bottom(), None);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        const N: u64 = 50_000;
        let d = Arc::new(AbpDeque::new(N as usize));
        let seen = Arc::new((0..N).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut thieves = vec![];
        for _ in 0..3 {
            let (d, seen, stop) = (d.clone(), seen.clone(), stop.clone());
            thieves.push(std::thread::spawn(move || {
                let mut backoff = dcas::Backoff::new();
                loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[(v / 4) as usize].fetch_add(1, Ordering::SeqCst);
                            backoff.reset();
                        }
                        Steal::Empty if stop.load(Ordering::SeqCst) => return,
                        _ => backoff.snooze(),
                    }
                }
            }));
        }

        // Owner: pushes everything, popping a few along the way.
        for i in 0..N {
            let mut backoff = dcas::Backoff::new();
            while !d.push_bottom(i * 4) {
                backoff.snooze();
            }
            if i % 7 == 0 {
                if let Some(v) = d.pop_bottom() {
                    seen[(v / 4) as usize].fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while let Some(v) = d.pop_bottom() {
            seen[(v / 4) as usize].fetch_add(1, Ordering::SeqCst);
        }
        stop.store(true, Ordering::SeqCst);
        for t in thieves {
            t.join().unwrap();
        }
        // Drain any residue after thieves halted.
        while let Some(v) = d.pop_bottom() {
            seen[(v / 4) as usize].fetch_add(1, Ordering::SeqCst);
        }
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "value {i} seen wrong number of times");
        }
    }
}
