//! Sharded job broker over the DCAS deques — the ROADMAP item-2
//! "millions of users" layer.
//!
//! A [`ShardedBroker<T, S>`] fans one produce/consume API across N
//! deque shards (N defaults to [`default_shards`], i.e.
//! `available_parallelism`). Each shard is anything implementing
//! [`BrokerShard`]: the paper's unbounded list deque, the bounded array
//! deque (whose capacity surfaces as typed [`Backpressure`]), a
//! `Recorded<_>` wrapper for audited runs, or the two-level tiered
//! Chase–Lev deque for single-owner-per-shard ingestion.
//!
//! The moving parts, each reusing a prior PR's machinery:
//!
//! * **Routing** — [`Producer::send_keyed`] Fibonacci-hashes the key
//!   over the shard count (multiply-shift by 2⁶⁴/φ, so consecutive keys
//!   scatter); [`Producer::send`] round-robins from a per-producer
//!   cursor. Dead shards are probed past.
//! * **Batching** — producers buffer up to [`MAX_BATCH`] values per
//!   shard and hand them over with one chunk-atomic `push_right_n`
//!   CASN (the PR 2 batched ops), one descriptor per 8 values.
//! * **Rebalance** — consumers drain their home shard first and then
//!   scan the others with batch `consume_batch` (the `steal_half`
//!   discipline on tiered shards, with its provenance counters
//!   surfaced in [`BrokerStats`]).
//! * **Backpressure** — a bounded shard's rejected tail comes back as
//!   [`Backpressure`] carrying the values; `*_blocking` variants retry
//!   under the adaptive [`Backoff`] from PR 1.
//! * **Shard death** — every shard call is panic-guarded. A panic (in
//!   anger: the PR 3 fault-injection kill) marks the shard dead,
//!   drains its contents through the thief-safe consume path plus the
//!   death-flush, and republishes them on the survivors; the broker
//!   keeps serving on the remaining shards. Consumers keep scanning
//!   dead shards (take-only) so no value can strand.
//!
//! Cross-shard ordering is unspecified — the classic sharding
//! trade-off. Each individual shard serves FIFO (and a keyed stream
//! stays on one shard, so per-key order holds while the shard lives).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use dcas::{Backoff, HarrisMcas};
use dcas_deque::{ArrayDeque, ListDeque, MAX_BATCH};

pub mod shard;

pub use shard::{BrokerShard, FlatShard, TieredShard};

/// 2⁶⁴ / φ — the Fibonacci hashing multiplier. Multiplying a key and
/// taking the high bits scatters consecutive keys maximally evenly
/// across shards (Knuth vol. 3 §6.4).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default shard count: `available_parallelism`, or 1 when the host
/// will not say.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A bounded broker rejected these values: every value the caller
/// tried to hand over that did not fit, in order. Nothing is dropped —
/// re-offer them (e.g. via [`Producer::send_blocking`]) or shed them
/// deliberately.
pub struct Backpressure<T>(pub Vec<T>);

impl<T> Backpressure<T> {
    /// The rejected values, in the order they were offered.
    pub fn into_inner(self) -> Vec<T> {
        self.0
    }

    /// How many values were rejected.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the rejection carried no values (possible when a shard
    /// died mid-handoff and the in-flight values were rescued).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<T> std::fmt::Debug for Backpressure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Backpressure({} values)", self.0.len())
    }
}

impl<T> std::fmt::Display for Backpressure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broker backpressure: {} values rejected", self.0.len())
    }
}

/// Relaxed operation counters, one cache line each where it matters.
/// Informational — conservation proofs count actual values, not these.
#[derive(Default)]
struct BrokerCounters {
    sent: AtomicU64,
    sent_batches: AtomicU64,
    backpressure_events: AtomicU64,
    received: AtomicU64,
    recv_home: AtomicU64,
    recv_rebalanced: AtomicU64,
    requeued: AtomicU64,
    shard_deaths: AtomicU64,
    rescued: AtomicU64,
}

/// Snapshot of the broker's counters plus aggregate steal provenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokerStats {
    /// Values accepted by `send`/`send_keyed` (including still-buffered).
    pub sent: u64,
    /// Chunk-atomic batches handed to shards.
    pub sent_batches: u64,
    /// Backpressure rejections surfaced to producers.
    pub backpressure_events: u64,
    /// Values returned to consumers.
    pub received: u64,
    /// Values pulled from consumers' home shards.
    pub recv_home: u64,
    /// Values pulled while rebalancing from other shards.
    pub recv_rebalanced: u64,
    /// Values put back at the front of the line.
    pub requeued: u64,
    /// Shards marked dead (panic or [`ShardedBroker::kill_shard`]).
    pub shard_deaths: u64,
    /// Values drained from dead shards and republished on survivors.
    pub rescued: u64,
    /// Steal provenance summed over shards: values consumers took from
    /// owner-private tiers vs shared levels (tiered shards only).
    pub tier_steals_private: u64,
    /// See [`tier_steals_private`](Self::tier_steals_private).
    pub tier_steals_shared: u64,
}

impl BrokerStats {
    /// `(name, value)` pairs for metrics export, mirroring
    /// `SchedStats::fields`.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("sent", self.sent),
            ("sent_batches", self.sent_batches),
            ("backpressure_events", self.backpressure_events),
            ("received", self.received),
            ("recv_home", self.recv_home),
            ("recv_rebalanced", self.recv_rebalanced),
            ("requeued", self.requeued),
            ("shard_deaths", self.shard_deaths),
            ("rescued", self.rescued),
            ("tier_steals_private", self.tier_steals_private),
            ("tier_steals_shared", self.tier_steals_shared),
        ]
    }
}

struct Slot<S> {
    inner: S,
    alive: AtomicBool,
}

/// N deque shards behind one produce/consume API. See the crate docs
/// for the architecture; see [`Producer`] / [`Consumer`] for the
/// per-thread handles.
pub struct ShardedBroker<T: Send, S: BrokerShard<T>> {
    shards: Vec<CachePadded<Slot<S>>>,
    alive_count: AtomicUsize,
    /// Producers bound so far — exclusive shards admit one each.
    producers_bound: AtomicUsize,
    consumers_bound: AtomicUsize,
    counters: BrokerCounters,
    _values: PhantomData<fn(T) -> T>,
}

impl<T: Send, S: BrokerShard<T>> ShardedBroker<T, S> {
    /// A broker over `n` shards built by `factory(shard_index)`.
    /// `n == 0` is rounded up to one shard.
    pub fn with_shards(n: usize, mut factory: impl FnMut(usize) -> S) -> Self {
        let n = n.max(1);
        ShardedBroker {
            shards: (0..n)
                .map(|i| {
                    CachePadded::new(Slot {
                        inner: factory(i),
                        alive: AtomicBool::new(true),
                    })
                })
                .collect(),
            alive_count: AtomicUsize::new(n),
            producers_bound: AtomicUsize::new(0),
            consumers_bound: AtomicUsize::new(0),
            counters: BrokerCounters::default(),
            _values: PhantomData,
        }
    }

    /// Total shard count (alive and dead).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards still serving.
    pub fn alive_shards(&self) -> usize {
        self.alive_count.load(Ordering::Acquire)
    }

    /// Whether shard `i` is still alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.shards[i].alive.load(Ordering::Acquire)
    }

    /// Direct access to a shard (e.g. to read a `Recorded` shard's
    /// recorder). Respect the shard's own safety contract — in
    /// particular the owner-only produce side of exclusive shards.
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i].inner
    }

    /// Counter snapshot plus per-shard steal provenance.
    pub fn stats(&self) -> BrokerStats {
        let c = &self.counters;
        let (mut tp, mut ts) = (0, 0);
        for s in &self.shards {
            let (p, sh) = s.inner.steal_provenance();
            tp += p;
            ts += sh;
        }
        BrokerStats {
            sent: c.sent.load(Ordering::Relaxed),
            sent_batches: c.sent_batches.load(Ordering::Relaxed),
            backpressure_events: c.backpressure_events.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            recv_home: c.recv_home.load(Ordering::Relaxed),
            recv_rebalanced: c.recv_rebalanced.load(Ordering::Relaxed),
            requeued: c.requeued.load(Ordering::Relaxed),
            shard_deaths: c.shard_deaths.load(Ordering::Relaxed),
            rescued: c.rescued.load(Ordering::Relaxed),
            tier_steals_private: tp,
            tier_steals_shared: ts,
        }
    }

    /// A producer handle. Panics for exclusive shard types (e.g.
    /// [`TieredShard`]) once every shard already has its producer —
    /// those brokers support exactly `num_shards` producers, each bound
    /// to (and owning the push side of) its own shard.
    pub fn producer(&self) -> Producer<'_, T, S> {
        let idx = self.producers_bound.fetch_add(1, Ordering::AcqRel);
        if S::PRODUCER_EXCLUSIVE {
            assert!(
                idx < self.shards.len(),
                "exclusive shards admit one producer each: {} producers \
                 already bound to {} shards",
                idx,
                self.shards.len()
            );
        }
        Producer {
            broker: self,
            bufs: (0..self.shards.len()).map(|_| Vec::new()).collect(),
            home: idx % self.shards.len(),
            cursor: idx % self.shards.len(),
        }
    }

    /// A consumer handle. Consumers stagger their home shards
    /// round-robin in binding order.
    pub fn consumer(&self) -> Consumer<'_, T, S> {
        let idx = self.consumers_bound.fetch_add(1, Ordering::AcqRel);
        let home = idx % self.shards.len();
        Consumer {
            broker: self,
            stash: VecDeque::new(),
            home,
            scan: home,
            last: home,
        }
    }

    /// Fibonacci-hash `key` to a shard index.
    fn route(&self, key: u64) -> usize {
        let h = key.wrapping_mul(FIB);
        (((h as u128) * (self.shards.len() as u128)) >> 64) as usize
    }

    /// First alive shard at or after `from` (wrapping); `from` itself
    /// when none are alive — a dead shard still stores values, and
    /// consumers still drain it.
    fn next_alive(&self, from: usize) -> usize {
        let n = self.shards.len();
        for k in 0..n {
            let i = (from + k) % n;
            if self.shards[i].alive.load(Ordering::Acquire) {
                return i;
            }
        }
        from % n
    }

    /// Runs `f` against shard `i`, converting a panic into shard death
    /// plus rescue. `None` means the shard just died under this call.
    fn guarded<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> Option<R> {
        match catch_unwind(AssertUnwindSafe(|| f(&self.shards[i].inner))) {
            Ok(r) => Some(r),
            Err(_) => {
                self.on_shard_panic(i);
                None
            }
        }
    }

    fn on_shard_panic(&self, i: usize) {
        if self.mark_dead(i) {
            self.rescue(i);
        }
    }

    /// Marks shard `i` dead; returns whether this call did the
    /// transition (the transitioning thread owns the rescue).
    fn mark_dead(&self, i: usize) -> bool {
        let was_alive = self.shards[i].alive.swap(false, Ordering::AcqRel);
        if was_alive {
            self.alive_count.fetch_sub(1, Ordering::AcqRel);
            self.counters.shard_deaths.fetch_add(1, Ordering::Relaxed);
        }
        was_alive
    }

    /// Administrative shard death: marks shard `i` dead and rescues its
    /// contents onto the survivors. Returns how many values were moved.
    /// Idempotent; the second kill of the same shard rescues nothing.
    ///
    /// With exclusive shards the dead shard's *owner-private* tier
    /// remains reachable through the thief-safe consume path, and the
    /// rest is published when its bound [`Producer`] drops (the
    /// death-flush) — so administrative death never strands values
    /// either way.
    pub fn kill_shard(&self, i: usize) -> usize {
        if self.mark_dead(i) {
            self.rescue(i)
        } else {
            0
        }
    }

    /// Drains a dead shard through the (thief-safe) consume path and
    /// republishes everything on the survivors. Runs on whichever
    /// thread transitioned the shard to dead.
    fn rescue(&self, i: usize) -> usize {
        let mut moved = 0;
        loop {
            // The consume side may panic once more if a second fault is
            // armed; give up on the remainder then — consumers still
            // scan dead shards, so nothing is lost, just not rehomed.
            let batch = match catch_unwind(AssertUnwindSafe(|| {
                self.shards[i].inner.consume_batch(MAX_BATCH)
            })) {
                Ok(b) => b,
                Err(_) => break,
            };
            if batch.is_empty() {
                break;
            }
            moved += batch.len();
            self.park(i, batch);
        }
        self.counters.rescued.fetch_add(moved as u64, Ordering::Relaxed);
        moved
    }

    /// Republishes `vals` on any shard, preferring alive ones after
    /// `after`, falling back (bounded survivors all full) to the source
    /// shard itself — values never drop, and consumers drain dead
    /// shards too.
    fn park(&self, after: usize, mut vals: Vec<T>) {
        let n = self.shards.len();
        let mut backoff = Backoff::new();
        loop {
            for k in 1..=n {
                let i = (after + k) % n;
                if i != after && !self.shards[i].alive.load(Ordering::Acquire) {
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| {
                    self.shards[i].inner.rescue_publish(vals)
                })) {
                    Ok(Ok(())) => return,
                    Ok(Err(rest)) => vals = rest,
                    // The values moved into the panicking call are
                    // gone with it; nothing left to park. (Only a
                    // second armed fault can trigger this.)
                    Err(_) => {
                        self.on_shard_panic(i);
                        return;
                    }
                }
            }
            // Every shard rejected (all bounded, all full). Wait for
            // consumers to make room rather than dropping values.
            backoff.snooze();
        }
    }

    /// Thread-safe broker-level insert used by the blocking send path:
    /// offers `vals` to every alive shard once (via the thread-safe
    /// rescue path), returning what none of them would take.
    fn offer_any(&self, start: usize, mut vals: Vec<T>) -> Result<(), Vec<T>> {
        let n = self.shards.len();
        for k in 0..n {
            let i = (start + k) % n;
            if !self.shards[i].alive.load(Ordering::Acquire) {
                continue;
            }
            match self.guarded(i, |s| s.rescue_publish(vals)) {
                Some(Ok(())) => return Ok(()),
                Some(Err(rest)) => vals = rest,
                None => return Ok(()),
            }
        }
        if vals.is_empty() {
            Ok(())
        } else {
            Err(vals)
        }
    }

    /// Drains every shard (alive and dead) through the consume path
    /// until all are observed empty. Teardown/audit helper — with
    /// exclusive shards, drop the producers first so their death-flush
    /// publishes the private tiers.
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut out = Vec::new();
        loop {
            let mut got = false;
            for i in 0..self.shards.len() {
                if let Some(batch) = self.guarded(i, |s| s.consume_batch(MAX_BATCH)) {
                    if !batch.is_empty() {
                        got = true;
                        out.extend(batch);
                    }
                }
            }
            if !got {
                return out;
            }
        }
    }
}

impl<T: Send> ShardedBroker<T, FlatShard<ListDeque<T, HarrisMcas>>> {
    /// `n` unbounded list-deque shards (the paper's linked-list deque
    /// under the pooled Harris MCAS): never backpressures.
    pub fn unbounded_list(n: usize) -> Self {
        Self::with_shards(n, |_| FlatShard(ListDeque::new()))
    }
}

impl<T: Send> ShardedBroker<T, FlatShard<ArrayDeque<T, HarrisMcas>>> {
    /// `n` bounded array-deque shards of `capacity` values each; a full
    /// shard surfaces as [`Backpressure`].
    pub fn bounded_array(n: usize, capacity: usize) -> Self {
        Self::with_shards(n, |_| FlatShard(ArrayDeque::new(capacity)))
    }
}

impl<T: Send> ShardedBroker<T, TieredShard<T>> {
    /// `n` two-level tiered shards (stealable Chase–Lev private tier
    /// over the unbounded list deque). One producer per shard, bound at
    /// [`producer`](ShardedBroker::producer) time.
    pub fn tiered_chaselev(n: usize) -> Self {
        Self::with_shards(n, |_| TieredShard::new())
    }
}

/// A producer handle: buffers values per shard and hands them over in
/// chunk-atomic batches of [`MAX_BATCH`].
///
/// Dropping the producer flushes its buffers — and, for an exclusive
/// shard, runs the owner-side death-flush so the private tier's
/// contents become reachable by consumers. For bounded brokers the drop
/// flush parks unplaceable values wherever they fit (including dead
/// shards) rather than dropping them; call
/// [`flush`](Producer::flush) explicitly to observe backpressure.
pub struct Producer<'b, T: Send, S: BrokerShard<T>> {
    broker: &'b ShardedBroker<T, S>,
    /// Per-shard pending values (non-exclusive mode).
    bufs: Vec<Vec<T>>,
    /// Bound shard in exclusive mode; also this producer's rebalance
    /// origin and round-robin stagger.
    home: usize,
    cursor: usize,
}

impl<T: Send, S: BrokerShard<T>> Producer<'_, T, S> {
    /// Produces one value, round-robin across alive shards *per batch*:
    /// the current target's buffer fills to one [`MAX_BATCH`] chunk,
    /// goes over as a single CASN, and only then does the cursor move —
    /// one routing decision and one chunk handoff per eight values.
    /// `Err` carries every rejected value back (bounded shard full).
    pub fn send(&mut self, v: T) -> Result<(), Backpressure<T>> {
        self.broker.counters.sent.fetch_add(1, Ordering::Relaxed);
        if S::PRODUCER_EXCLUSIVE {
            return self.send_home(v);
        }
        let i = self.broker.next_alive(self.cursor);
        self.cursor = i;
        self.bufs[i].push(v);
        if self.bufs[i].len() >= MAX_BATCH {
            let flushed = self.flush_shard(i);
            self.cursor = (i + 1) % self.broker.num_shards();
            flushed?;
        }
        Ok(())
    }

    /// Produces one value routed by Fibonacci-hashing `key`: every
    /// value with the same key lands on the same shard (FIFO per key)
    /// while the shard lives. Dead shards are probed past, which is
    /// when a key's order can change hands.
    ///
    /// On an exclusive-shard broker the producer owns exactly one
    /// shard, so the key degenerates to the home shard (per-key order
    /// then holds per *producer*).
    pub fn send_keyed(&mut self, key: u64, v: T) -> Result<(), Backpressure<T>> {
        self.broker.counters.sent.fetch_add(1, Ordering::Relaxed);
        if S::PRODUCER_EXCLUSIVE {
            return self.send_home(v);
        }
        let i = self.broker.next_alive(self.broker.route(key));
        self.bufs[i].push(v);
        if self.bufs[i].len() >= MAX_BATCH {
            self.flush_shard(i)?;
        }
        Ok(())
    }

    /// Exclusive mode: push straight onto the owned shard (the tier
    /// batches the spill internally, so producer-side buffering would
    /// only double it).
    fn send_home(&mut self, v: T) -> Result<(), Backpressure<T>> {
        match self.broker.guarded(self.home, |s| s.produce_one(v)) {
            Some(Ok(())) | None => Ok(()),
            Some(Err(v)) => {
                self.broker
                    .counters
                    .backpressure_events
                    .fetch_add(1, Ordering::Relaxed);
                Err(Backpressure(vec![v]))
            }
        }
    }

    /// Hands shard `i`'s buffer over as one batch. On backpressure the
    /// rejected tail is offered to the other alive shards before being
    /// returned to the caller.
    fn flush_shard(&mut self, i: usize) -> Result<(), Backpressure<T>> {
        if self.bufs[i].is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.bufs[i]);
        match self.broker.guarded(i, |s| s.produce_batch(batch)) {
            Some(Ok(())) | None => {
                self.broker
                    .counters
                    .sent_batches
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(Err(rest)) => {
                self.broker
                    .counters
                    .backpressure_events
                    .fetch_add(1, Ordering::Relaxed);
                match self.broker.offer_any((i + 1) % self.broker.num_shards(), rest) {
                    Ok(()) => {
                        self.broker
                            .counters
                            .sent_batches
                            .fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    Err(rest) => Err(Backpressure(rest)),
                }
            }
        }
    }

    /// Flushes every buffered value. `Err` carries all values no shard
    /// would take.
    pub fn flush(&mut self) -> Result<(), Backpressure<T>> {
        let mut rejected = Vec::new();
        for i in 0..self.bufs.len() {
            if let Err(bp) = self.flush_shard(i) {
                rejected.extend(bp.into_inner());
            }
        }
        if rejected.is_empty() {
            Ok(())
        } else {
            Err(Backpressure(rejected))
        }
    }

    /// [`send`](Producer::send), but on backpressure parks and retries
    /// under [`Backoff`] until a consumer makes room. Only a broker
    /// with no consumers can block forever.
    pub fn send_blocking(&mut self, v: T) {
        let mut vals = match self.send(v) {
            Ok(()) => return,
            Err(bp) => bp.into_inner(),
        };
        let mut backoff = Backoff::new();
        loop {
            match self.broker.offer_any(self.cursor, vals) {
                Ok(()) => return,
                Err(rest) => vals = rest,
            }
            backoff.snooze();
        }
    }

    /// [`flush`](Producer::flush), but blocks under [`Backoff`] until
    /// every buffered value is placed.
    pub fn flush_blocking(&mut self) {
        let mut vals = match self.flush() {
            Ok(()) => return,
            Err(bp) => bp.into_inner(),
        };
        let mut backoff = Backoff::new();
        loop {
            match self.broker.offer_any(self.cursor, vals) {
                Ok(()) => return,
                Err(rest) => vals = rest,
            }
            backoff.snooze();
        }
    }

    /// This producer's bound shard (exclusive mode) or round-robin
    /// stagger origin.
    pub fn home_shard(&self) -> usize {
        self.home
    }
}

impl<T: Send, S: BrokerShard<T>> Drop for Producer<'_, T, S> {
    fn drop(&mut self) {
        // Publish buffered values. Backpressure here parks values
        // wherever they fit (conservation over placement) — a full
        // bounded broker with zero consumers is the one case that can
        // spin, same as any blocked send.
        let mut leftover: Vec<T> = self.bufs.iter_mut().flat_map(std::mem::take).collect();
        if S::PRODUCER_EXCLUSIVE {
            // Owner-side death-flush: make the private tier reachable.
            if let Some(rest) = self
                .broker
                .guarded(self.home, |s| s.flush_local())
            {
                leftover.extend(rest);
            }
        }
        if !leftover.is_empty() {
            self.broker.park(self.home, leftover);
        }
    }
}

/// A consumer handle: pulls batches from the shards with a rotating
/// scan, and keeps a small local stash so one `consume_batch` serves
/// several `recv` calls.
///
/// The scan starts at this consumer's home shard but advances one
/// position past each successful pull, so every shard gets equal
/// service — a sticky home would let far shards build unbounded
/// backlogs whenever the near ones stay non-empty (work-conserving
/// fairness over locality).
///
/// Dropping the consumer republishes its stash on the broker.
pub struct Consumer<'b, T: Send, S: BrokerShard<T>> {
    broker: &'b ShardedBroker<T, S>,
    stash: VecDeque<T>,
    home: usize,
    /// Rotating scan origin for the next pull.
    scan: usize,
    /// Shard of the most recent pull — where a requeue goes back to.
    last: usize,
}

impl<T: Send, S: BrokerShard<T>> Consumer<'_, T, S> {
    /// Takes the next value, or `None` when every shard was observed
    /// empty. Scans dead shards too — rescue parks values there only
    /// when every survivor is full, and they must remain reachable.
    pub fn recv(&mut self) -> Option<T> {
        if let Some(v) = self.stash.pop_front() {
            self.broker.counters.received.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        let n = self.broker.num_shards();
        for k in 0..n {
            let i = (self.scan + k) % n;
            if let Some(batch) = self.broker.guarded(i, |s| s.consume_batch(MAX_BATCH)) {
                if !batch.is_empty() {
                    let counter = if i == self.home {
                        &self.broker.counters.recv_home
                    } else {
                        &self.broker.counters.recv_rebalanced
                    };
                    counter.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    self.last = i;
                    self.scan = (i + 1) % n;
                    self.stash.extend(batch);
                    self.broker.counters.received.fetch_add(1, Ordering::Relaxed);
                    return self.stash.pop_front();
                }
            }
        }
        None
    }

    /// [`recv`](Consumer::recv), but waits under [`Backoff`] up to
    /// `timeout` for a value to arrive.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.recv() {
                return Some(v);
            }
            if Instant::now() >= deadline {
                return None;
            }
            backoff.snooze();
        }
    }

    /// Puts `v` back at the *front* of the line on the shard it was
    /// last pulled from — the deque-powered requeue: a retried value is
    /// served next, not after everything behind it. Falls back to the
    /// local stash when that shard cannot take it (exclusive shards'
    /// steal end is take-only; full bounded shards), which preserves
    /// next-up ordering for *this* consumer.
    pub fn requeue(&mut self, v: T) {
        self.broker.counters.requeued.fetch_add(1, Ordering::Relaxed);
        if let Some(Err(v)) = self.broker.guarded(self.last, |s| s.requeue_front(v)) { self.stash.push_front(v) }
    }

    /// Values currently stashed locally (taken from shards, not yet
    /// returned from [`recv`](Consumer::recv)).
    pub fn stashed(&self) -> usize {
        self.stash.len()
    }

    /// This consumer's home shard.
    pub fn home_shard(&self) -> usize {
        self.home
    }
}

impl<T: Send, S: BrokerShard<T>> Drop for Consumer<'_, T, S> {
    fn drop(&mut self) {
        let stash: Vec<T> = self.stash.drain(..).collect();
        if !stash.is_empty() {
            self.broker.park(self.home, stash);
        }
    }
}

#[cfg(test)]
mod tests;
