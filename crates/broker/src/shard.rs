//! The shard abstraction: what one slice of a [`ShardedBroker`] must
//! support.
//!
//! Two families implement it:
//!
//! * [`FlatShard`] wraps any [`ConcurrentDeque`] — the paper's list and
//!   array deques, or a `Recorded<_>` wrapper for audited runs. Any
//!   number of producers and consumers may touch it concurrently;
//!   produce lands at the right end in chunk-atomic batches and consume
//!   drains the left end, so each shard serves FIFO.
//! * [`TieredShard`] wraps the two-level
//!   [`TieredDeque`](dcas_workstealing::TieredDeque) with the stealable
//!   Chase–Lev private tier. Its push side is **single-owner** (the
//!   tier's safety contract), so the broker binds at most one producer
//!   to it ([`BrokerShard::PRODUCER_EXCLUSIVE`]); consumers go through
//!   the thief-safe steal path and the owner's buffered work is
//!   published by the death-flush on producer drop.
//!
//! [`ShardedBroker`]: crate::ShardedBroker

use dcas::HarrisMcas;
use dcas_deque::{ConcurrentDeque, ListDeque, MAX_BATCH};
use dcas_workstealing::{ChaseLevTier, TieredDeque};

/// One shard of a [`ShardedBroker`](crate::ShardedBroker).
///
/// Produce operations append at the shard's *newest* end and consume
/// operations take from the *oldest* end, so a single shard serves its
/// values FIFO (cross-shard order is unspecified — that is the sharding
/// trade-off). `Err` returns from the produce side carry the rejected
/// values back (bounded shards at capacity: the broker's backpressure
/// signal).
pub trait BrokerShard<T: Send>: Send + Sync {
    /// Whether the produce side is single-owner. The broker hands out
    /// at most one [`Producer`](crate::Producer) per exclusive shard
    /// and routes that producer's traffic only to its own shard.
    const PRODUCER_EXCLUSIVE: bool;

    /// Appends `vals` in order at the newest end; `Err` hands back the
    /// rejected tail (bounded shard at capacity).
    fn produce_batch(&self, vals: Vec<T>) -> Result<(), Vec<T>>;

    /// Appends one value; `Err` hands it back.
    fn produce_one(&self, v: T) -> Result<(), T>;

    /// Takes the oldest value, or `None` if the shard is observed empty.
    fn consume_one(&self) -> Option<T>;

    /// Takes up to `max` of the oldest values, oldest first. Empty means
    /// the shard was observed empty (or a steal race was lost).
    fn consume_batch(&self, max: usize) -> Vec<T>;

    /// Re-inserts `v` at the *oldest* end so it is served next — the
    /// deque-powered requeue that keeps a retried job's priority.
    /// `Err(v)` means the shard cannot (exclusive shards: the steal end
    /// is take-only; bounded shards: full) and the caller must keep it.
    fn requeue_front(&self, v: T) -> Result<(), T>;

    /// Owner-side death-flush: publishes any privately buffered values
    /// (an exclusive shard's tier and mid-spill staging) so consumers
    /// can reach them, returning whatever could **not** be published
    /// (bounded shared level at capacity) for the caller to rescue.
    /// Flat shards buffer nothing and return empty.
    ///
    /// For an exclusive shard this is owner-only, like the push side.
    fn flush_local(&self) -> Vec<T> {
        Vec::new()
    }

    /// Thread-safe insert used by rescue and rebalance parking: unlike
    /// the produce side (owner-only on exclusive shards), **any** thread
    /// may call this. Values land at the newest end; `Err` hands back
    /// what a bounded shard rejected.
    ///
    /// Flat shards alias the produce path; exclusive shards bypass the
    /// owner-private tier and insert straight into the shared
    /// linearizable level (the size hint lags, which the tier tolerates
    /// by design — a stale hint costs one early spill or restock).
    fn rescue_publish(&self, vals: Vec<T>) -> Result<(), Vec<T>> {
        self.produce_batch(vals)
    }

    /// Steal provenance `(private tier, shared level)` for tiered
    /// shards; flat shards report zeros.
    fn steal_provenance(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Implementation name for reporting.
    fn name(&self) -> &'static str;
}

/// Any [`ConcurrentDeque`] as a broker shard: produce at the right end
/// (batch-8 chunk-atomic via `push_right_n`), consume at the left.
pub struct FlatShard<D>(pub D);

impl<T: Send, D: ConcurrentDeque<T>> BrokerShard<T> for FlatShard<D> {
    const PRODUCER_EXCLUSIVE: bool = false;

    fn produce_batch(&self, vals: Vec<T>) -> Result<(), Vec<T>> {
        self.0.push_right_n(vals).map_err(|full| full.into_inner())
    }

    fn produce_one(&self, v: T) -> Result<(), T> {
        self.0.push_right(v).map_err(|full| full.into_inner())
    }

    fn consume_one(&self) -> Option<T> {
        self.0.pop_left()
    }

    fn consume_batch(&self, max: usize) -> Vec<T> {
        self.0.pop_left_n(max)
    }

    fn requeue_front(&self, v: T) -> Result<(), T> {
        self.0.push_left(v).map_err(|full| full.into_inner())
    }

    fn name(&self) -> &'static str {
        self.0.impl_name()
    }
}

/// The two-level tiered deque (stealable Chase–Lev private tier over
/// the paper's unbounded list deque) as a broker shard.
///
/// The bound producer owns the push side: its values land in the
/// Chase–Lev tier at a release fence apiece and spill to the shared
/// DCAS level in chunk-atomic batches only when the shared level looks
/// empty. Consumers take through the thief-safe path (shared level
/// first, then the tier's top), so every inter-thread transfer is
/// either linearizable-deque traffic or a Chase–Lev steal.
pub struct TieredShard<T: Send>(
    pub TieredDeque<T, ListDeque<T, HarrisMcas>, ChaseLevTier<T>>,
);

impl<T: Send> TieredShard<T> {
    /// An empty tiered shard.
    pub fn new() -> Self {
        TieredShard(TieredDeque::with_tier(ListDeque::new()))
    }
}

impl<T: Send> Default for TieredShard<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> BrokerShard<T> for TieredShard<T> {
    const PRODUCER_EXCLUSIVE: bool = true;

    fn produce_batch(&self, vals: Vec<T>) -> Result<(), Vec<T>> {
        // Owner-side pushes; the tier batches the spill itself. The
        // shared level is unbounded, so this never rejects.
        for v in vals {
            if let Err(v) = self.0.push(v) {
                return Err(vec![v]);
            }
        }
        Ok(())
    }

    fn produce_one(&self, v: T) -> Result<(), T> {
        self.0.push(v)
    }

    fn consume_one(&self) -> Option<T> {
        self.0.steal()
    }

    fn consume_batch(&self, max: usize) -> Vec<T> {
        let mut out = self.0.steal_half();
        out.truncate(max.clamp(1, MAX_BATCH));
        out
    }

    fn requeue_front(&self, v: T) -> Result<(), T> {
        // The steal end is take-only; the consumer keeps the value in
        // its local stash instead.
        Err(v)
    }

    fn flush_local(&self) -> Vec<T> {
        self.0.flush_local()
    }

    fn rescue_publish(&self, vals: Vec<T>) -> Result<(), Vec<T>> {
        self.0
            .shared()
            .push_right_n(vals)
            .map_err(|full| full.into_inner())
    }

    fn steal_provenance(&self) -> (u64, u64) {
        self.0.tier_steals()
    }

    fn name(&self) -> &'static str {
        "tiered-chaselev"
    }
}
