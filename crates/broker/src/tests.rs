use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use super::*;

#[test]
fn fib_routing_is_stable_and_spreads() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(8);
    let mut hits = [0usize; 8];
    for key in 0..4096u64 {
        let a = broker.route(key);
        let b = broker.route(key);
        assert_eq!(a, b, "routing must be deterministic");
        hits[a] += 1;
    }
    // Fibonacci hashing scatters consecutive keys near-evenly: every
    // shard gets within 2x of the fair share.
    for (i, &h) in hits.iter().enumerate() {
        assert!(
            h > 256 && h < 1024,
            "shard {i} got {h}/4096 — routing is lumpy: {hits:?}"
        );
    }
}

#[test]
fn keyed_sends_stay_on_one_shard() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = broker.producer();
    for v in 0..100u64 {
        p.send_keyed(7, v).unwrap();
    }
    p.flush().unwrap();
    let target = broker.route(7);
    // All 100 values sit on the routed shard, in FIFO order.
    let mut all = Vec::new();
    loop {
        let more = broker.shard(target).consume_batch(MAX_BATCH);
        if more.is_empty() {
            break;
        }
        all.extend(more);
    }
    assert_eq!(all, (0..100u64).collect::<Vec<_>>());
    for i in 0..4 {
        if i != target {
            assert!(broker.shard(i).consume_one().is_none());
        }
    }
}

#[test]
fn round_robin_spreads_and_drains_conserve() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = broker.producer();
    for v in 0..1000u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();
    // Every shard saw traffic.
    for i in 0..4 {
        assert!(
            broker.shard(i).consume_one().is_some(),
            "shard {i} never targeted by round-robin"
        );
    }
    let drained = broker.drain_remaining();
    assert_eq!(drained.len(), 1000 - 4);
    let stats = broker.stats();
    assert_eq!(stats.sent, 1000);
    assert!(stats.sent_batches >= 1000 / MAX_BATCH as u64);
}

#[test]
fn consumer_prefers_home_then_rebalances() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(2);
    let mut p = broker.producer();
    for v in 0..64u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();
    let mut c = broker.consumer();
    assert_eq!(c.home_shard(), 0);
    let mut got = Vec::new();
    while let Some(v) = c.recv() {
        got.push(v);
    }
    got.sort_unstable();
    assert_eq!(got, (0..64).collect::<Vec<_>>());
    let stats = broker.stats();
    assert!(stats.recv_home > 0, "home shard never drained");
    assert!(stats.recv_rebalanced > 0, "rebalance never kicked in");
    assert_eq!(stats.received, 64);
}

#[test]
fn backpressure_carries_every_rejected_value() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::bounded_array(2, 16);
    let mut p = broker.producer();
    let mut accepted = 0u64;
    let mut rejected = Vec::new();
    for v in 0..100u64 {
        match p.send(v) {
            Ok(()) => {}
            Err(bp) => rejected.extend(bp.into_inner()),
        }
    }
    match p.flush() {
        Ok(()) => {}
        Err(bp) => rejected.extend(bp.into_inner()),
    }
    let mut drained = broker.drain_remaining();
    accepted += drained.len() as u64;
    assert!(
        !rejected.is_empty(),
        "two 16-capacity shards cannot absorb 100 values"
    );
    // Exact conservation: accepted + rejected == sent, no duplicates.
    assert_eq!(accepted + rejected.len() as u64, 100);
    drained.extend(rejected);
    let unique: HashSet<u64> = drained.iter().copied().collect();
    assert_eq!(unique.len(), 100);
    assert!(broker.stats().backpressure_events > 0);
}

#[test]
fn blocking_send_waits_for_consumer() {
    let broker: Arc<ShardedBroker<u64, _>> = Arc::new(ShardedBroker::bounded_array(1, 8));
    let done = Arc::new(AtomicBool::new(false));
    let b2 = Arc::clone(&broker);
    let d2 = Arc::clone(&done);
    let producer = thread::spawn(move || {
        let mut p = b2.producer();
        for v in 0..256u64 {
            p.send_blocking(v);
        }
        p.flush_blocking();
        d2.store(true, Ordering::Release);
    });
    let mut got = Vec::new();
    let mut c = broker.consumer();
    while got.len() < 256 {
        match c.recv() {
            Some(v) => got.push(v),
            None => thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert!(done.load(Ordering::Acquire));
    got.sort_unstable();
    assert_eq!(got, (0..256).collect::<Vec<_>>());
}

#[test]
fn kill_shard_conserves_and_survivors_serve() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(4);
    let mut p = broker.producer();
    for v in 0..1000u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();

    let rescued = broker.kill_shard(1);
    assert!(rescued > 0, "a round-robin-fed shard cannot be empty");
    assert_eq!(broker.alive_shards(), 3);
    assert!(!broker.is_alive(1));
    // Idempotent: second kill is a no-op.
    assert_eq!(broker.kill_shard(1), 0);
    assert_eq!(broker.stats().shard_deaths, 1);
    assert_eq!(broker.stats().rescued, rescued as u64);

    // The broker keeps serving: new sends avoid the dead shard...
    for v in 1000..1100u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();
    assert!(
        broker.shard(1).consume_one().is_none(),
        "dead shard received new traffic"
    );
    // ...and every value (old and new) is still served exactly once.
    let mut got = broker.drain_remaining();
    got.sort_unstable();
    assert_eq!(got, (0..1100u64).collect::<Vec<_>>());
}

#[test]
fn panicking_shard_is_retired_in_flight() {
    // A shard whose consume side panics once (the PR 3 kill shape):
    // the broker must catch it, mark the shard dead, rescue, and keep
    // serving — the consumer's recv() call itself must not unwind.
    struct Bomb {
        inner: FlatShard<ListDeque<u64, HarrisMcas>>,
        armed: AtomicBool,
    }
    impl BrokerShard<u64> for Bomb {
        const PRODUCER_EXCLUSIVE: bool = false;
        fn produce_batch(&self, vals: Vec<u64>) -> Result<(), Vec<u64>> {
            self.inner.produce_batch(vals)
        }
        fn produce_one(&self, v: u64) -> Result<(), u64> {
            self.inner.produce_one(v)
        }
        fn consume_one(&self) -> Option<u64> {
            self.inner.consume_one()
        }
        fn consume_batch(&self, max: usize) -> Vec<u64> {
            if self.armed.swap(false, Ordering::AcqRel) {
                panic!("injected shard death");
            }
            self.inner.consume_batch(max)
        }
        fn requeue_front(&self, v: u64) -> Result<(), u64> {
            self.inner.requeue_front(v)
        }
        fn name(&self) -> &'static str {
            "bomb"
        }
    }

    let broker: ShardedBroker<u64, Bomb> = ShardedBroker::with_shards(3, |i| Bomb {
        inner: FlatShard(ListDeque::new()),
        armed: AtomicBool::new(i == 0),
    });
    let mut p = broker.producer();
    for v in 0..300u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();

    let mut c = broker.consumer();
    let mut got = Vec::new();
    while let Some(v) = c.recv() {
        got.push(v);
    }
    assert_eq!(broker.alive_shards(), 2, "panicked shard not retired");
    assert_eq!(broker.stats().shard_deaths, 1);
    got.sort_unstable();
    assert_eq!(got, (0..300u64).collect::<Vec<_>>(), "kill lost or duped values");
}

#[test]
fn tiered_exclusive_binds_one_producer_per_shard() {
    let broker: Arc<ShardedBroker<u64, TieredShard<u64>>> =
        Arc::new(ShardedBroker::tiered_chaselev(2));
    let barrier = Arc::new(Barrier::new(3));
    let mut handles = Vec::new();
    for t in 0..2u64 {
        let b = Arc::clone(&broker);
        let bar = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut p = b.producer();
            bar.wait();
            for v in 0..500u64 {
                p.send(t * 1000 + v).unwrap();
            }
            // Producer drop runs the death-flush here, publishing the
            // Chase-Lev tier to the shared level.
        }));
    }
    barrier.wait();
    for h in handles {
        h.join().unwrap();
    }
    // A third producer must be refused.
    let over = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let _ = broker.producer();
    }));
    assert!(over.is_err(), "third producer bound to a 2-shard tiered broker");

    let mut got = broker.drain_remaining();
    got.sort_unstable();
    let want: Vec<u64> = (0..500).chain(1000..1500).collect();
    assert_eq!(got, want, "tier flush lost values");
}

#[test]
fn tiered_consumers_steal_concurrently() {
    let broker: Arc<ShardedBroker<u64, TieredShard<u64>>> =
        Arc::new(ShardedBroker::tiered_chaselev(2));
    let total = 4000u64;
    let stop = Arc::new(AtomicBool::new(false));
    let mut consumers = Vec::new();
    for _ in 0..2 {
        let b = Arc::clone(&broker);
        let s = Arc::clone(&stop);
        consumers.push(thread::spawn(move || {
            let mut c = b.consumer();
            let mut got = Vec::new();
            loop {
                match c.recv() {
                    Some(v) => got.push(v),
                    None if s.load(Ordering::Acquire) => break,
                    None => thread::yield_now(),
                }
            }
            got
        }));
    }
    let mut producers = Vec::new();
    for t in 0..2u64 {
        let b = Arc::clone(&broker);
        producers.push(thread::spawn(move || {
            let mut p = b.producer();
            for v in 0..total / 2 {
                p.send(t * total + v).unwrap();
            }
        }));
    }
    for h in producers {
        h.join().unwrap();
    }
    // Give consumers a moment to drain what the death-flush published,
    // then stop them and sweep the remainder ourselves.
    thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Release);
    let mut got: Vec<u64> = consumers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    got.extend(broker.drain_remaining());
    got.sort_unstable();
    let want: Vec<u64> = (0..total / 2).chain(total..total + total / 2).collect();
    assert_eq!(got, want, "concurrent tiered consume lost or duped values");
    let stats = broker.stats();
    assert!(
        stats.tier_steals_private + stats.tier_steals_shared > 0,
        "steal provenance never incremented"
    );
}

#[test]
fn requeue_serves_next() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(1);
    let mut p = broker.producer();
    for v in 0..10u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();
    let mut c = broker.consumer();
    let first = c.recv().unwrap();
    assert_eq!(first, 0);
    c.requeue(first);
    // Requeued value must come back before anything behind it. The
    // consumer stash may hold 1..8 already, so drain the stash-ordered
    // prefix and check 0 precedes 9 (the value deepest in line).
    let mut order = Vec::new();
    while let Some(v) = c.recv() {
        order.push(v);
    }
    let pos0 = order.iter().position(|&v| v == 0).unwrap();
    let pos9 = order.iter().position(|&v| v == 9).unwrap();
    assert!(pos0 < pos9, "requeued value lost its place: {order:?}");
    assert_eq!(order.len(), 10);
    assert_eq!(broker.stats().requeued, 1);
}

#[test]
fn consumer_drop_returns_stash() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(2);
    let mut p = broker.producer();
    for v in 0..32u64 {
        p.send(v).unwrap();
    }
    p.flush().unwrap();
    {
        let mut c = broker.consumer();
        let _ = c.recv().unwrap();
        assert!(c.stashed() > 0, "batch consume should leave a stash");
        // Drop with a warm stash: values must go back to the broker.
    }
    let drained = broker.drain_remaining();
    assert_eq!(drained.len(), 31, "consumer drop leaked its stash");
}

#[test]
fn zero_shards_rounds_up() {
    let broker: ShardedBroker<u64, _> = ShardedBroker::unbounded_list(0);
    assert_eq!(broker.num_shards(), 1);
    let mut p = broker.producer();
    p.send(42).unwrap();
    p.flush().unwrap();
    let mut c = broker.consumer();
    assert_eq!(c.recv(), Some(42));
}
