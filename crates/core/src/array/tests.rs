//! Unit and figure-reproduction tests for the array-based deque.

use dcas::{Counting, DcasStrategy, GlobalLock, GlobalSeqLock, HarrisMcas, StripedLock};

use super::{ArrayConfig, ArrayDeque, RawArrayDeque};
use crate::{Full, MAX_BATCH};

fn configs() -> Vec<ArrayConfig> {
    vec![
        ArrayConfig::default(),
        ArrayConfig::minimal(),
        ArrayConfig { revalidate_index: true, strong_failure_check: false },
        ArrayConfig { revalidate_index: false, strong_failure_check: true },
    ]
}

/// Runs `f` against every (strategy × config) combination.
fn for_all_variants(f: impl Fn(&dyn Fn(usize) -> Box<dyn DynDeque>)) {
    fn mk<S: DcasStrategy>(cfg: ArrayConfig) -> impl Fn(usize) -> Box<dyn DynDeque> {
        move |n| Box::new(RawArrayDeque::<u32, S>::with_config(n, cfg))
    }
    for cfg in configs() {
        f(&mk::<GlobalLock>(cfg));
        f(&mk::<GlobalSeqLock>(cfg));
        f(&mk::<StripedLock>(cfg));
        f(&mk::<HarrisMcas>(cfg));
    }
}

/// Object-safe facade so tests can sweep strategies.
trait DynDeque {
    fn push_right(&self, v: u32) -> Result<(), u32>;
    fn push_left(&self, v: u32) -> Result<(), u32>;
    fn pop_right(&self) -> Option<u32>;
    fn pop_left(&self) -> Option<u32>;
}

impl<S: DcasStrategy> DynDeque for RawArrayDeque<u32, S> {
    fn push_right(&self, v: u32) -> Result<(), u32> {
        RawArrayDeque::push_right(self, v).map_err(|Full(v)| v)
    }
    fn push_left(&self, v: u32) -> Result<(), u32> {
        RawArrayDeque::push_left(self, v).map_err(|Full(v)| v)
    }
    fn pop_right(&self) -> Option<u32> {
        RawArrayDeque::pop_right(self)
    }
    fn pop_left(&self) -> Option<u32> {
        RawArrayDeque::pop_left(self)
    }
}

#[test]
fn paper_running_example() {
    // Section 2.2's worked example: pushRight(1), pushLeft(2),
    // pushRight(3) => <2,1,3>; popLeft -> 2; popLeft -> 1.
    for_all_variants(|mk| {
        let d = mk(8);
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        d.push_right(3).unwrap();
        assert_eq!(d.pop_left(), Some(2));
        assert_eq!(d.pop_left(), Some(1));
        assert_eq!(d.pop_left(), Some(3));
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn fig4_empty_initial_layout() {
    // Figure 4 (top): the initial empty deque has L == 0, R == 1 and all
    // cells null.
    let d = RawArrayDeque::<u32, GlobalSeqLock>::new(14);
    let lay = d.layout();
    assert_eq!(lay.l, 0);
    assert_eq!(lay.r, 1);
    assert!(lay.occupied.iter().all(|&o| !o));
}

#[test]
fn fig4_full_layout() {
    // Figure 4 (bottom): a full deque has every cell occupied and
    // (L + 1) mod n == R.
    let d = RawArrayDeque::<u32, GlobalSeqLock>::new(14);
    for i in 0..14 {
        d.push_right(i).unwrap();
    }
    let lay = d.layout();
    assert!(lay.occupied.iter().all(|&o| o));
    assert_eq!((lay.l + 1) % 14, lay.r);
    assert_eq!(d.push_right(99), Err(Full(99)));
    assert_eq!(d.push_left(99), Err(Full(99)));
}

#[test]
fn fig5_successful_pop_right() {
    // Figure 5: popRight decrements R and nulls S[R-1], returning the
    // value.
    let d = RawArrayDeque::<u32, GlobalSeqLock>::new(8);
    d.push_right(10).unwrap();
    d.push_right(11).unwrap();
    let before = d.layout();
    assert_eq!(d.pop_right(), Some(11));
    let after = d.layout();
    assert_eq!(after.r, (before.r + 8 - 1) % 8);
    assert_eq!(after.l, before.l);
    assert!(!after.occupied[after.r]);
}

#[test]
fn fig7_push_right_into_empty() {
    // Figure 7: pushRight on the empty deque writes S[R] and advances R;
    // L does not move.
    let d = RawArrayDeque::<u32, GlobalSeqLock>::new(8);
    let before = d.layout();
    d.push_right(42).unwrap();
    let after = d.layout();
    assert_eq!(after.l, before.l);
    assert_eq!(after.r, (before.r + 1) % 8);
    assert!(after.occupied[before.r]);
    assert_eq!(after.occupied.iter().filter(|&&o| o).count(), 1);
}

#[test]
fn fig8_filling_wraps_and_crosses() {
    // Figure 8: an almost-full deque; a left push leaves one free cell
    // with L wrapped "to the right of" R; a right push fills it and the
    // indices cross again.
    let n = 14;
    let d = RawArrayDeque::<u32, GlobalSeqLock>::new(n);
    // Fill to n-2 from the right: two free cells remain.
    for i in 0..(n as u32 - 2) {
        d.push_right(i).unwrap();
    }
    let lay = d.layout();
    assert_eq!(lay.occupied.iter().filter(|&&o| o).count(), n - 2);

    // Left push: exactly one free cell remains, and both indices point at
    // it — L has wrapped all the way around to meet R.
    d.push_left(100).unwrap();
    let lay = d.layout();
    assert_eq!(lay.occupied.iter().filter(|&&o| !o).count(), 1);
    assert_eq!(lay.l, lay.r);
    assert!(!lay.occupied[lay.l]);

    // Right push: full, and (L + 1) mod n == R once more.
    d.push_right(200).unwrap();
    let lay = d.layout();
    assert!(lay.occupied.iter().all(|&o| o));
    assert_eq!((lay.l + 1) % n, lay.r);
    assert_eq!(d.push_right(1), Err(Full(1)));

    // Drain and verify order: 100 was the leftmost, 200 the rightmost.
    assert_eq!(d.pop_left(), Some(100));
    assert_eq!(d.pop_right(), Some(200));
}

#[test]
fn capacity_one_deque() {
    for_all_variants(|mk| {
        let d = mk(1);
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
        d.push_right(7).unwrap();
        assert_eq!(d.push_right(8), Err(8));
        assert_eq!(d.push_left(9), Err(9));
        assert_eq!(d.pop_left(), Some(7));
        assert_eq!(d.pop_left(), None);
        d.push_left(5).unwrap();
        assert_eq!(d.pop_right(), Some(5));
    });
}

#[test]
fn empty_returns_none_from_both_ends() {
    for_all_variants(|mk| {
        let d = mk(4);
        assert_eq!(d.pop_left(), None);
        assert_eq!(d.pop_right(), None);
        d.push_left(1).unwrap();
        assert_eq!(d.pop_right(), Some(1));
        assert_eq!(d.pop_right(), None);
        assert_eq!(d.pop_left(), None);
    });
}

#[test]
fn lifo_from_each_end() {
    for_all_variants(|mk| {
        let d = mk(16);
        for i in 0..10 {
            d.push_right(i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(d.pop_right(), Some(i));
        }
        for i in 0..10 {
            d.push_left(i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(d.pop_left(), Some(i));
        }
    });
}

#[test]
fn fifo_across_ends() {
    for_all_variants(|mk| {
        let d = mk(16);
        for i in 0..10 {
            d.push_right(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(d.pop_left(), Some(i));
        }
        for i in 0..10 {
            d.push_left(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(d.pop_right(), Some(i));
        }
    });
}

#[test]
fn wraparound_many_revolutions() {
    // Run a window of 3 items around the ring many times in both
    // directions; exercises the modular index arithmetic.
    for_all_variants(|mk| {
        let d = mk(5);
        d.push_right(0).unwrap();
        d.push_right(1).unwrap();
        d.push_right(2).unwrap();
        for i in 3..100 {
            d.push_right(i).unwrap();
            assert_eq!(d.pop_left(), Some(i - 3));
        }
        for i in (0..97).rev() {
            d.push_left(i).unwrap();
            assert_eq!(d.pop_right(), Some(i + 3));
        }
    });
}

#[test]
fn full_then_pop_then_push_again() {
    for_all_variants(|mk| {
        let d = mk(3);
        d.push_right(1).unwrap();
        d.push_left(2).unwrap();
        d.push_right(3).unwrap();
        assert_eq!(d.push_right(4), Err(4));
        assert_eq!(d.pop_left(), Some(2));
        d.push_right(4).unwrap();
        assert_eq!(d.push_left(5), Err(5));
        assert_eq!(d.pop_right(), Some(4));
        assert_eq!(d.pop_right(), Some(3));
        assert_eq!(d.pop_right(), Some(1));
        assert_eq!(d.pop_right(), None);
    });
}

#[test]
fn typed_deque_boxes_values() {
    let d: ArrayDeque<String> = ArrayDeque::new(4);
    d.push_right("one".to_string()).unwrap();
    d.push_left("zero".to_string()).unwrap();
    assert_eq!(d.pop_left().as_deref(), Some("zero"));
    assert_eq!(d.pop_left().as_deref(), Some("one"));
    assert_eq!(d.pop_left(), None);
}

#[test]
fn typed_deque_full_returns_value() {
    let d: ArrayDeque<String, GlobalLock> = ArrayDeque::new(1);
    d.push_right("kept".to_string()).unwrap();
    let Full(v) = d.push_right("bounced".to_string()).unwrap_err();
    assert_eq!(v, "bounced");
}

#[test]
fn drop_releases_remaining_values() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    {
        let d: ArrayDeque<Probe, GlobalLock> = ArrayDeque::new(8);
        for _ in 0..5 {
            d.push_right(Probe).unwrap();
        }
        drop(d.pop_left().unwrap());
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 5);
}

#[test]
fn dcas_cost_one_per_uncontended_op() {
    // Uncontended pushes and pops complete in exactly one DCAS each (no
    // retries), and an empty pop costs exactly one (identity) DCAS.
    let d = RawArrayDeque::<u32, Counting<GlobalLock>>::new(8);
    d.push_right(1).unwrap();
    d.push_left(2).unwrap();
    assert_eq!(d.strategy().stats().dcas_attempts, 2);
    assert_eq!(d.strategy().stats().dcas_successes, 2);
    d.pop_right().unwrap();
    d.pop_left().unwrap();
    assert_eq!(d.strategy().stats().dcas_attempts, 4);
    assert_eq!(d.pop_left(), None);
    assert_eq!(d.strategy().stats().dcas_attempts, 5);
    assert_eq!(d.strategy().stats().dcas_successes, 5);
}

#[test]
#[should_panic(expected = "length_S >= 1")]
fn zero_capacity_rejected() {
    let _ = RawArrayDeque::<u32, GlobalLock>::new(0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    enum Op {
        PushRight(u32),
        PushLeft(u32),
        PopRight,
        PopLeft,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..1000).prop_map(Op::PushRight),
            (0u32..1000).prop_map(Op::PushLeft),
            Just(Op::PopRight),
            Just(Op::PopLeft),
        ]
    }

    /// Applies `ops` to both the implementation and a `VecDeque` model
    /// with the paper's sequential semantics, asserting equal outcomes.
    fn check_against_model(cap: usize, cfg: ArrayConfig, ops: &[Op]) {
        let d = RawArrayDeque::<u32, GlobalSeqLock>::with_config(cap, cfg);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match *op {
                Op::PushRight(v) => {
                    let expect = if model.len() < cap {
                        model.push_back(v);
                        Ok(())
                    } else {
                        Err(Full(v))
                    };
                    assert_eq!(d.push_right(v), expect);
                }
                Op::PushLeft(v) => {
                    let expect = if model.len() < cap {
                        model.push_front(v);
                        Ok(())
                    } else {
                        Err(Full(v))
                    };
                    assert_eq!(d.push_left(v), expect);
                }
                Op::PopRight => assert_eq!(d.pop_right(), model.pop_back()),
                Op::PopLeft => assert_eq!(d.pop_left(), model.pop_front()),
            }
        }
        assert_eq!(d.len_quiescent(), model.len());
    }

    proptest! {
        #[test]
        fn matches_vecdeque_model(
            cap in 1usize..12,
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            check_against_model(cap, ArrayConfig::default(), &ops);
        }

        #[test]
        fn matches_vecdeque_model_minimal_config(
            cap in 1usize..12,
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            check_against_model(cap, ArrayConfig::minimal(), &ops);
        }

        #[test]
        fn layout_invariant_contiguity(
            cap in 1usize..10,
            ops in proptest::collection::vec(op_strategy(), 0..120),
        ) {
            // The paper's representation invariant (Figure 18): the
            // non-null cells form a contiguous circular segment from
            // (L+1) to (R-1) inclusive.
            let d = RawArrayDeque::<u32, GlobalLock>::new(cap);
            for op in &ops {
                match *op {
                    Op::PushRight(v) => { let _ = d.push_right(v); }
                    Op::PushLeft(v) => { let _ = d.push_left(v); }
                    Op::PopRight => { let _ = d.pop_right(); }
                    Op::PopLeft => { let _ = d.pop_left(); }
                }
                let lay = d.layout();
                let count = lay.occupied.iter().filter(|&&o| o).count();
                // Walk from L+1 rightwards: the first `count` cells must
                // be exactly the occupied ones.
                for k in 0..cap {
                    let idx = (lay.l + 1 + k) % cap;
                    let expect = k < count;
                    prop_assert_eq!(
                        lay.occupied[idx], expect,
                        "non-contiguous occupancy {:?}", lay
                    );
                }
                // And R must close the segment.
                prop_assert_eq!((lay.l + 1 + count) % cap, lay.r);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Batched operations.
// ---------------------------------------------------------------------

fn for_all_strategies_batch(f: impl Fn(&dyn Fn(usize) -> BatchArray)) {
    fn mk<S: DcasStrategy + 'static>() -> impl Fn(usize) -> BatchArray {
        |n| Box::new(RawArrayDeque::<u32, S>::new(n))
    }
    f(&mk::<GlobalLock>());
    f(&mk::<GlobalSeqLock>());
    f(&mk::<StripedLock>());
    f(&mk::<HarrisMcas>());
}

type BatchArray = Box<dyn DynBatchDeque>;

/// Object-safe facade over the batched API.
trait DynBatchDeque: Send + Sync {
    fn push_right_n(&self, vals: Vec<u32>) -> Result<(), Vec<u32>>;
    fn push_left_n(&self, vals: Vec<u32>) -> Result<(), Vec<u32>>;
    fn pop_right_n(&self, n: usize) -> Vec<u32>;
    fn pop_left_n(&self, n: usize) -> Vec<u32>;
}

impl<S: DcasStrategy> DynBatchDeque for RawArrayDeque<u32, S> {
    fn push_right_n(&self, vals: Vec<u32>) -> Result<(), Vec<u32>> {
        RawArrayDeque::push_right_n(self, vals).map_err(|Full(r)| r)
    }
    fn push_left_n(&self, vals: Vec<u32>) -> Result<(), Vec<u32>> {
        RawArrayDeque::push_left_n(self, vals).map_err(|Full(r)| r)
    }
    fn pop_right_n(&self, n: usize) -> Vec<u32> {
        RawArrayDeque::pop_right_n(self, n)
    }
    fn pop_left_n(&self, n: usize) -> Vec<u32> {
        RawArrayDeque::pop_left_n(self, n)
    }
}

#[test]
fn batch_order_matches_repeated_singles() {
    // push_right_n([1,2,3]) == three pushRights => <1,2,3>;
    // push_left_n([4,5]) == two pushLefts => <5,4,1,2,3>.
    for_all_strategies_batch(|mk| {
        let d = mk(16);
        d.push_right_n(vec![1, 2, 3]).unwrap();
        d.push_left_n(vec![4, 5]).unwrap();
        assert_eq!(d.pop_left_n(2), vec![5, 4]);
        assert_eq!(d.pop_right_n(2), vec![3, 2]);
        // Short pop returns what's there.
        assert_eq!(d.pop_left_n(9), vec![1]);
        assert_eq!(d.pop_left_n(4), Vec::<u32>::new());
    });
}

#[test]
fn batch_spans_multiple_chunks() {
    for_all_strategies_batch(|mk| {
        let d = mk(64);
        let vals: Vec<u32> = (1..=30).collect();
        d.push_right_n(vals.clone()).unwrap();
        assert_eq!(d.pop_left_n(64), vals);
        d.push_left_n(vals.clone()).unwrap();
        let mut rev = vals.clone();
        rev.reverse();
        assert_eq!(d.pop_left_n(64), rev);
    });
}

#[test]
fn batch_full_hands_back_the_tail() {
    for_all_strategies_batch(|mk| {
        // Capacity 6: the ring holds at most 6 values.
        let d = mk(6);
        let res = d.push_right_n((1..=10).collect());
        let rest = res.unwrap_err();
        // Whatever was not pushed comes back, in order, and what was
        // pushed is still there, in order.
        let pushed = d.pop_left_n(10);
        let mut all = pushed.clone();
        all.extend(&rest);
        assert_eq!(all, (1..=10).collect::<Vec<u32>>());
        assert!(pushed.len() <= 6);
    });
}

#[test]
fn batch_on_capacity_one_deque() {
    for_all_strategies_batch(|mk| {
        let d = mk(1);
        let rest = d.push_right_n(vec![1, 2, 3]).unwrap_err();
        assert_eq!(rest, vec![2, 3]);
        assert_eq!(d.pop_right_n(3), vec![1]);
        assert_eq!(d.pop_left_n(1), Vec::<u32>::new());
    });
}

#[test]
fn batch_matches_vecdeque_model() {
    use std::collections::VecDeque;
    for_all_strategies_batch(|mk| {
        let d = mk(32);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut x = 0xB00Fu64;
        let mut nextv = 1u32;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = 1 + (x >> 18) as usize % 11;
            match (x >> 60) % 4 {
                0 => {
                    let vals: Vec<u32> = (nextv..nextv + k as u32).collect();
                    nextv += k as u32;
                    match d.push_right_n(vals.clone()) {
                        Ok(()) => model.extend(&vals),
                        Err(rest) => {
                            let pushed = vals.len() - rest.len();
                            model.extend(&vals[..pushed]);
                            assert_eq!(rest, vals[pushed..]);
                        }
                    }
                }
                1 => {
                    let vals: Vec<u32> = (nextv..nextv + k as u32).collect();
                    nextv += k as u32;
                    match d.push_left_n(vals.clone()) {
                        Ok(()) => vals.iter().for_each(|&v| model.push_front(v)),
                        Err(rest) => {
                            let pushed = vals.len() - rest.len();
                            vals[..pushed].iter().for_each(|&v| model.push_front(v));
                            assert_eq!(rest, vals[pushed..]);
                        }
                    }
                }
                2 => {
                    let got = d.pop_right_n(k);
                    let want: Vec<u32> =
                        (0..k).filter_map(|_| model.pop_back()).collect();
                    assert_eq!(got, want);
                }
                _ => {
                    let got = d.pop_left_n(k);
                    let want: Vec<u32> =
                        (0..k).filter_map(|_| model.pop_front()).collect();
                    assert_eq!(got, want);
                }
            }
        }
    });
}

#[test]
fn batch_concurrent_conservation() {
    // Unique values flow through batched pushes and pops from many
    // threads; every value must come out exactly once.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    for_all_strategies_batch(|mk| {
        let d = mk(64);
        let popped = Mutex::new(Vec::<u32>::new());
        let produced = AtomicU64::new(0);
        const PER: u32 = 3_000;
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let d = &d;
                let produced = &produced;
                s.spawn(move || {
                    let mut v = t * PER + 1;
                    let end = (t + 1) * PER;
                    let mut k = 1usize;
                    while v <= end {
                        let hi = (v + k as u32 - 1).min(end);
                        let mut batch: Vec<u32> = (v..=hi).collect();
                        loop {
                            match if t == 0 {
                                d.push_right_n(batch)
                            } else {
                                d.push_left_n(batch)
                            } {
                                Ok(()) => break,
                                Err(rest) => {
                                    batch = rest;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        produced.fetch_add((hi - v + 1) as u64, Ordering::Relaxed);
                        v = hi + 1;
                        k = k % 9 + 1;
                    }
                });
            }
            for t in 0..2u32 {
                let d = &d;
                let popped = &popped;
                let produced = &produced;
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut k = 1usize;
                    loop {
                        let vals = if t == 0 { d.pop_left_n(k) } else { d.pop_right_n(k) };
                        let drained = vals.is_empty();
                        got.extend(vals);
                        k = k % 9 + 1;
                        if drained && produced.load(Ordering::Relaxed) == 2 * PER as u64 {
                            // All pushes have committed; one final sweep of
                            // both ends (keeping anything found) confirms
                            // emptiness at a single linearization point.
                            let l = d.pop_left_n(MAX_BATCH);
                            let r = d.pop_right_n(MAX_BATCH);
                            let done = l.is_empty() && r.is_empty();
                            got.extend(l);
                            got.extend(r);
                            if done {
                                break;
                            }
                        }
                    }
                    popped.lock().unwrap().extend(got);
                });
            }
        });
        let mut all = popped.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all.len(), 2 * PER as usize, "values lost or duplicated");
        all.dedup();
        assert_eq!(all.len(), 2 * PER as usize, "duplicate values popped");
    });
}

#[test]
fn same_end_push_pop_races_conserve() {
    use std::sync::Mutex;
    // Same-end push/pop races on a small deque (constant boundary
    // traffic): every pushed value is popped exactly once. (Elimination
    // is deliberately unavailable on the bounded deque — see the module
    // docs — so the races resolve through the deque alone.)
    let d = RawArrayDeque::<u32, HarrisMcas>::new(8);
    let popped = Mutex::new(Vec::<u32>::new());
    // Poppers must outlive the pushers: an idle-countdown exit can fire
    // while the pushers are descheduled on a single CPU, after which the
    // pushers spin on Full forever. `done` flips only once every push
    // has completed, so a None popped afterwards proves empty-forever.
    let done = std::sync::atomic::AtomicBool::new(false);
    const PER: u32 = 20_000;
    std::thread::scope(|s| {
        let mut pushers = Vec::new();
        for t in 0..2u32 {
            let d = &d;
            pushers.push(s.spawn(move || {
                for v in (t * PER + 1)..=(t + 1) * PER {
                    let mut v = v;
                    loop {
                        match RawArrayDeque::push_right(d, v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let d = &d;
            let popped = &popped;
            let done = &done;
            s.spawn(move || {
                let mut got = Vec::new();
                loop {
                    match RawArrayDeque::pop_right(d) {
                        Some(v) => got.push(v),
                        None => {
                            if done.load(std::sync::atomic::Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                popped.lock().unwrap().extend(got);
            });
        }
        for p in pushers {
            p.join().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });
    let mut rest = d.pop_left_n(16);
    let mut all = popped.into_inner().unwrap();
    all.append(&mut rest);
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "duplicate values popped");
    assert_eq!(all.len(), 2 * PER as usize, "values lost");
}

#[test]
fn batch_push_panicking_iterator_leaks_nothing() {
    // A value iterator that panics mid-chunk (modeling a throwing
    // `Clone`) must release every value it already encoded and leave
    // the deque exactly as it was — no leaked boxes, no claimed cells.
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicIsize, Ordering};
    use std::sync::Arc;

    use crate::value::Boxed;

    struct Counted(Arc<AtomicIsize>);
    impl Counted {
        fn new(live: &Arc<AtomicIsize>) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Counted(live.clone())
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let live = Arc::new(AtomicIsize::new(0));
    let d: RawArrayDeque<Boxed<Counted>, HarrisMcas> = RawArrayDeque::new(32);
    for _ in 0..2 {
        assert!(d.push_right(Boxed::new(Counted::new(&live))).is_ok());
    }
    assert_eq!(live.load(Ordering::SeqCst), 2);

    // Panics while the first chunk is still being encoded: nothing from
    // the batch may be pushed or leaked.
    let l2 = live.clone();
    let res = catch_unwind(AssertUnwindSafe(|| {
        d.push_right_n((0..6).map(|i| {
            if i == 4 {
                panic!("mid-batch");
            }
            Boxed::new(Counted::new(&l2))
        }))
    }));
    assert!(res.is_err());
    assert_eq!(live.load(Ordering::SeqCst), 2, "encoded batch values leaked");
    assert_eq!(d.len_quiescent(), 2, "partial chunk reached the deque");

    // Panics after the first full chunk: that chunk committed (it is a
    // prefix, exactly as if the iterator ended there), the partial
    // second chunk is released.
    let l3 = live.clone();
    let res = catch_unwind(AssertUnwindSafe(|| {
        d.push_left_n((0..MAX_BATCH + 3).map(|i| {
            if i == MAX_BATCH + 2 {
                panic!("cross-chunk");
            }
            Boxed::new(Counted::new(&l3))
        }))
    }));
    assert!(res.is_err());
    assert_eq!(live.load(Ordering::SeqCst), 2 + MAX_BATCH as isize);
    assert_eq!(d.len_quiescent(), 2 + MAX_BATCH);

    // The deque remains fully operational afterwards.
    assert!(d.push_right(Boxed::new(Counted::new(&live))).is_ok());
    while d.pop_left().is_some() {}
    assert_eq!(d.len_quiescent(), 0);
    drop(d);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}
