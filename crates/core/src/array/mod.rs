//! The array-based bounded deque of Section 3 of the paper.
//!
//! The deque lives in a circular array `S[0..length_S-1]` indexed by two
//! counters `L` and `R` that point at the next free cell on each side.
//! Initially `(L + 1) mod length_S == R`; as values are pushed and popped
//! the two indices chase each other around the ring and may "cross"
//! (Figure 8). The paper's key observation is that a processor never needs
//! an atomic view of *both* indices: the deque's emptiness or fullness is
//! determined by one index together with the content of the cell adjacent
//! to it, which is exactly what one DCAS can examine.
//!
//! * `pushRight` inserts at `S[R]` and advances `R` (Figure 3);
//!   `popRight` removes from `S[R-1]` and retreats `R` (Figure 2);
//!   the left-side operations are the mirror images (Figures 30, 31).
//! * The deque is **empty** when the cell being popped is null, and
//!   **full** when the cell being pushed into is non-null; either
//!   condition is *confirmed* by an identity DCAS that checks, at a single
//!   instant, that the index hasn't moved and the cell still has the
//!   boundary content (lines 8–10 of Figures 2/3).
//!
//! Two optional code fragments from the paper are exposed as
//! [`ArrayConfig`] knobs because the paper itself says "experimentation
//! would be required to determine whether either or both of these code
//! fragments should be included" — bench `e7_ablation` runs that
//! experiment:
//!
//! * line 7 (re-read the index before attempting the boundary-confirming
//!   DCAS), and
//! * lines 17–18 (use the *strong* DCAS that returns an atomic view on
//!   failure, to detect "the deque became empty/full under me" without
//!   retrying).
//!
//! Unlike the unbounded list deque, this deque deliberately has **no
//! elimination-backoff knob** ([`dcas::EndConfig`]). Eliminating a
//! same-end push/pop pair linearizes the push immediately before the pop
//! at the exchange instant — legal only if the push could succeed there.
//! On a bounded deque the exchanger cannot prove the deque is non-full at
//! that instant, so an eliminated push could complete while the deque was
//! full for the push's entire duration (it must return `Full` then):
//! a non-linearizable history. On the list deque pushes never fail, so
//! the pairing is unconditionally legal and the knob lives there.

// The nested `if` structure deliberately mirrors the paper's line-numbered
// listings (line 7 gates lines 8-10); do not collapse it.
#![allow(clippy::collapsible_if, clippy::collapsible_else_if)]

use std::marker::PhantomData;

use crossbeam_utils::CachePadded;
use dcas::{Backoff, CasnEntry, DcasStrategy, DcasWord, HarrisMcas};

use crate::guard::{EncodedChunk, EncodedGuard};
use crate::reserved::NULL;
use crate::value::{Boxed, WordValue};
use crate::{ConcurrentDeque, Full, MAX_BATCH};

#[cfg(test)]
mod tests;

/// Toggles for the paper's two optional optimizations (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Line 7 of Figures 2/3 (and the mirrored lines of Figures 30/31):
    /// re-read the end index and skip the boundary-confirming DCAS if it
    /// moved, on the assumption that "a null value is read because another
    /// processor stole the item, and not because the deque is really
    /// empty".
    pub revalidate_index: bool,
    /// Lines 17–18 of Figures 2/3: perform the main DCAS in its strong
    /// form and use the returned atomic view to report `empty`/`full`
    /// immediately instead of retrying the loop. Requires (and is only
    /// exercised with) a strategy for which the strong form exists; on
    /// strategies without [`DcasStrategy::HAS_CHEAP_STRONG`] it still
    /// works but costs extra.
    pub strong_failure_check: bool,
}

impl Default for ArrayConfig {
    /// The paper's published code includes both fragments.
    fn default() -> Self {
        ArrayConfig { revalidate_index: true, strong_failure_check: true }
    }
}

impl ArrayConfig {
    /// Configuration with both optional fragments removed; per the paper,
    /// "the algorithm would still be correct if line 7, and/or lines 17
    /// and 18, were deleted", and this variant needs only the weak DCAS.
    pub fn minimal() -> Self {
        ArrayConfig { revalidate_index: false, strong_failure_check: false }
    }
}

/// A quiescent snapshot of the implementation state, for diagnostics and
/// for the figure-reproduction tests. Only meaningful while no operations
/// are in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Current value of the left index `L`.
    pub l: usize,
    /// Current value of the right index `R`.
    pub r: usize,
    /// For each cell, whether it currently holds a value.
    pub occupied: Vec<bool>,
}

/// Word-level array deque: the paper's algorithm verbatim, storing
/// [`WordValue`]-encoded values. Use [`ArrayDeque`] for an arbitrary
/// element type.
pub struct RawArrayDeque<V: WordValue, S: DcasStrategy> {
    strategy: S,
    config: ArrayConfig,
    /// The right index `R` (stored shifted left by two to satisfy the DCAS
    /// payload contract).
    r: CachePadded<DcasWord>,
    /// The left index `L`.
    l: CachePadded<DcasWord>,
    /// The circular array `S[0..length_S-1]`.
    slots: Box<[DcasWord]>,
    _marker: PhantomData<fn(V) -> V>
}

#[inline]
fn enc_idx(i: usize) -> u64 {
    (i as u64) << 2
}

#[inline]
fn dec_idx(w: u64) -> usize {
    (w >> 2) as usize
}

impl<V: WordValue, S: DcasStrategy> RawArrayDeque<V, S> {
    /// Creates a deque with capacity `length` (the paper's
    /// `make_deque(length_S)`), using a default-constructed strategy and
    /// the paper's published configuration — except that the lines-17-18
    /// fragment (which needs the strong DCAS form) is enabled only when
    /// the strategy provides it cheaply ([`DcasStrategy::HAS_CHEAP_STRONG`]),
    /// per the paper's own advice that the fragment is an optional
    /// optimization.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0` (the specification requires
    /// `length_S >= 1`) or if `length` exceeds `u32::MAX` cells.
    pub fn new(length: usize) -> Self {
        Self::with_config(
            length,
            ArrayConfig { revalidate_index: true, strong_failure_check: S::HAS_CHEAP_STRONG },
        )
    }

    /// Creates a deque with an explicit optimization configuration.
    pub fn with_config(length: usize, config: ArrayConfig) -> Self {
        assert!(length >= 1, "make_deque requires length_S >= 1");
        assert!(length <= u32::MAX as usize, "deque too large");
        let slots = (0..length).map(|_| DcasWord::new(NULL)).collect();
        RawArrayDeque {
            strategy: S::default(),
            config,
            // Initially L == 0 and R == 1 mod length_S.
            r: CachePadded::new(DcasWord::new(enc_idx(1 % length))),
            l: CachePadded::new(DcasWord::new(enc_idx(0))),
            slots,
            _marker: PhantomData,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The DCAS strategy instance (for inspecting [`dcas::Counting`]
    /// statistics).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    #[inline]
    fn add1(&self, i: usize) -> usize {
        (i + 1) % self.slots.len()
    }

    #[inline]
    fn sub1(&self, i: usize) -> usize {
        (i + self.slots.len() - 1) % self.slots.len()
    }

    /// `popRight` — Figure 2.
    pub fn pop_right(&self) -> Option<V> {
        loop {
            let old_r = dec_idx(self.strategy.load(&self.r)); // line 3
            let new_r = self.sub1(old_r); // line 4
            let old_s = self.strategy.load(&self.slots[new_r]); // line 5
            if old_s == NULL {
                // Lines 6-11: the deque may be empty; confirm with an
                // identity DCAS giving an instantaneous view of R and
                // S[R-1].
                if !self.config.revalidate_index
                    || dec_idx(self.strategy.load(&self.r)) == old_r
                {
                    if self.strategy.dcas(
                        &self.r,
                        &self.slots[new_r],
                        enc_idx(old_r),
                        NULL,
                        enc_idx(old_r),
                        NULL,
                    ) {
                        return None; // "empty"
                    }
                }
            } else if self.config.strong_failure_check {
                // Lines 12-19 with the strong DCAS of Figure 1.
                let save_r = old_r; // line 13
                let mut o1 = enc_idx(old_r);
                let mut o2 = old_s;
                if self.strategy.dcas_strong(
                    &self.r,
                    &self.slots[new_r],
                    &mut o1,
                    &mut o2,
                    enc_idx(new_r),
                    NULL,
                ) {
                    // SAFETY: the successful DCAS moved the encoded value
                    // out of the slot; we are its unique owner.
                    return Some(unsafe { V::decode(old_s) });
                } else if dec_idx(o1) == save_r {
                    // Line 17: R did not move, so the slot changed.
                    if o2 == NULL {
                        // Line 18: a competing popLeft stole the last
                        // item (Figure 6); the deque was empty at the
                        // DCAS's instant.
                        return None;
                    }
                }
            } else {
                // The weak-DCAS variant: on failure, just retry the loop.
                if self.strategy.dcas(
                    &self.r,
                    &self.slots[new_r],
                    enc_idx(old_r),
                    old_s,
                    enc_idx(new_r),
                    NULL,
                ) {
                    // SAFETY: as above.
                    return Some(unsafe { V::decode(old_s) });
                }
            }
        }
    }

    /// `pushRight` — Figure 3.
    pub fn push_right(&self, v: V) -> Result<(), Full<V>> {
        // The guard owns the encoded word until the committing DCAS: an
        // unwinding strategy call releases the value instead of leaking it.
        let val = EncodedGuard::new(v);
        loop {
            let old_r = dec_idx(self.strategy.load(&self.r)); // line 3
            let new_r = self.add1(old_r); // line 4
            let old_s = self.strategy.load(&self.slots[old_r]); // line 5
            if old_s != NULL {
                // Lines 6-11: the deque may be full; confirm atomically.
                if !self.config.revalidate_index
                    || dec_idx(self.strategy.load(&self.r)) == old_r
                {
                    if self.strategy.dcas(
                        &self.r,
                        &self.slots[old_r],
                        enc_idx(old_r),
                        old_s,
                        enc_idx(old_r),
                        old_s,
                    ) {
                        return Err(Full(val.reclaim())); // "full"
                    }
                }
            } else if self.config.strong_failure_check {
                let save_r = old_r; // line 13
                let mut o1 = enc_idx(old_r);
                let mut o2 = NULL;
                if self.strategy.dcas_strong(
                    &self.r,
                    &self.slots[old_r],
                    &mut o1,
                    &mut o2,
                    enc_idx(new_r),
                    val.word(),
                ) {
                    val.commit();
                    return Ok(()); // "okay"
                } else if dec_idx(o1) == save_r {
                    // Lines 17-18: R unchanged, so the cell turned
                    // non-null: the deque is full. (Unlike pop, any
                    // non-null content means full.)
                    return Err(Full(val.reclaim()));
                }
            } else {
                if self.strategy.dcas(
                    &self.r,
                    &self.slots[old_r],
                    enc_idx(old_r),
                    NULL,
                    enc_idx(new_r),
                    val.word(),
                ) {
                    val.commit();
                    return Ok(());
                }
            }
        }
    }

    /// `popLeft` — Figure 30 (mirror image of `popRight`).
    pub fn pop_left(&self) -> Option<V> {
        loop {
            let old_l = dec_idx(self.strategy.load(&self.l)); // line 3
            let new_l = self.add1(old_l); // line 4
            let old_s = self.strategy.load(&self.slots[new_l]); // line 5
            if old_s == NULL {
                if !self.config.revalidate_index
                    || dec_idx(self.strategy.load(&self.l)) == old_l
                {
                    if self.strategy.dcas(
                        &self.l,
                        &self.slots[new_l],
                        enc_idx(old_l),
                        NULL,
                        enc_idx(old_l),
                        NULL,
                    ) {
                        return None;
                    }
                }
            } else if self.config.strong_failure_check {
                let save_l = old_l;
                let mut o1 = enc_idx(old_l);
                let mut o2 = old_s;
                if self.strategy.dcas_strong(
                    &self.l,
                    &self.slots[new_l],
                    &mut o1,
                    &mut o2,
                    enc_idx(new_l),
                    NULL,
                ) {
                    // SAFETY: as in `pop_right`.
                    return Some(unsafe { V::decode(old_s) });
                } else if dec_idx(o1) == save_l {
                    if o2 == NULL {
                        return None;
                    }
                }
            } else {
                if self.strategy.dcas(
                    &self.l,
                    &self.slots[new_l],
                    enc_idx(old_l),
                    old_s,
                    enc_idx(new_l),
                    NULL,
                ) {
                    // SAFETY: as in `pop_right`.
                    return Some(unsafe { V::decode(old_s) });
                }
            }
        }
    }

    /// `pushLeft` — Figure 31 (mirror image of `pushRight`).
    pub fn push_left(&self, v: V) -> Result<(), Full<V>> {
        let val = EncodedGuard::new(v);
        loop {
            let old_l = dec_idx(self.strategy.load(&self.l)); // line 3
            let new_l = self.sub1(old_l); // line 4
            let old_s = self.strategy.load(&self.slots[old_l]); // line 5
            if old_s != NULL {
                if !self.config.revalidate_index
                    || dec_idx(self.strategy.load(&self.l)) == old_l
                {
                    if self.strategy.dcas(
                        &self.l,
                        &self.slots[old_l],
                        enc_idx(old_l),
                        old_s,
                        enc_idx(old_l),
                        old_s,
                    ) {
                        return Err(Full(val.reclaim()));
                    }
                }
            } else if self.config.strong_failure_check {
                let save_l = old_l;
                let mut o1 = enc_idx(old_l);
                let mut o2 = NULL;
                if self.strategy.dcas_strong(
                    &self.l,
                    &self.slots[old_l],
                    &mut o1,
                    &mut o2,
                    enc_idx(new_l),
                    val.word(),
                ) {
                    val.commit();
                    return Ok(());
                } else if dec_idx(o1) == save_l {
                    return Err(Full(val.reclaim()));
                }
            } else {
                if self.strategy.dcas(
                    &self.l,
                    &self.slots[old_l],
                    enc_idx(old_l),
                    NULL,
                    enc_idx(new_l),
                    val.word(),
                ) {
                    val.commit();
                    return Ok(());
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched operations (not in the paper): each chunk of up to
    // MAX_BATCH elements commits with one CASN over the end index and
    // the chunk's cells, so the whole chunk appears/vanishes at a single
    // linearization point. Soundness rests on the ring invariant the
    // paper's Figure 8 discussion establishes: the free (null) cells
    // always form one contiguous circular segment [R..L], and the
    // occupied cells the complementary segment [L+1..R-1].
    // ------------------------------------------------------------------

    /// Pushes `words.len()` encoded values at the right end in one CASN:
    /// `[R: r -> r+k]` plus `[S[r+i]: null -> w_i]` for each value.
    /// Returns `false` when a confirmed-full state proves fewer than `k`
    /// free cells exist at one instant (nothing is pushed).
    ///
    /// If all `k` cells are simultaneously null they are a prefix of the
    /// free segment starting at `R`, so claiming them preserves
    /// contiguity; conversely a non-null cell at offset `i` (while `R`
    /// is unchanged, confirmed by an identity DCAS) proves the free
    /// segment holds at most `i < k` cells.
    fn push_chunk_right(&self, words: &[u64]) -> bool {
        let len = self.slots.len();
        let k = words.len();
        debug_assert!((1..=MAX_BATCH).contains(&k) && k <= len);
        let mut backoff = Backoff::new();
        loop {
            let old_r = dec_idx(self.strategy.load(&self.r));
            let occupied_at = (0..k)
                .find(|i| self.strategy.load(&self.slots[(old_r + i) % len]) != NULL);
            match occupied_at {
                Some(i) => {
                    // The window is too small; confirm atomically.
                    let cell = (old_r + i) % len;
                    let old_s = self.strategy.load(&self.slots[cell]);
                    if old_s != NULL
                        && self.strategy.dcas(
                            &self.r,
                            &self.slots[cell],
                            enc_idx(old_r),
                            old_s,
                            enc_idx(old_r),
                            old_s,
                        )
                    {
                        return false; // "full" (for this chunk size)
                    }
                }
                None => {
                    let new_r = (old_r + k) % len;
                    // Entries live on the stack (k + 1 <= MAX_BATCH + 1):
                    // a chunk commit allocates nothing.
                    let mut entries = [CasnEntry::new(&self.r, NULL, NULL); MAX_BATCH + 2];
                    entries[0] = CasnEntry::new(&self.r, enc_idx(old_r), enc_idx(new_r));
                    for (i, &w) in words.iter().enumerate() {
                        entries[1 + i] =
                            CasnEntry::new(&self.slots[(old_r + i) % len], NULL, w);
                    }
                    if self.strategy.casn(&mut entries[..k + 1]) {
                        return true;
                    }
                }
            }
            backoff.snooze();
        }
    }

    /// Mirror of [`push_chunk_right`](Self::push_chunk_right) for the
    /// left end: cells `L, L-1, ..., L-k+1` are claimed and `L`
    /// retreats by `k`.
    fn push_chunk_left(&self, words: &[u64]) -> bool {
        let len = self.slots.len();
        let k = words.len();
        debug_assert!((1..=MAX_BATCH).contains(&k) && k <= len);
        let mut backoff = Backoff::new();
        loop {
            let old_l = dec_idx(self.strategy.load(&self.l));
            let occupied_at = (0..k)
                .find(|i| self.strategy.load(&self.slots[(old_l + len - i) % len]) != NULL);
            match occupied_at {
                Some(i) => {
                    let cell = (old_l + len - i) % len;
                    let old_s = self.strategy.load(&self.slots[cell]);
                    if old_s != NULL
                        && self.strategy.dcas(
                            &self.l,
                            &self.slots[cell],
                            enc_idx(old_l),
                            old_s,
                            enc_idx(old_l),
                            old_s,
                        )
                    {
                        return false;
                    }
                }
                None => {
                    let new_l = (old_l + len - k) % len;
                    let mut entries = [CasnEntry::new(&self.l, NULL, NULL); MAX_BATCH + 2];
                    entries[0] = CasnEntry::new(&self.l, enc_idx(old_l), enc_idx(new_l));
                    for (i, &w) in words.iter().enumerate() {
                        entries[1 + i] =
                            CasnEntry::new(&self.slots[(old_l + len - i) % len], NULL, w);
                    }
                    if self.strategy.casn(&mut entries[..k + 1]) {
                        return true;
                    }
                }
            }
            backoff.snooze();
        }
    }

    /// Pops up to `k` values from the left end in one CASN, appending the
    /// decoded values to `out` and returning `exhausted`: whether the
    /// deque held fewer than `k` values at the linearization instant.
    ///
    /// The CASN advances `L` past the `j` scanned values and nulls their
    /// cells. When `j < k`, an **identity entry on the terminating null
    /// cell** is included: at the CASN's instant the occupied segment
    /// starts at `L+1` and ends before that null cell, certifying
    /// `|deque| == j` — without it, returning a short batch would not be
    /// linearizable as `k` pops (the deque might have held more).
    fn pop_chunk_left(&self, k: usize, out: &mut Vec<V>) -> bool {
        let len = self.slots.len();
        debug_assert!((1..=MAX_BATCH).contains(&k));
        let mut backoff = Backoff::new();
        loop {
            let old_l = dec_idx(self.strategy.load(&self.l));
            let mut words = [0u64; MAX_BATCH];
            let mut j = 0;
            while j < k.min(len) {
                let w = self.strategy.load(&self.slots[(old_l + 1 + j) % len]);
                if w == NULL {
                    break;
                }
                words[j] = w;
                j += 1;
            }
            if j == 0 {
                // Possibly empty; confirm exactly as the single pop does.
                if self.strategy.dcas(
                    &self.l,
                    &self.slots[(old_l + 1) % len],
                    enc_idx(old_l),
                    NULL,
                    enc_idx(old_l),
                    NULL,
                ) {
                    return true;
                }
            } else {
                let new_l = (old_l + j) % len;
                let mut entries = [CasnEntry::new(&self.l, NULL, NULL); MAX_BATCH + 2];
                entries[0] = CasnEntry::new(&self.l, enc_idx(old_l), enc_idx(new_l));
                for (i, &w) in words[..j].iter().enumerate() {
                    entries[1 + i] =
                        CasnEntry::new(&self.slots[(old_l + 1 + i) % len], w, NULL);
                }
                let mut n = j + 1;
                if j < k && j < len {
                    entries[n] =
                        CasnEntry::new(&self.slots[(old_l + 1 + j) % len], NULL, NULL);
                    n += 1;
                }
                if self.strategy.casn(&mut entries[..n]) {
                    // SAFETY: each word was moved out of its cell by our
                    // CASN; we are its unique owner.
                    out.extend(words[..j].iter().map(|&w| unsafe { V::decode(w) }));
                    return j < k;
                }
            }
            backoff.snooze();
        }
    }

    /// Mirror of [`pop_chunk_left`](Self::pop_chunk_left) for the right
    /// end: scans `R-1, R-2, ...` and retreats `R` by `j`.
    fn pop_chunk_right(&self, k: usize, out: &mut Vec<V>) -> bool {
        let len = self.slots.len();
        debug_assert!((1..=MAX_BATCH).contains(&k));
        let mut backoff = Backoff::new();
        loop {
            let old_r = dec_idx(self.strategy.load(&self.r));
            let mut words = [0u64; MAX_BATCH];
            let mut j = 0;
            while j < k.min(len) {
                let w = self.strategy.load(&self.slots[(old_r + len - 1 - j) % len]);
                if w == NULL {
                    break;
                }
                words[j] = w;
                j += 1;
            }
            if j == 0 {
                if self.strategy.dcas(
                    &self.r,
                    &self.slots[(old_r + len - 1) % len],
                    enc_idx(old_r),
                    NULL,
                    enc_idx(old_r),
                    NULL,
                ) {
                    return true;
                }
            } else {
                let new_r = (old_r + len - j) % len;
                let mut entries = [CasnEntry::new(&self.r, NULL, NULL); MAX_BATCH + 2];
                entries[0] = CasnEntry::new(&self.r, enc_idx(old_r), enc_idx(new_r));
                for (i, &w) in words[..j].iter().enumerate() {
                    entries[1 + i] =
                        CasnEntry::new(&self.slots[(old_r + len - 1 - i) % len], w, NULL);
                }
                let mut n = j + 1;
                if j < k && j < len {
                    entries[n] =
                        CasnEntry::new(&self.slots[(old_r + len - 1 - j) % len], NULL, NULL);
                    n += 1;
                }
                if self.strategy.casn(&mut entries[..n]) {
                    // SAFETY: as in `pop_chunk_left`.
                    out.extend(words[..j].iter().map(|&w| unsafe { V::decode(w) }));
                    return j < k;
                }
            }
            backoff.snooze();
        }
    }

    /// Pushes all of `vals` at the right end, in order, in atomic chunks
    /// of up to [`MAX_BATCH`] elements (each chunk one CASN). When the
    /// deque cannot hold a whole chunk, the unpushed tail is returned in
    /// `Full`; already-committed chunks stay pushed.
    ///
    /// Takes any iterator so callers (e.g. the boxing [`ArrayDeque`]
    /// wrapper) can stream values in without materializing an
    /// intermediate `Vec`; each chunk is encoded into a stack buffer.
    pub fn push_right_n<I>(&self, vals: I) -> Result<(), Full<Vec<V>>>
    where
        I: IntoIterator<Item = V>,
    {
        let max = MAX_BATCH.min(self.slots.len());
        let mut it = vals.into_iter();
        loop {
            // The chunk guard owns each encoded word from `encode` to
            // the committing CASN: a panicking iterator (a throwing
            // `Clone` mid-batch) or an unwinding strategy call releases
            // the partial chunk instead of leaking it.
            let mut chunk = EncodedChunk::new();
            while chunk.len() < max {
                match it.next() {
                    Some(v) => chunk.push(v),
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(());
            }
            if self.push_chunk_right(chunk.words()) {
                chunk.commit();
            } else {
                // The unpushed chunk values re-join the unconsumed
                // iterator tail, in order.
                return Err(Full(chunk.reclaim().into_iter().chain(it).collect()));
            }
        }
    }

    /// Pushes all of `vals` at the left end, in order (the last element
    /// ends up leftmost), in atomic chunks. See
    /// [`push_right_n`](Self::push_right_n).
    pub fn push_left_n<I>(&self, vals: I) -> Result<(), Full<Vec<V>>>
    where
        I: IntoIterator<Item = V>,
    {
        let max = MAX_BATCH.min(self.slots.len());
        let mut it = vals.into_iter();
        loop {
            // Guarded exactly as in `push_right_n`.
            let mut chunk = EncodedChunk::new();
            while chunk.len() < max {
                match it.next() {
                    Some(v) => chunk.push(v),
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(());
            }
            if self.push_chunk_left(chunk.words()) {
                chunk.commit();
            } else {
                return Err(Full(chunk.reclaim().into_iter().chain(it).collect()));
            }
        }
    }

    /// Pops up to `n` values from the right end, rightmost first, in
    /// atomic chunks of up to [`MAX_BATCH`]; stops early at a chunk that
    /// certified the deque exhausted.
    pub fn pop_right_n(&self, n: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = (n - out.len()).min(MAX_BATCH);
            if self.pop_chunk_right(k, &mut out) {
                break;
            }
        }
        out
    }

    /// Pops up to `n` values from the left end, leftmost first, in
    /// atomic chunks. See [`pop_right_n`](Self::pop_right_n).
    pub fn pop_left_n(&self, n: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = (n - out.len()).min(MAX_BATCH);
            if self.pop_chunk_left(k, &mut out) {
                break;
            }
        }
        out
    }

    /// Snapshot of `(L, R, occupancy)` for diagnostics and the
    /// figure-reproduction tests. Only meaningful in quiescence (no
    /// concurrent operations).
    pub fn layout(&self) -> ArrayLayout {
        ArrayLayout {
            l: dec_idx(self.strategy.load(&self.l)),
            r: dec_idx(self.strategy.load(&self.r)),
            occupied: self
                .slots
                .iter()
                .map(|s| self.strategy.load(s) != NULL)
                .collect(),
        }
    }

    /// Number of occupied cells, by scanning. Quiescent diagnostic only.
    pub fn len_quiescent(&self) -> usize {
        self.layout().occupied.iter().filter(|&&o| o).count()
    }
}

impl<V: WordValue, S: DcasStrategy> Drop for RawArrayDeque<V, S> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let w = slot.unsync_load();
            if w != NULL {
                // SAFETY: `&mut self` means no operation is in flight, so
                // the slot holds an unconsumed encoded value.
                unsafe { V::drop_encoded(w) };
            }
        }
    }
}

/// The array-based bounded deque of the paper's Section 3, for arbitrary
/// element types `T` (heap-boxed per element) and any DCAS strategy `S`
/// (lock-free [`HarrisMcas`] by default).
///
/// See the [module documentation](self) for the algorithm, and
/// [`RawArrayDeque`] for the word-level API used by benches.
pub struct ArrayDeque<T: Send, S: DcasStrategy = HarrisMcas> {
    raw: RawArrayDeque<Boxed<T>, S>,
}

impl<T: Send, S: DcasStrategy> ArrayDeque<T, S> {
    /// Creates a deque with capacity `length`.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    pub fn new(length: usize) -> Self {
        ArrayDeque { raw: RawArrayDeque::new(length) }
    }

    /// Creates a deque with an explicit optimization configuration.
    pub fn with_config(length: usize, config: ArrayConfig) -> Self {
        ArrayDeque { raw: RawArrayDeque::with_config(length, config) }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// The DCAS strategy instance (for counter snapshots).
    pub fn strategy(&self) -> &S {
        self.raw.strategy()
    }

    /// Appends `v` at the right end; `Err(Full(v))` if the deque is full.
    pub fn push_right(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_right(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Appends `v` at the left end; `Err(Full(v))` if the deque is full.
    pub fn push_left(&self, v: T) -> Result<(), Full<T>> {
        self.raw
            .push_left(Boxed::new(v))
            .map_err(|Full(b)| Full(b.into_inner()))
    }

    /// Removes and returns the rightmost value, or `None` if empty.
    pub fn pop_right(&self) -> Option<T> {
        self.raw.pop_right().map(Boxed::into_inner)
    }

    /// Removes and returns the leftmost value, or `None` if empty.
    pub fn pop_left(&self) -> Option<T> {
        self.raw.pop_left().map(Boxed::into_inner)
    }

    /// Pushes all of `vals` at the right end in atomic chunks of up to
    /// [`MAX_BATCH`] elements (see [`RawArrayDeque::push_right_n`]).
    pub fn push_right_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        self.raw
            .push_right_n(vals.into_iter().map(Boxed::new))
            .map_err(|Full(rest)| Full(rest.into_iter().map(Boxed::into_inner).collect()))
    }

    /// Pushes all of `vals` at the left end in atomic chunks (the last
    /// element ends up leftmost).
    pub fn push_left_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        self.raw
            .push_left_n(vals.into_iter().map(Boxed::new))
            .map_err(|Full(rest)| Full(rest.into_iter().map(Boxed::into_inner).collect()))
    }

    /// Pops up to `n` values from the right end, rightmost first, in
    /// atomic chunks.
    pub fn pop_right_n(&self, n: usize) -> Vec<T> {
        self.raw.pop_right_n(n).into_iter().map(Boxed::into_inner).collect()
    }

    /// Pops up to `n` values from the left end, leftmost first, in atomic
    /// chunks.
    pub fn pop_left_n(&self, n: usize) -> Vec<T> {
        self.raw.pop_left_n(n).into_iter().map(Boxed::into_inner).collect()
    }

    /// Quiescent layout snapshot (see [`RawArrayDeque::layout`]).
    pub fn layout(&self) -> ArrayLayout {
        self.raw.layout()
    }
}

impl<T: Send, S: DcasStrategy> ConcurrentDeque<T> for ArrayDeque<T, S> {
    fn push_right(&self, v: T) -> Result<(), Full<T>> {
        ArrayDeque::push_right(self, v)
    }

    fn push_left(&self, v: T) -> Result<(), Full<T>> {
        ArrayDeque::push_left(self, v)
    }

    fn pop_right(&self) -> Option<T> {
        ArrayDeque::pop_right(self)
    }

    fn pop_left(&self) -> Option<T> {
        ArrayDeque::pop_left(self)
    }

    fn push_right_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        ArrayDeque::push_right_n(self, vals)
    }

    fn push_left_n(&self, vals: Vec<T>) -> Result<(), Full<Vec<T>>> {
        ArrayDeque::push_left_n(self, vals)
    }

    fn pop_right_n(&self, n: usize) -> Vec<T> {
        ArrayDeque::pop_right_n(self, n)
    }

    fn pop_left_n(&self, n: usize) -> Vec<T> {
        ArrayDeque::pop_left_n(self, n)
    }

    fn impl_name(&self) -> &'static str {
        "array-dcas"
    }
}
